//! Keeps `docs/ARCHITECTURE.md` and `docs/CONCURRENCY.md` honest: every
//! repository path referenced in an inline code span must exist. The
//! `docs` CI job runs the same check as a shell grep; this test makes it
//! part of tier-1 so a rename fails fast locally too.

use std::path::Path;

/// Extract path-like inline code spans: at least one `/`, no spaces, no
/// `::`, built from path characters only. `Executor::batch`, flags like
/// `--async`, and prose never match.
fn referenced_paths(markdown: &str) -> Vec<String> {
    let mut paths = Vec::new();
    for chunk in markdown.split('`').skip(1).step_by(2) {
        let candidate = chunk.trim();
        let path_like = candidate.contains('/')
            && !candidate.contains("::")
            && !candidate.contains(' ')
            && candidate
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '.' | '_' | '-'))
            && !candidate.starts_with('-');
        if path_like {
            paths.push(candidate.to_string());
        }
    }
    paths.sort();
    paths.dedup();
    paths
}

fn assert_doc_paths_exist(doc_path: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let doc = std::fs::read_to_string(root.join(doc_path))
        .unwrap_or_else(|_| panic!("{doc_path} exists"));
    let paths = referenced_paths(&doc);
    assert!(
        paths.len() >= 10,
        "{doc_path} should anchor its claims in file pointers; \
         found only {paths:?}"
    );
    let missing: Vec<&String> = paths.iter().filter(|p| !root.join(p).exists()).collect();
    assert!(
        missing.is_empty(),
        "{doc_path} references paths that do not exist: {missing:?} — \
         update the doc in the same PR that moved them"
    );
}

#[test]
fn every_path_referenced_by_the_architecture_doc_exists() {
    assert_doc_paths_exist("docs/ARCHITECTURE.md");
}

#[test]
fn every_path_referenced_by_the_concurrency_doc_exists() {
    assert_doc_paths_exist("docs/CONCURRENCY.md");
}

#[test]
fn the_span_extractor_ignores_non_paths() {
    let doc = "`Executor::batch` and `--async` and `cargo test` and \
               `crates/core/src/batch.rs` and `Step::Shard`";
    assert_eq!(referenced_paths(doc), vec!["crates/core/src/batch.rs"]);
}
