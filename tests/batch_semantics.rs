//! The batching acceptance suite: [`Executor::batch`] keeps its contract
//! on every executor —
//!
//! * (a) responses come back in **submission order**, even when the batch
//!   mixes requests to several CVDs and the executor groups them per
//!   shard;
//! * (b) a mid-batch error fails **only its own request** — later
//!   requests still execute;
//! * (c) `batch` equals the sequential `execute` loop **result for
//!   result** on the `bus_roundtrip` corpus (every request variant,
//!   successes and failures mixed), for `OrpheusDB`, a `Session`, and a
//!   bare `ConcurrentExecutor`.

use orpheusdb::prelude::*;

const CSV: &str = "id,score\n1,10\n2,20\n3,30\n";
const SCHEMA: &str = "id:int!pk\nscore:int\n";

/// The bus_roundtrip corpus as one request vector: every variant of the
/// command set, with deliberate failures mixed in. Self-contained (the
/// edited CSV text is spelled out instead of being derived from the
/// export response), so the same vector can drive a sequential loop and a
/// single batch on fresh instances.
fn corpus() -> Vec<Request> {
    let ranks_schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("rank", DataType::Int),
    ])
    .with_primary_key(&["name"])
    .unwrap();
    vec![
        InitFromCsv::cvd("scores")
            .csv(CSV)
            .schema_text(SCHEMA)
            .into(),
        Init::cvd("ranks")
            .schema(ranks_schema)
            .row(vec!["a".into(), 1.into()])
            .row(vec!["b".into(), 2.into()])
            .model(ModelKind::CombinedTable)
            .into(),
        Checkout::of("scores")
            .version(1u64)
            .into_table("work")
            .into(),
        Commit::table("work").message("no-op").into(),
        Checkout::of("scores")
            .version(2u64)
            .into_csv("scores.csv")
            .into(),
        CommitCsv::path("scores.csv")
            .csv("rid,id,score\n1,1,10\n2,2,20\n3,3,30\n,4,40\n")
            .message("add row via csv")
            .into(),
        Diff::of("scores").between(2u64, 3u64).into(),
        Run::sql("SELECT count(*) FROM VERSION 3 OF CVD scores").into(),
        Request::Ls,
        Log::of("scores").into(),
        Optimize::cvd("scores").gamma(2.0).mu(1.5).into(),
        CreateUser::named("courier").into(),
        Login::as_user("courier").into(),
        Request::Whoami,
        Checkout::of("scores")
            .version(1u64)
            .into_table("scratch")
            .into(),
        Discard::table("scratch").into(),
        // Failures, deliberately mid-stream: unknown version, never-staged
        // table, unknown CVD in versioned SQL.
        Checkout::of("scores")
            .version(99u64)
            .into_table("zzz")
            .into(),
        Commit::table("never_staged").into(),
        Run::sql("SELECT count(*) FROM VERSION 1 OF CVD nope").into(),
        DropCvd::named("scores").into(),
        DropCvd::named("ranks").into(),
        Request::Ls,
    ]
}

/// Render one outcome for comparison: the canonical summary for
/// successes, the error text for failures.
fn render(result: &Result<Response, CoreError>) -> String {
    match result {
        Ok(response) => response.summary(),
        Err(e) => format!("error: {e}"),
    }
}

/// Drive `corpus()` through a sequential `execute` loop on one fresh
/// executor and through one `batch` call on another, and require the
/// rendered outcomes to agree position by position.
fn assert_batch_equals_sequential<E: Executor>(label: &str, mut sequential: E, mut batched: E) {
    let sequential_results: Vec<String> = corpus()
        .into_iter()
        .map(|r| render(&sequential.execute(r)))
        .collect();
    let batched_results: Vec<String> = batched.batch(corpus()).iter().map(render).collect();
    assert_eq!(
        sequential_results.len(),
        batched_results.len(),
        "{label}: one outcome per request"
    );
    for (i, (seq, bat)) in sequential_results.iter().zip(&batched_results).enumerate() {
        assert_eq!(seq, bat, "{label}: request {i} diverged");
    }
}

#[test]
fn batch_equals_sequential_loop_on_orpheusdb() {
    assert_batch_equals_sequential("OrpheusDB", OrpheusDB::new(), OrpheusDB::new());
}

#[test]
fn batch_equals_sequential_loop_on_session() {
    let a = SharedOrpheusDB::new(OrpheusDB::new());
    let b = SharedOrpheusDB::new(OrpheusDB::new());
    assert_batch_equals_sequential(
        "Session",
        a.session("driver").unwrap(),
        b.session("driver").unwrap(),
    );
    // Nothing staged leaks from either path (reservations were released).
    a.read(|odb| assert!(odb.staged().is_empty()));
    b.read(|odb| assert!(odb.staged().is_empty()));
}

#[test]
fn batch_equals_sequential_loop_on_concurrent_executor() {
    let a = SharedOrpheusDB::new(OrpheusDB::new());
    let b = SharedOrpheusDB::new(OrpheusDB::new());
    assert_batch_equals_sequential(
        "ConcurrentExecutor",
        a.executor("driver").unwrap(),
        b.executor("driver").unwrap(),
    );
}

/// Two CVDs under one shared instance, `n` rows each.
fn shared_with_two_cvds(n: i64) -> SharedOrpheusDB {
    let mut odb = OrpheusDB::new();
    for name in ["left", "right"] {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
        .with_primary_key(&["k"])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i), Value::Int(0)]).collect();
        odb.init_cvd(name, schema, rows, None).unwrap();
    }
    SharedOrpheusDB::new(odb)
}

#[test]
fn responses_come_back_in_submission_order_across_shards() {
    let shared = shared_with_two_cvds(12);
    let mut session = shared.session("u").unwrap();
    // Interleave the two CVDs so per-shard grouping has to reorder
    // execution — the responses must still answer their submission slots.
    let requests: Vec<Request> = vec![
        Checkout::of("left").version(1u64).into_table("l0").into(),
        Checkout::of("right").version(1u64).into_table("r0").into(),
        Run::sql("SELECT count(*) FROM VERSION 1 OF CVD right").into(),
        Commit::table("l0").message("left one").into(),
        Commit::table("r0").message("right one").into(),
        Checkout::of("right").version(2u64).into_table("r1").into(),
        Run::sql("SELECT count(*) FROM VERSION 1 OF CVD left").into(),
        Commit::table("r1").message("right two").into(),
        Log::of("left").into(),
    ];
    let expected = [
        "checked out v1 into table l0",
        "checked out v1 into table r0",
        "1 row(s)",
        "committed l0 as v2",
        "committed r0 as v2",
        "checked out v2 into table r1",
        "1 row(s)",
        "committed r1 as v3",
    ];
    let results = session.batch(requests);
    assert_eq!(results.len(), 9);
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(&render(&results[i]), want, "slot {i}");
    }
    assert!(
        matches!(&results[8], Ok(Response::Log { cvd, entries }) if cvd == "left" && entries.len() == 2),
        "{:?}",
        results[8]
    );
    shared.read(|odb| {
        assert_eq!(odb.cvd("left").unwrap().num_versions(), 2);
        assert_eq!(odb.cvd("right").unwrap().num_versions(), 3);
        assert!(odb.staged().is_empty());
    });
}

/// Run `scenario` through a sequential loop and a single batch on fresh
/// two-CVD instances, requiring identical outcomes; returns the batched
/// instance for extra assertions.
fn assert_scenario_agrees(scenario: &dyn Fn() -> Vec<Request>) -> SharedOrpheusDB {
    let a = shared_with_two_cvds(6);
    let mut sequential = a.session("u").unwrap();
    let seq: Vec<String> = scenario()
        .into_iter()
        .map(|r| render(&sequential.execute(r)))
        .collect();
    let b = shared_with_two_cvds(6);
    let bat: Vec<String> = b
        .session("u")
        .unwrap()
        .batch(scenario())
        .iter()
        .map(render)
        .collect();
    assert_eq!(seq, bat);
    b
}

#[test]
fn same_name_collisions_inside_a_batch_match_the_sequential_loop() {
    // A commit of a name two checkouts fought over must land in the shard
    // of the checkout that actually won (the first), not the doomed one.
    let shared = assert_scenario_agrees(&|| {
        vec![
            Checkout::of("left").version(1u64).into_table("t").into(),
            Checkout::of("right").version(1u64).into_table("t").into(),
            Commit::table("t").message("m").into(),
        ]
    });
    shared.read(|odb| {
        assert_eq!(odb.cvd("left").unwrap().num_versions(), 2);
        assert_eq!(odb.cvd("right").unwrap().num_versions(), 1);
    });

    // A failing first checkout must not poison a same-name retry later in
    // the batch: sequentially the retry succeeds, so batched it must too.
    let shared = assert_scenario_agrees(&|| {
        vec![
            Checkout::of("left").version(99u64).into_table("x").into(),
            Checkout::of("left").version(1u64).into_table("x").into(),
        ]
    });
    shared.read(|odb| assert_eq!(odb.staged().len(), 1));
}

#[test]
fn a_mid_batch_error_does_not_abort_later_requests() {
    for use_session in [false, true] {
        let requests: Vec<Request> = vec![
            InitFromCsv::cvd("d").csv(CSV).schema_text(SCHEMA).into(),
            Checkout::of("d").version(7u64).into_table("bad").into(), // fails
            Checkout::of("d").version(1u64).into_table("good").into(),
            Commit::table("bad").message("never staged").into(), // fails
            Commit::table("good").message("lands").into(),
            Run::sql("SELECT count(*) FROM VERSION 2 OF CVD d").into(),
        ];
        let results = if use_session {
            let shared = SharedOrpheusDB::new(OrpheusDB::new());
            shared.session("u").unwrap().batch(requests)
        } else {
            OrpheusDB::new().batch(requests)
        };
        let label = if use_session { "session" } else { "direct" };
        assert!(results[0].is_ok(), "{label}: {:?}", results[0]);
        assert!(
            matches!(results[1], Err(CoreError::VersionNotFound { .. })),
            "{label}: {:?}",
            results[1]
        );
        assert!(results[2].is_ok(), "{label}: {:?}", results[2]);
        assert!(
            matches!(results[3], Err(CoreError::NotStaged(_))),
            "{label}: {:?}",
            results[3]
        );
        assert_eq!(
            results[4].as_ref().unwrap().version(),
            Some(Vid(2)),
            "{label}"
        );
        assert_eq!(
            results[5].as_ref().unwrap().rows().unwrap().scalar(),
            Some(&Value::Int(3)),
            "{label}"
        );
    }
}

#[test]
fn shared_scans_serve_checkouts_identical_to_fresh_scans() {
    // A batch with many checkouts of the same version set exercises the
    // shared-scan cache; every staged table must still hold exactly the
    // version's rows (same count, same keys) and commit back cleanly.
    let shared = shared_with_two_cvds(10);
    let mut session = shared.session("u").unwrap();
    let mut requests: Vec<Request> = Vec::new();
    for i in 0..4 {
        requests.push(
            Checkout::of("left")
                .version(1u64)
                .into_table(format!("w{i}"))
                .into(),
        );
    }
    for i in 0..4 {
        requests.push(Run::sql(format!("SELECT count(*) FROM w{i}")).into());
    }
    let results = session.batch(requests);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "request {i}: {r:?}");
    }
    for r in &results[4..] {
        assert_eq!(
            r.as_ref().unwrap().rows().unwrap().scalar(),
            Some(&Value::Int(10))
        );
    }
    // One of the cached checkouts commits back as a faithful new version.
    session.sql("UPDATE w0 SET v = 1 WHERE k = 3").unwrap();
    let vid = session.commit("w0", "from cached checkout").unwrap();
    let n = session
        .run(&format!(
            "SELECT count(*) FROM VERSION {} OF CVD left",
            vid.0
        ))
        .unwrap();
    assert_eq!(n.scalar(), Some(&Value::Int(10)));
}
