//! Property-based tests for the engine substrate: total ordering of
//! values, SQL print→parse fixpoints, join-algorithm equivalence, and
//! index/scan agreement under random data.

use proptest::prelude::*;

use orpheusdb::engine::sql::parser::parse_statement;
use orpheusdb::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Double),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,8}".prop_map(Value::Text),
        proptest::collection::vec(-100i64..100, 0..6).prop_map(Value::IntArray),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// total_cmp is a total order: antisymmetric and transitive on triples,
    /// and equal values hash equally.
    #[test]
    fn value_total_order_laws(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Sorting values never panics and produces a nondecreasing sequence.
    #[test]
    fn sorting_values_is_stable(mut vs in proptest::collection::vec(arb_value(), 0..30)) {
        vs.sort();
        for w in vs.windows(2) {
            prop_assert_ne!(w[0].total_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
    }

    /// Printed statements re-parse to the identical AST for a family of
    /// generated SELECTs.
    #[test]
    fn sql_print_parse_fixpoint(
        col in "[a-z]{1,6}",
        table in "[a-z]{1,6}",
        n in any::<i32>(),
        desc in any::<bool>(),
        limit in proptest::option::of(0u64..1000),
    ) {
        // Prefix the generated names: reserved words ("on", "as", ...) are
        // not valid identifiers in the dialect, and a whole-word prefix
        // guarantees we never collide with one.
        let col = format!("c_{col}");
        let table = format!("t_{table}");
        let mut sql = format!(
            "SELECT {col}, count(*) AS n FROM {table} WHERE ({col} > {n}) GROUP BY {col} ORDER BY n{}",
            if desc { " DESC" } else { "" }
        );
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let ast = parse_statement(&sql).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_statement(&printed).unwrap();
        prop_assert_eq!(ast, reparsed);
    }

    /// All three join strategies agree with each other and with a
    /// predicate-filtered cross join, on random key distributions.
    #[test]
    fn join_strategies_agree(
        left_keys in proptest::collection::vec(0i64..20, 1..40),
        right_keys in proptest::collection::vec(0i64..20, 1..40),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE l (k INT, tag INT)").unwrap();
        db.execute("CREATE TABLE r (k INT PRIMARY KEY, tag INT)").unwrap();
        for (i, k) in left_keys.iter().enumerate() {
            db.execute(&format!("INSERT INTO l VALUES ({k}, {i})")).unwrap();
        }
        // The indexed side needs unique keys; dedup preserves distribution.
        let mut seen = std::collections::HashSet::new();
        for (i, k) in right_keys.iter().enumerate() {
            if seen.insert(*k) {
                db.execute(&format!("INSERT INTO r VALUES ({k}, {i})")).unwrap();
            }
        }
        let mut counts = Vec::new();
        for strategy in ["hash", "merge", "inl"] {
            db.execute(&format!("SET join_strategy = '{strategy}'")).unwrap();
            let res = db
                .query("SELECT count(*) FROM l, r WHERE l.k = r.k")
                .unwrap();
            counts.push(res.scalar().unwrap().as_int().unwrap());
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[0], counts[2]);
        // Ground truth from the raw key vectors.
        let expected = left_keys
            .iter()
            .filter(|k| seen.contains(k))
            .count() as i64;
        prop_assert_eq!(counts[0], expected);
    }

    /// Aggregates computed by the engine match a straightforward
    /// re-computation in Rust.
    #[test]
    fn aggregates_match_reference(xs in proptest::collection::vec(-1000i64..1000, 1..50)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        for x in &xs {
            db.execute(&format!("INSERT INTO t VALUES ({x})")).unwrap();
        }
        let r = db
            .query("SELECT count(*), sum(x), min(x), max(x) FROM t")
            .unwrap();
        let row = &r.rows[0];
        prop_assert_eq!(row[0].as_int().unwrap(), xs.len() as i64);
        prop_assert_eq!(row[1].as_int().unwrap(), xs.iter().sum::<i64>());
        prop_assert_eq!(row[2].as_int().unwrap(), *xs.iter().min().unwrap());
        prop_assert_eq!(row[3].as_int().unwrap(), *xs.iter().max().unwrap());
    }

    /// Array containment `<@` matches set semantics for random arrays.
    #[test]
    fn containment_matches_set_semantics(
        needle in proptest::collection::vec(0i64..15, 0..5),
        hay in proptest::collection::vec(0i64..15, 0..12),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT[])").unwrap();
        let lit = |v: &Vec<i64>| {
            format!("ARRAY[{}]", v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", "))
        };
        db.execute(&format!("INSERT INTO t VALUES ({})", lit(&hay))).unwrap();
        let r = db
            .query(&format!("SELECT count(*) FROM t WHERE {} <@ a", lit(&needle)))
            .unwrap();
        let expected = needle.iter().all(|x| hay.contains(x));
        prop_assert_eq!(r.scalar().unwrap().as_int().unwrap() == 1, expected);
    }

    /// Index point lookups agree with full scans after random inserts,
    /// deletes and updates.
    #[test]
    fn index_agrees_with_scan(ops in proptest::collection::vec((0u8..3, 0i64..30), 1..40)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)").unwrap();
        for (op, k) in &ops {
            match op {
                0 => { let _ = db.execute(&format!("INSERT INTO t VALUES ({k}, 0)")); }
                1 => { db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap(); }
                _ => { db.execute(&format!("UPDATE t SET v = v + 1 WHERE k = {k}")).unwrap(); }
            }
        }
        for k in 0..30 {
            // Index path: equality on the PK column.
            let by_index = db
                .query(&format!("SELECT v FROM t WHERE k = {k}"))
                .unwrap()
                .rows;
            // Scan path: disable index promotion by obfuscating the predicate.
            let by_scan = db
                .query(&format!("SELECT v FROM t WHERE k + 0 = {k}"))
                .unwrap()
                .rows;
            prop_assert_eq!(by_index, by_scan);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// A database snapshot roundtrips exactly: schemas, rows, clustering,
    /// and storage accounting all survive serialize → deserialize.
    #[test]
    fn storage_snapshot_roundtrip(
        rows in proptest::collection::vec(
            (any::<i64>(), -1e9f64..1e9, "[a-zA-Zα-ω]{0,10}", any::<bool>(),
             proptest::collection::vec(any::<i64>(), 0..5)),
            0..40,
        ),
        cluster in any::<bool>(),
        strategy in 0u8..4,
    ) {
        use orpheusdb::engine::storage::{deserialize_database, serialize_database};
        use orpheusdb::engine::JoinStrategy;

        let mut db = Database::new();
        db.settings.join_strategy = match strategy {
            0 => JoinStrategy::Auto,
            1 => JoinStrategy::Hash,
            2 => JoinStrategy::Merge,
            _ => JoinStrategy::IndexNestedLoop,
        };
        db.execute("CREATE TABLE t (k INT, d DOUBLE, s TEXT, b BOOL, a INT[], PRIMARY KEY (k))")
            .unwrap();
        {
            let t = db.table_mut("t").unwrap();
            for (k, d, s, b, a) in &rows {
                // Duplicate keys are rejected by the PK index; skip them so the
                // inserted multiset is exactly what the snapshot must preserve.
                let _ = t.insert(vec![
                    Value::Int(*k),
                    Value::Double(*d),
                    Value::Text(s.clone()),
                    Value::Bool(*b),
                    Value::IntArray(a.clone()),
                ]);
            }
            if cluster {
                t.cluster_by(&["k"]).unwrap();
            }
        }

        let back = deserialize_database(&serialize_database(&db)).unwrap();
        let orig_t = db.table("t").unwrap();
        let back_t = back.table("t").unwrap();
        prop_assert_eq!(back.settings.join_strategy, db.settings.join_strategy);
        prop_assert_eq!(&back_t.schema, &orig_t.schema);
        prop_assert_eq!(back_t.rows(), orig_t.rows());
        prop_assert_eq!(back_t.heap_bytes(), orig_t.heap_bytes());
        prop_assert_eq!(back_t.storage_bytes(), orig_t.storage_bytes());
        prop_assert_eq!(back_t.clustered_on(), orig_t.clustered_on());
    }

    /// Any mutation of a serialized snapshot either fails to load or loads
    /// to a database (never panics); single-byte corruption in the payload
    /// region is always detected by the checksum.
    #[test]
    fn storage_snapshot_detects_corruption(pos_seed in any::<usize>(), delta in 1u8..=255) {
        use orpheusdb::engine::storage::{deserialize_database, serialize_database};

        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, s TEXT)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')")).unwrap();
        }
        let bytes = serialize_database(&db);
        // Corrupt one byte anywhere in the payload (between the 16-byte
        // header and the 4-byte trailing CRC).
        let payload_len = bytes.len() - 20;
        let pos = 16 + pos_seed % payload_len;
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= delta;
        prop_assert!(deserialize_database(&corrupted).is_err());
    }
}

/// Reserved words are rejected as identifiers everywhere — the flip side
/// of the print→parse fixpoint above (found by the fixpoint property when
/// the generator emitted `on` as a column name).
#[test]
fn reserved_words_are_rejected_as_identifiers() {
    for kw in [
        "on", "as", "from", "where", "select", "group", "order", "limit",
    ] {
        assert!(
            parse_statement(&format!("SELECT {kw} FROM t")).is_err(),
            "column {kw}"
        );
        assert!(
            parse_statement(&format!("SELECT x FROM {kw}")).is_err(),
            "table {kw}"
        );
    }
    // Near-misses are fine.
    parse_statement("SELECT onx, fromage FROM selects").unwrap();
}
