//! Wire-protocol acceptance: every [`Request`] and [`Response`] variant —
//! and every [`CoreError`] — survives a frame encode/decode round trip
//! bit-exactly, and malformed input (truncated prefixes, truncated
//! payloads, oversized frames, bad magic, unknown tags, hostile counts,
//! non-UTF-8 strings, trailing bytes) produces a [`CoreError::Protocol`]
//! error — never a panic, never a wrong decode.

use std::io::Cursor;

use orpheusdb::net::proto::{read_frame, write_frame};
use orpheusdb::net::{Frame, MAX_FRAME, PROTOCOL_VERSION};
use orpheusdb::prelude::*;

const CSV: &str = "id,score\n1,10\n2,20\n3,30\n";
const SCHEMA: &str = "id:int!pk\nscore:int\n";

/// Every request variant, with edge-case payloads mixed in: empty vectors,
/// unicode, negative and extreme ints, NaN doubles, multi-version
/// checkouts, optional fields both present and absent.
fn request_corpus() -> Vec<Request> {
    let schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("rank", DataType::Int),
        Column::new("weight", DataType::Double),
        Column::new("alive", DataType::Bool),
        Column::new("path", DataType::IntArray),
    ])
    .with_primary_key(&["name"])
    .unwrap();
    vec![
        InitFromCsv::cvd("scores")
            .csv(CSV)
            .schema_text(SCHEMA)
            .into(),
        Init::cvd("ranks")
            .schema(schema)
            .row(vec![
                "naïve — name".into(),
                Value::Int(i64::MIN),
                Value::Double(f64::NAN),
                Value::Bool(true),
                Value::IntArray(vec![i64::MAX, -1, 0]),
            ])
            .row(vec![
                "".into(),
                Value::Null,
                Value::Double(-0.0),
                Value::Bool(false),
                Value::IntArray(Vec::new()),
            ])
            .model(ModelKind::CombinedTable)
            .into(),
        Checkout::of("scores")
            .versions([1u64, 2, 3])
            .into_table("work")
            .into(),
        Checkout::of("scores")
            .version(2u64)
            .into_csv("out dir/scores.csv")
            .into(),
        Commit::table("work").message("πρώτη δέσμευση").into(),
        CommitCsv::path("scores.csv")
            .csv("rid,id,score\n1,1,10\n")
            .message("")
            .schema_text(SCHEMA)
            .into(),
        CommitCsv::path("bare.csv")
            .csv("a\n1\n")
            .message("m")
            .into(),
        Diff::of("scores").between(1u64, u64::MAX).into(),
        Run::sql("SELECT count(*) FROM VERSION 3 OF CVD scores").into(),
        Request::Ls,
        Log::of("scores").into(),
        DropCvd::named("ranks").into(),
        Optimize::cvd("scores").into(),
        Optimize::cvd("scores")
            .gamma(2.0)
            .mu(1.5)
            .weight(3u64, 50)
            .weight(1u64, u64::MAX)
            .into(),
        CreateUser::named("courier").into(),
        Login::as_user("courier").into(),
        Request::Whoami,
        Discard::table("scratch").into(),
    ]
}

/// Every response variant with representative payloads.
fn response_corpus() -> Vec<Response> {
    let schema = Schema::new(vec![
        Column::new("vid", DataType::Int),
        Column::new("label", DataType::Text),
    ]);
    vec![
        Response::Initialized {
            cvd: "scores".into(),
            version: Vid(1),
        },
        Response::CheckedOut {
            cvd: "scores".into(),
            versions: vec![Vid(1), Vid(3)],
            table: "work".into(),
        },
        Response::CheckedOutCsv {
            cvd: "scores".into(),
            versions: vec![Vid(2)],
            path: "scores.csv".into(),
            csv: "rid,id,score\n1,1,10\n".into(),
        },
        Response::Committed {
            target: "work".into(),
            version: Vid(42),
        },
        Response::Diffed {
            cvd: "scores".into(),
            from: Vid(1),
            to: Vid(2),
            diff: VersionDiff {
                only_in_first: vec![vec![Value::Int(1), Value::Text("a".into())]],
                only_in_second: Vec::new(),
            },
        },
        Response::Rows(orpheusdb::engine::QueryResult {
            schema,
            rows: vec![
                vec![Value::Int(1), Value::Text("α".into())],
                vec![Value::Null, Value::Text(String::new())],
            ],
            affected: 2,
        }),
        Response::CvdList(vec!["ranks".into(), "scores".into()]),
        Response::CvdList(Vec::new()),
        Response::Log {
            cvd: "scores".into(),
            entries: vec![
                LogEntry {
                    vid: Vid(1),
                    parents: Vec::new(),
                    commit_t: 0,
                    num_records: 3,
                    message: "init".into(),
                },
                LogEntry {
                    vid: Vid(3),
                    parents: vec![Vid(1), Vid(2)],
                    commit_t: 7,
                    num_records: 4,
                    message: "merge".into(),
                },
            ],
        },
        Response::Dropped {
            cvd: "scores".into(),
        },
        Response::Optimized {
            cvd: "scores".into(),
            report: orpheusdb::core::partition_store::OptimizeReport {
                num_partitions: 3,
                storage_records: 1234,
                cavg: 1.25,
                delta: 0.5,
            },
        },
        Response::UserCreated {
            user: "courier".into(),
        },
        Response::LoggedIn {
            user: "courier".into(),
        },
        Response::CurrentUser {
            user: "courier".into(),
        },
        Response::Discarded {
            table: "scratch".into(),
        },
    ]
}

/// Every error variant (including every wrapped engine error).
fn error_corpus() -> Vec<CoreError> {
    use orpheusdb::engine::EngineError as E;
    let engine = [
        E::TableNotFound("t".into()),
        E::TableExists("t".into()),
        E::ColumnNotFound("c".into()),
        E::AmbiguousColumn("c".into()),
        E::TypeMismatch("m".into()),
        E::UniqueViolation("u".into()),
        E::Parse("p".into()),
        E::Plan("p".into()),
        E::Arity("a".into()),
        E::Eval("e".into()),
        E::IndexNotFound("i".into()),
        E::Storage("s".into()),
        E::Invalid("i".into()),
    ];
    let mut errors: Vec<CoreError> = engine.into_iter().map(CoreError::Engine).collect();
    errors.extend([
        CoreError::CvdNotFound("nope".into()),
        CoreError::CvdExists("scores".into()),
        CoreError::VersionNotFound {
            cvd: "scores".into(),
            version: Vid(99),
        },
        CoreError::NotStaged("work".into()),
        CoreError::PrimaryKeyViolation("id".into()),
        CoreError::SchemaMismatch("columns differ".into()),
        CoreError::PermissionDenied("not yours".into()),
        CoreError::Parse {
            command: Some(CommandKind::Checkout),
            message: "bad flag".into(),
        },
        CoreError::Parse {
            command: None,
            message: "unparsable".into(),
        },
        CoreError::UnknownCommand("bogus".into()),
        CoreError::BadRequest {
            command: CommandKind::Commit,
            reason: "no target".into(),
        },
        CoreError::Io("io".into()),
        CoreError::Csv("csv".into()),
        CoreError::Storage("storage".into()),
        CoreError::CrossCvd(vec!["a".into(), "b".into()]),
        CoreError::WorkerPanicked {
            shard: "left".into(),
        },
        CoreError::Invalid("invalid".into()),
        CoreError::Network("hung up".into()),
        CoreError::Protocol("bad frame".into()),
        CoreError::DeadlineExceeded { elapsed_ms: 30_000 },
        CoreError::Overloaded { retry_after_ms: 50 },
        CoreError::Degraded("append failed".into()),
        CoreError::ResponseTimeout {
            waited_ms: 2_500,
            state: "connected, 2 in flight".into(),
        },
    ]);
    errors
}

/// Frames have no `PartialEq` (responses carry errors and floats), so
/// round trips compare the exhaustive `Debug` rendering — which covers
/// every field, including NaN payloads.
fn assert_roundtrip(frame: &Frame) {
    let payload = frame.encode();
    let decoded =
        Frame::decode(&payload).unwrap_or_else(|e| panic!("decode failed for {frame:?}: {e}"));
    assert_eq!(format!("{frame:?}"), format!("{decoded:?}"));
}

#[test]
fn every_request_variant_roundtrips_in_single_and_batch_frames() {
    let corpus = request_corpus();
    let kinds: std::collections::HashSet<CommandKind> = corpus.iter().map(|r| r.kind()).collect();
    for kind in CommandKind::ALL {
        assert!(kinds.contains(&kind), "request corpus missed {kind}");
    }
    for (i, request) in corpus.iter().enumerate() {
        assert_roundtrip(&Frame::Req {
            id: i as u64 + 1,
            request: request.clone(),
        });
    }
    assert_roundtrip(&Frame::Batch {
        id: u64::MAX,
        requests: corpus,
    });
    assert_roundtrip(&Frame::Batch {
        id: 7,
        requests: Vec::new(),
    });
}

#[test]
fn every_response_and_error_variant_roundtrips() {
    for (i, response) in response_corpus().into_iter().enumerate() {
        assert_roundtrip(&Frame::Resp {
            id: i as u64,
            outcome: Box::new(Ok(response)),
        });
    }
    for (i, error) in error_corpus().into_iter().enumerate() {
        assert_roundtrip(&Frame::Resp {
            id: i as u64,
            outcome: Box::new(Err(error)),
        });
    }
    let outcomes: Vec<Result<Response, CoreError>> = response_corpus()
        .into_iter()
        .map(Ok)
        .chain(error_corpus().into_iter().map(Err))
        .collect();
    assert_roundtrip(&Frame::BatchResp { id: 3, outcomes });
}

#[test]
fn handshake_frames_roundtrip() {
    assert_roundtrip(&Frame::Hello {
        version: PROTOCOL_VERSION,
        user: "ada".into(),
        resume: None,
    });
    assert_roundtrip(&Frame::Hello {
        version: PROTOCOL_VERSION,
        user: "ada".into(),
        resume: Some(42),
    });
    assert_roundtrip(&Frame::Welcome {
        version: PROTOCOL_VERSION,
        user: "".into(),
        session: 7,
        resumed: true,
    });
    assert_roundtrip(&Frame::Welcome {
        version: PROTOCOL_VERSION,
        user: "ada".into(),
        session: u64::MAX,
        resumed: false,
    });
}

#[test]
fn frames_stream_through_a_byte_channel_and_eof_is_clean() {
    let mut wire = Vec::new();
    let frames = vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
            user: "ada".into(),
            resume: None,
        },
        Frame::Req {
            id: 1,
            request: Request::Ls,
        },
        Frame::Resp {
            id: 1,
            outcome: Box::new(Ok(Response::CvdList(vec!["scores".into()]))),
        },
    ];
    for frame in &frames {
        write_frame(&mut wire, frame).unwrap();
    }
    let mut cursor = Cursor::new(wire);
    for frame in &frames {
        let decoded = read_frame(&mut cursor, MAX_FRAME).unwrap().unwrap();
        assert_eq!(format!("{frame:?}"), format!("{decoded:?}"));
    }
    // EOF exactly at a frame boundary is a clean end of stream.
    assert!(read_frame(&mut cursor, MAX_FRAME).unwrap().is_none());
}

fn expect_protocol_error(bytes: &[u8], what: &str) {
    match read_frame(&mut Cursor::new(bytes.to_vec()), MAX_FRAME) {
        Err(CoreError::Protocol(_)) => {}
        other => panic!("{what}: expected a protocol error, got {other:?}"),
    }
}

#[test]
fn truncated_and_oversized_frames_error_without_panicking() {
    // EOF inside the length prefix.
    expect_protocol_error(&[0, 0, 9], "truncated length prefix");
    // Length prefix promises more payload than the stream holds.
    expect_protocol_error(&[0, 0, 0, 10, 1, 2, 3], "truncated payload");
    // A frame larger than the cap is refused before any allocation.
    let oversized = ((MAX_FRAME + 1) as u32).to_be_bytes();
    expect_protocol_error(&oversized, "oversized frame");
    // A tiny cap rejects an otherwise valid frame.
    let mut wire = Vec::new();
    write_frame(
        &mut wire,
        &Frame::Req {
            id: 1,
            request: Run::sql("SELECT 1").into(),
        },
    )
    .unwrap();
    match read_frame(&mut Cursor::new(wire), 4) {
        Err(CoreError::Protocol(m)) => assert!(m.contains("exceeds"), "{m}"),
        other => panic!("small cap: {other:?}"),
    }
}

#[test]
fn hostile_payloads_error_without_panicking() {
    let decode_err = |payload: &[u8], what: &str| match Frame::decode(payload) {
        Err(CoreError::Protocol(_)) => {}
        other => panic!("{what}: expected a protocol error, got {other:?}"),
    };
    decode_err(&[], "empty payload");
    decode_err(&[99], "unknown frame tag");
    // Hello with the wrong magic is rejected by name.
    match Frame::decode(&[1, b'E', b'V', b'I', b'L', 1, 0, 0, 0, 0, 0]) {
        Err(CoreError::Protocol(m)) => assert!(m.contains("magic"), "{m}"),
        other => panic!("bad magic: {other:?}"),
    }
    // Req with an unknown request tag.
    decode_err(&[3, 0, 0, 0, 0, 0, 0, 0, 1, 200], "unknown request tag");
    // Batch whose count promises far more requests than the bytes hold.
    let mut batch = vec![4]; // Batch tag
    batch.extend_from_slice(&1u64.to_le_bytes());
    batch.extend_from_slice(&u32::MAX.to_le_bytes());
    decode_err(&batch, "hostile batch count");
    // Login whose string is not UTF-8.
    let mut login = vec![3]; // Req tag
    login.extend_from_slice(&1u64.to_le_bytes());
    login.push(13); // Login request tag
    login.extend_from_slice(&2u32.to_le_bytes());
    login.extend_from_slice(&[0xff, 0xfe]);
    decode_err(&login, "non-UTF-8 string");
    // A valid frame with trailing garbage must not decode.
    let mut trailing = Frame::Req {
        id: 1,
        request: Request::Ls,
    }
    .encode();
    trailing.push(0);
    decode_err(&trailing, "trailing bytes");
}
