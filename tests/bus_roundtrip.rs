//! The command-bus acceptance test: every [`Request`] variant round-trips
//! through both executors — [`OrpheusDB`] directly and a [`Session`] over
//! a [`SharedOrpheusDB`] — producing the same structured responses. One
//! generic scenario drives both, which is the point of the bus: front-ends
//! and workloads are written once, executors are interchangeable.

use orpheusdb::prelude::*;

const CSV: &str = "id,score\n1,10\n2,20\n3,30\n";
const SCHEMA: &str = "id:int!pk\nscore:int\n";

/// Drive every request variant through `executor`, asserting the response
/// shapes, and return the set of command kinds exercised.
fn roundtrip_all<E: Executor>(executor: &mut E) -> std::collections::HashSet<CommandKind> {
    let mut kinds = std::collections::HashSet::new();
    let mut track = |request: &Request| {
        kinds.insert(request.kind());
    };
    let mut dispatch = |executor: &mut E, request: Request| -> Response {
        track(&request);
        let debug = format!("{request:?}");
        executor
            .execute(request)
            .unwrap_or_else(|e| panic!("{debug}: {e}"))
    };

    // Init from CSV text (the `init -f` path) and from typed rows.
    let response = dispatch(
        executor,
        InitFromCsv::cvd("scores")
            .csv(CSV)
            .schema_text(SCHEMA)
            .into(),
    );
    assert!(matches!(
        response,
        Response::Initialized {
            version: Vid(1),
            ..
        }
    ));
    let schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("rank", DataType::Int),
    ])
    .with_primary_key(&["name"])
    .unwrap();
    let response = dispatch(
        executor,
        Init::cvd("ranks")
            .schema(schema)
            .row(vec!["a".into(), 1.into()])
            .row(vec!["b".into(), 2.into()])
            .model(ModelKind::CombinedTable)
            .into(),
    );
    assert_eq!(response.version(), Some(Vid(1)));

    // Checkout into a table, commit it back unchanged (identity commit).
    let response = dispatch(
        executor,
        Checkout::of("scores")
            .version(1u64)
            .into_table("work")
            .into(),
    );
    assert!(matches!(response, Response::CheckedOut { .. }));
    let response = dispatch(executor, Commit::table("work").message("no-op").into());
    assert_eq!(response.version(), Some(Vid(2)));

    // Checkout as CSV, edit the text, commit the CSV back.
    let response = dispatch(
        executor,
        Checkout::of("scores")
            .version(2u64)
            .into_csv("scores.csv")
            .into(),
    );
    let exported = match response {
        Response::CheckedOutCsv { path, csv, .. } => {
            assert_eq!(path, "scores.csv");
            assert!(csv.starts_with("rid,id,score"), "{csv}");
            csv
        }
        other => panic!("unexpected response {other:?}"),
    };
    let response = dispatch(
        executor,
        CommitCsv::path("scores.csv")
            .csv(format!("{exported},4,40\n"))
            .message("add row via csv")
            .into(),
    );
    assert_eq!(response.version(), Some(Vid(3)));

    // Diff, versioned query, catalog listing, history.
    let response = dispatch(executor, Diff::of("scores").between(2u64, 3u64).into());
    match response {
        Response::Diffed { diff, .. } => {
            assert_eq!(diff.only_in_first.len(), 0);
            assert_eq!(diff.only_in_second.len(), 1);
        }
        other => panic!("unexpected response {other:?}"),
    }
    let rows = dispatch(
        executor,
        Run::sql("SELECT count(*) FROM VERSION 3 OF CVD scores").into(),
    )
    .into_rows()
    .unwrap();
    assert_eq!(rows.scalar(), Some(&Value::Int(4)));
    let response = dispatch(executor, Request::Ls);
    assert!(matches!(
        &response,
        Response::CvdList(names) if names == &vec!["ranks".to_string(), "scores".to_string()]
    ));
    let response = dispatch(executor, Log::of("scores").into());
    match response {
        Response::Log { entries, .. } => {
            assert_eq!(entries.len(), 3);
            assert_eq!(entries[2].message, "add row via csv");
            assert_eq!(entries[1].parents, vec![Vid(1)]);
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Partition optimizer, with and without workload weights.
    let response = dispatch(executor, Optimize::cvd("scores").gamma(2.0).mu(1.5).into());
    match response {
        Response::Optimized { report, .. } => assert!(report.num_partitions >= 1),
        other => panic!("unexpected response {other:?}"),
    }
    dispatch(
        executor,
        Optimize::cvd("scores")
            .gamma(2.0)
            .mu(1.5)
            .weight(3u64, 50)
            .into(),
    );

    // User management: create, switch identity, introspect it.
    dispatch(executor, CreateUser::named("courier").into());
    let response = dispatch(executor, Login::as_user("courier").into());
    assert!(matches!(&response, Response::LoggedIn { user } if user == "courier"));
    let response = dispatch(executor, Request::Whoami);
    assert!(matches!(&response, Response::CurrentUser { user } if user == "courier"));

    // Discard a staged checkout; drop both CVDs.
    dispatch(
        executor,
        Checkout::of("scores")
            .version(1u64)
            .into_table("scratch")
            .into(),
    );
    let response = dispatch(executor, Discard::table("scratch").into());
    assert!(matches!(response, Response::Discarded { .. }));
    let response = dispatch(executor, DropCvd::named("scores").into());
    assert!(matches!(response, Response::Dropped { .. }));
    dispatch(executor, DropCvd::named("ranks").into());
    let response = dispatch(executor, Request::Ls);
    assert!(matches!(&response, Response::CvdList(names) if names.is_empty()));

    kinds
}

#[test]
fn every_request_variant_roundtrips_through_orpheusdb() {
    let mut odb = OrpheusDB::new();
    let kinds = roundtrip_all(&mut odb);
    for kind in CommandKind::ALL {
        assert!(kinds.contains(&kind), "OrpheusDB executor missed {kind}");
    }
}

#[test]
fn every_request_variant_roundtrips_through_session() {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let mut session = shared.session("driver").unwrap();
    let kinds = roundtrip_all(&mut session);
    for kind in CommandKind::ALL {
        assert!(kinds.contains(&kind), "Session executor missed {kind}");
    }
    // The session ended the scenario rebound to `courier`, while the
    // shared instance identity never changed.
    assert_eq!(session.user(), "courier");
    assert_eq!(
        shared.read(|odb| odb.access.whoami().to_string()),
        "default"
    );
}

/// The two executors agree response-for-response on a shared scenario.
#[test]
fn executors_agree_on_summaries() {
    let scenario = || -> Vec<Request> {
        vec![
            InitFromCsv::cvd("d").csv(CSV).schema_text(SCHEMA).into(),
            Checkout::of("d").version(1u64).into_table("t").into(),
            Commit::table("t").message("m").into(),
            Run::sql("SELECT count(*) FROM VERSION 2 OF CVD d").into(),
            Log::of("d").into(),
            Request::Ls,
        ]
    };

    let mut odb = OrpheusDB::new();
    let direct: Vec<String> = odb
        .batch(scenario())
        .into_iter()
        .map(|r| r.unwrap().summary())
        .collect();

    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let mut session = shared.session("user").unwrap();
    let via_session: Vec<String> = session
        .batch(scenario())
        .into_iter()
        .map(|r| r.unwrap().summary())
        .collect();

    assert_eq!(direct, via_session);
}
