//! End-to-end durability tests: the write-ahead log + crash recovery
//! layer (`crates/core/src/wal.rs`, `crates/core/src/recovery.rs`)
//! exercised through the public API — open, mutate, drop without any
//! snapshot save, reopen, and demand the acknowledged state back
//! bit-for-bit. File-surgery cases (torn tails, bit flips) corrupt the
//! log on disk and check the documented policy: a torn final record is
//! truncated silently, everything else is a typed error, never a panic.
//!
//! Iteration counts are modest by default and scale up under
//! `ORPHEUS_STRESS=1` (the CI stress job).

use std::fs::OpenOptions;
use std::path::PathBuf;

use orpheusdb::core::wal::{self, read_segment};
use orpheusdb::core::{recovery, CoreError};
use orpheusdb::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orpheus-walrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Iteration multiplier: 1 normally, larger under `ORPHEUS_STRESS=1`.
fn stress_factor() -> usize {
    match std::env::var("ORPHEUS_STRESS").as_deref() {
        Ok("1") => 10,
        _ => 1,
    }
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("grade", DataType::Int),
    ])
}

fn rows(n: i64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
        .collect()
}

/// Seed a CVD and run one checkout → edit → commit cycle through the
/// command bus, returning the committed version.
fn seed_and_commit(odb: &mut OrpheusDB) -> Vid {
    odb.execute(
        Init::cvd("grades")
            .schema(schema())
            .rows(rows(6))
            .model(ModelKind::SplitByRlist)
            .into(),
    )
    .expect("init");
    odb.execute(
        Checkout::of("grades")
            .version(1u64)
            .into_table("work")
            .into(),
    )
    .expect("checkout");
    odb.execute(Run::sql("INSERT INTO work (id, grade) VALUES (100, 1000)").into())
        .expect("insert");
    match odb
        .execute(Commit::table("work").message("curved").into())
        .expect("commit")
    {
        Response::Committed { version, .. } => version,
        other => panic!("expected Committed, got {other:?}"),
    }
}

/// The comparable durable state of one CVD: version metadata + rlists.
fn graph(odb: &OrpheusDB, name: &str) -> (Vec<String>, Vec<Vec<i64>>) {
    let cvd = odb.cvd(name).expect("cvd exists");
    (
        cvd.versions.iter().map(|m| format!("{m:?}")).collect(),
        cvd.version_rids.iter().map(|r| (**r).clone()).collect(),
    )
}

#[test]
fn acknowledged_commits_survive_reopen_without_any_snapshot_save() {
    let dir = tmp_dir("ack");
    let mut odb = recovery::open(&dir).expect("open fresh");
    let vid = seed_and_commit(&mut odb);
    assert_eq!(vid, Vid(2));
    let before = graph(&odb, "grades");
    drop(odb); // no save_to, no checkpoint: the log is all there is

    let again = recovery::open(&dir).expect("reopen");
    assert_eq!(again.ls(), vec!["grades".to_string()]);
    assert_eq!(graph(&again, "grades"), before);
    // The edited row made it: version 2 has one record more than v1.
    assert_eq!(
        again.cvd("grades").unwrap().rids_of(Vid(2)).unwrap().len(),
        7
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_commit_is_invisible_after_replay() {
    let dir = tmp_dir("failed");
    let mut odb = recovery::open(&dir).expect("open fresh");
    odb.execute(
        Init::cvd("grades")
            .schema(schema())
            .rows(rows(4))
            .model(ModelKind::SplitByRlist)
            .into(),
    )
    .expect("init");
    // Committing a table that was never checked out must fail...
    assert!(odb
        .execute(Commit::table("no_such_staged").message("nope").into())
        .is_err());
    let before = graph(&odb, "grades");
    drop(odb);

    // ...and must not leave a partial record for replay to trip over:
    // the log holds exactly the init, nothing else.
    let scan = read_segment(&wal::segment_path(&dir, 1), 1).expect("scan log");
    assert_eq!(scan.records.len(), 1);
    assert!(!scan.truncated_tail);

    let again = recovery::open(&dir).expect("reopen");
    assert_eq!(graph(&again, "grades"), before);
    assert_eq!(again.cvd("grades").unwrap().num_versions(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_rotates_generations_and_later_commits_still_replay() {
    let dir = tmp_dir("ckpt");
    let mut odb = recovery::open(&dir).expect("open fresh");
    seed_and_commit(&mut odb);

    let gen = recovery::checkpoint(&mut odb).expect("checkpoint");
    assert_eq!(gen, 2);
    assert_eq!(wal::read_current(&dir).unwrap(), Some(2));
    // The old generation's files are swept.
    assert!(!wal::segment_path(&dir, 1).exists());
    assert!(!wal::snapshot_path(&dir, 1).exists());
    assert!(wal::segment_path(&dir, 2).exists());
    assert!(wal::snapshot_path(&dir, 2).exists());

    // Mutations after the rotation land in the new segment and replay
    // on top of the new snapshot.
    odb.execute(Checkout::of("grades").version(2u64).into_table("w2").into())
        .expect("checkout");
    odb.execute(Commit::table("w2").message("post-rotation").into())
        .expect("commit");
    let before = graph(&odb, "grades");
    drop(odb);

    let again = recovery::open(&dir).expect("reopen");
    assert_eq!(graph(&again, "grades"), before);
    assert_eq!(again.cvd("grades").unwrap().num_versions(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_final_record_is_truncated_and_the_prefix_recovers() {
    let dir = tmp_dir("torn");
    let mut odb = recovery::open(&dir).expect("open fresh");
    seed_and_commit(&mut odb);
    let full = graph(&odb, "grades");
    drop(odb);

    // Tear the last record: chop the segment mid-frame, simulating a
    // crash during the final append.
    let path = wal::segment_path(&dir, 1);
    let len = std::fs::metadata(&path).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let again = recovery::open(&dir).expect("a torn tail is not fatal");
    // The commit (the last logged record) is gone; the init survived.
    assert_eq!(again.ls(), vec!["grades".to_string()]);
    assert_eq!(again.cvd("grades").unwrap().num_versions(), 1);
    assert_ne!(graph(&again, "grades"), full);

    // The reopened instance reattached cleanly: new commits append and
    // survive another reopen.
    let mut again = again;
    let vid = seed_and_commit_on_existing(&mut again);
    let after = graph(&again, "grades");
    drop(again);
    let third = recovery::open(&dir).expect("reopen after reattach");
    assert_eq!(graph(&third, "grades"), after);
    assert_eq!(vid, Vid(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkout → commit cycle against an already-seeded `grades` CVD.
fn seed_and_commit_on_existing(odb: &mut OrpheusDB) -> Vid {
    odb.execute(Checkout::of("grades").version(1u64).into_table("w").into())
        .expect("checkout");
    match odb
        .execute(Commit::table("w").message("reattached").into())
        .expect("commit")
    {
        Response::Committed { version, .. } => version,
        other => panic!("expected Committed, got {other:?}"),
    }
}

#[test]
fn bit_flip_mid_log_is_a_typed_error_not_a_panic() {
    let dir = tmp_dir("flip");
    let mut odb = recovery::open(&dir).expect("open fresh");
    seed_and_commit(&mut odb); // two records: init + commit
    drop(odb);

    // Flip one byte inside the FIRST record's payload — mid-file
    // corruption, not a torn tail, so recovery must refuse loudly.
    let path = wal::segment_path(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    let idx = wal::HEADER_LEN as usize + 8 + 4;
    bytes[idx] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    match recovery::open(&dir) {
        Err(CoreError::Protocol(msg)) => {
            assert!(msg.contains("checksum"), "unexpected message: {msg}")
        }
        other => panic!("expected a Protocol error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shared_and_async_sessions_recover_identically() {
    let dir = tmp_dir("shared");
    {
        let shared = recovery::open_shared(&dir).expect("open fresh");
        let mut alice = shared.session("alice").expect("session");
        alice
            .execute(
                Init::cvd("grades")
                    .schema(schema())
                    .rows(rows(5))
                    .model(ModelKind::SplitByRlist)
                    .into(),
            )
            .expect("init");
        // Drive a second CVD through the async executor: coordinator +
        // worker pool, the service stack's execution path.
        let pool = AsyncExecutor::new(shared.clone());
        let mut bob = pool.handle("bob").expect("handle");
        bob.execute(
            Init::cvd("marks")
                .schema(schema())
                .rows(rows(3))
                .model(ModelKind::SplitByRlist)
                .into(),
        )
        .expect("init via async");
        bob.execute(Checkout::of("marks").version(1u64).into_table("mw").into())
            .expect("checkout");
        bob.execute(Commit::table("mw").message("async commit").into())
            .expect("commit");
        drop(pool);
    } // dropped without any snapshot save

    let again = recovery::open(&dir).expect("reopen");
    assert_eq!(again.ls(), vec!["grades".to_string(), "marks".to_string()]);
    assert_eq!(again.cvd("grades").unwrap().num_versions(), 1);
    assert_eq!(again.cvd("marks").unwrap().num_versions(), 2);
    // Commit ownership replays under the recorded identity.
    let log = again.log_entries("marks").expect("log");
    assert_eq!(log.last().unwrap().message, "async commit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_stress_many_commits_across_checkpoints() {
    let rounds = 8 * stress_factor();
    let dir = tmp_dir("stress");
    let mut odb = recovery::open(&dir).expect("open fresh");
    odb.execute(
        Init::cvd("grades")
            .schema(schema())
            .rows(rows(8))
            .model(ModelKind::SplitByRlist)
            .into(),
    )
    .expect("init");
    for i in 0..rounds {
        let table = format!("w{i}");
        odb.execute(
            Checkout::of("grades")
                .version(1u64)
                .into_table(&table)
                .into(),
        )
        .expect("checkout");
        odb.execute(Commit::table(&table).message(format!("round {i}")).into())
            .expect("commit");
        if i % 3 == 2 {
            recovery::checkpoint(&mut odb).expect("checkpoint");
        }
    }
    let before = graph(&odb, "grades");
    drop(odb);

    let again = recovery::open(&dir).expect("reopen");
    assert_eq!(graph(&again, "grades"), before);
    assert_eq!(again.cvd("grades").unwrap().num_versions(), rounds + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_and_recreate_replays_cleanly() {
    let dir = tmp_dir("dropcvd");
    let mut odb = recovery::open(&dir).expect("open fresh");
    seed_and_commit(&mut odb);
    odb.execute(DropCvd::named("grades").into()).expect("drop");
    odb.execute(
        Init::cvd("grades")
            .schema(schema())
            .rows(rows(2))
            .model(ModelKind::SplitByRlist)
            .into(),
    )
    .expect("re-init");
    let before = graph(&odb, "grades");
    drop(odb);

    let again = recovery::open(&dir).expect("reopen");
    assert_eq!(graph(&again, "grades"), before);
    assert_eq!(again.cvd("grades").unwrap().num_versions(), 1);
    assert_eq!(
        again.cvd("grades").unwrap().rids_of(Vid(1)).unwrap().len(),
        2
    );
    let _ = std::fs::remove_dir_all(&dir);
}
