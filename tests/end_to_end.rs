//! Cross-crate integration tests: full version-control workflows through
//! the facade crate, exercising engine + core + partition together. Every
//! command is issued through the typed request bus (builders +
//! [`Executor`]); plain SQL edits go straight to the engine, exactly as
//! the paper intends.

use orpheusdb::bench::generator::{Workload, WorkloadParams};
use orpheusdb::bench::loader::load_workload;
use orpheusdb::core::commands::{run_command, MemFiles};
use orpheusdb::prelude::*;

fn protein_schema() -> Schema {
    Schema::new(vec![
        Column::new("protein1", DataType::Text),
        Column::new("protein2", DataType::Text),
        Column::new("neighborhood", DataType::Int),
        Column::new("cooccurrence", DataType::Int),
        Column::new("coexpression", DataType::Int),
    ])
    .with_primary_key(&["protein1", "protein2"])
    .unwrap()
}

fn figure1_rows() -> Vec<Vec<Value>> {
    vec![
        vec![
            "ENSP273047".into(),
            "ENSP261890".into(),
            0.into(),
            53.into(),
            0.into(),
        ],
        vec![
            "ENSP273047".into(),
            "ENSP235932".into(),
            0.into(),
            87.into(),
            0.into(),
        ],
        vec![
            "ENSP300413".into(),
            "ENSP274242".into(),
            426.into(),
            0.into(),
            164.into(),
        ],
        vec![
            "ENSP309334".into(),
            "ENSP346022".into(),
            0.into(),
            227.into(),
            975.into(),
        ],
        vec![
            "ENSP332973".into(),
            "ENSP300134".into(),
            0.into(),
            0.into(),
            83.into(),
        ],
        vec![
            "ENSP472847".into(),
            "ENSP365773".into(),
            225.into(),
            0.into(),
            73.into(),
        ],
    ]
}

fn commit_vid(odb: &mut OrpheusDB, table: &str, message: &str) -> Vid {
    odb.dispatch(Commit::table(table).message(message))
        .unwrap()
        .version()
        .unwrap()
}

/// Reproduce the branch/merge history of Figure 1 / Figure 4 and verify
/// version contents and graph structure under every data model.
#[test]
fn figure1_history_under_every_model() {
    for model in ModelKind::ALL {
        let mut odb = OrpheusDB::new();
        odb.dispatch(
            Init::cvd("protein")
                .schema(protein_schema())
                .rows(figure1_rows())
                .model(model),
        )
        .unwrap();

        // v2 (from v1): modify one record's coexpression.
        odb.dispatch(Checkout::of("protein").version(1u64).into_table("w2"))
            .unwrap();
        odb.engine
            .execute("UPDATE w2 SET coexpression = 83 WHERE protein2 = 'ENSP261890'")
            .unwrap();
        let v2 = commit_vid(&mut odb, "w2", "fix coexpression");

        // v3 (from v1): delete one record.
        odb.dispatch(Checkout::of("protein").version(1u64).into_table("w3"))
            .unwrap();
        odb.engine
            .execute("DELETE FROM w3 WHERE protein1 = 'ENSP309334'")
            .unwrap();
        let v3 = commit_vid(&mut odb, "w3", "drop noisy pair");

        // v4: merge v2 and v3 (v2 wins conflicts).
        odb.dispatch(Checkout::of("protein").versions([v2, v3]).into_table("w4"))
            .unwrap();
        let v4 = commit_vid(&mut odb, "w4", "merge");

        let cvd = odb.cvd("protein").unwrap().clone();
        assert_eq!(cvd.num_versions(), 4, "model {}", model.name());
        assert_eq!(cvd.meta(v4).unwrap().parents, vec![v2, v3]);
        // The merged version has all 6 records (v2 has 6, v3 has 5; union
        // with PK precedence keeps v2's update).
        assert_eq!(odb.version_rows("protein", v4).unwrap().len(), 6);

        // Version graph structure: v2 and v3 both descend from v1.
        assert_eq!(cvd.ancestors(v4).unwrap(), vec![Vid(1), v2, v3]);
        assert_eq!(cvd.descendants(Vid(1)).unwrap(), vec![v2, v3, v4]);

        // Diff v1 vs v2 over the bus: exactly one record replaced.
        match odb
            .dispatch(Diff::of("protein").between(Vid(1), v2))
            .unwrap()
        {
            Response::Diffed { diff, from, to, .. } => {
                assert_eq!((from, to), (Vid(1), v2));
                assert_eq!(diff.only_in_first.len(), 1);
                assert_eq!(diff.only_in_second.len(), 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}

/// All five data models materialize byte-identical version contents for a
/// generated workload, and storage ranks the way Figure 3a says.
#[test]
fn model_equivalence_and_storage_ranking() {
    let w = Workload::generate(WorkloadParams::sci(25, 5, 40));
    let mut storages = std::collections::HashMap::new();
    let mut reference: Option<Vec<Vec<i64>>> = None;
    for model in ModelKind::ALL {
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "w", &w, model).unwrap();
        storages.insert(model, odb.storage_bytes("w").unwrap());
        let contents: Vec<Vec<i64>> = (1..=25u64)
            .map(|v| {
                let mut rids: Vec<i64> = odb
                    .version_rows("w", Vid(v))
                    .unwrap()
                    .into_iter()
                    .map(|(r, _)| r)
                    .collect();
                rids.sort_unstable();
                rids
            })
            .collect();
        match &reference {
            None => reference = Some(contents),
            Some(r) => assert_eq!(&contents, r, "model {} differs", model.name()),
        }
    }
    // Figure 3a ordering: TPV is the most expensive by a wide margin.
    let tpv = storages[&ModelKind::TablePerVersion];
    for (m, s) in &storages {
        if *m != ModelKind::TablePerVersion {
            assert!(tpv > 2 * s, "TPV {tpv} should dwarf {} ({s})", m.name());
        }
    }
}

/// Partitioned and unpartitioned layouts return identical checkouts, and
/// online maintenance keeps working across commits and migrations.
#[test]
fn partitioned_checkout_equivalence_with_online_commits() {
    let w = Workload::generate(WorkloadParams::sci(60, 10, 50));
    let mut odb = OrpheusDB::new();
    load_workload(&mut odb, "w", &w, ModelKind::SplitByRlist).unwrap();

    // Capture pre-partitioning contents.
    let before: Vec<Vec<i64>> = (1..=60u64)
        .map(|v| {
            let mut rids: Vec<i64> = odb
                .version_rows("w", Vid(v))
                .unwrap()
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            rids.sort_unstable();
            rids
        })
        .collect();

    odb.dispatch(Optimize::cvd("w").gamma(2.0).mu(1.2)).unwrap();

    for v in [1u64, 15, 30, 45, 60] {
        let t = format!("chk{v}");
        odb.dispatch(Checkout::of("w").version(v).into_table(&t))
            .unwrap();
        let r = odb
            .engine
            .query(&format!("SELECT rid FROM {t} ORDER BY rid"))
            .unwrap();
        let rids: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        assert_eq!(rids, before[v as usize - 1], "version {v}");
        odb.dispatch(Discard::table(&t)).unwrap();
    }

    // Stream several commits through online maintenance.
    for i in 0..8 {
        let latest = odb.cvd("w").unwrap().latest().unwrap();
        let t = format!("cont{i}");
        odb.dispatch(Checkout::of("w").version(latest).into_table(&t))
            .unwrap();
        odb.engine
            .execute(&format!("UPDATE {t} SET a0 = {i} WHERE a1 < 20"))
            .unwrap();
        commit_vid(&mut odb, &t, "stream");
    }
    let state = odb.cvd("w").unwrap().partition.as_ref().unwrap().clone();
    assert_eq!(state.assignment.len(), 68);
    // Checkout of the newest version still matches its recorded rids.
    let latest = odb.cvd("w").unwrap().latest().unwrap();
    odb.dispatch(Checkout::of("w").version(latest).into_table("final"))
        .unwrap();
    let n = odb.engine.query("SELECT count(*) FROM final").unwrap();
    assert_eq!(
        n.scalar().unwrap().as_int().unwrap() as usize,
        odb.cvd("w").unwrap().rids_of(latest).unwrap().len()
    );
}

/// A realistic multi-user session: two users share one instance through
/// the session layer, with ownership enforced between them.
#[test]
fn shared_session_with_two_users() {
    let mut odb = OrpheusDB::new();
    let csv = "id,score\n1,10\n2,20\n3,30\n";
    let schema = "id:int!pk\nscore:int\n";
    odb.dispatch(InitFromCsv::cvd("scores").csv(csv).schema_text(schema))
        .unwrap();

    let shared = SharedOrpheusDB::new(odb);
    let mut alice = shared.session("alice").unwrap();
    let mut bob = shared.session("bob").unwrap();

    alice
        .dispatch(Checkout::of("scores").version(1u64).into_table("alice_t"))
        .unwrap();
    alice
        .sql("UPDATE alice_t SET score = 11 WHERE id = 1")
        .unwrap();

    // Bob cannot commit Alice's table.
    let err = bob
        .dispatch(Commit::table("alice_t").message("steal"))
        .unwrap_err();
    assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");

    alice
        .dispatch(Commit::table("alice_t").message("alice edit"))
        .unwrap();

    let rows = alice
        .dispatch(Run::sql(
            "SELECT vid, sum(score) AS total FROM CVD scores GROUP BY vid ORDER BY vid",
        ))
        .unwrap()
        .into_rows()
        .unwrap()
        .rows;
    assert_eq!(rows[0][1], Value::Int(60));
    assert_eq!(rows[1][1], Value::Int(61));
}

/// The same workflow driven through the string front-end: command lines
/// parse into the identical typed requests and run on the same bus.
#[test]
fn command_line_session_via_string_front_end() {
    let mut odb = OrpheusDB::new();
    let mut files = MemFiles::default();
    files
        .files
        .insert("d.csv".into(), "id,score\n1,10\n2,20\n3,30\n".into());
    files
        .files
        .insert("d.schema".into(), "id:int!pk\nscore:int\n".into());

    let run = |odb: &mut OrpheusDB, files: &mut MemFiles, cmd: &str| {
        run_command(odb, files, cmd).unwrap_or_else(|e| panic!("{cmd}: {e}"))
    };

    run(&mut odb, &mut files, "init scores -f d.csv -s d.schema");
    run(&mut odb, &mut files, "create_user alice");
    run(&mut odb, &mut files, "create_user bob");

    run(&mut odb, &mut files, "config alice");
    run(&mut odb, &mut files, "checkout scores -v 1 -t alice_t");
    odb.engine
        .execute("UPDATE alice_t SET score = 11 WHERE id = 1")
        .unwrap();

    // Bob cannot commit Alice's table.
    run(&mut odb, &mut files, "config bob");
    assert!(run_command(&mut odb, &mut files, "commit -t alice_t -m steal").is_err());

    run(&mut odb, &mut files, "config alice");
    let response = run(&mut odb, &mut files, "commit -t alice_t -m 'alice edit'");
    assert_eq!(response.version(), Some(Vid(2)));

    let out = run(
        &mut odb,
        &mut files,
        "run SELECT vid, sum(score) AS total FROM CVD scores GROUP BY vid ORDER BY vid",
    );
    let rows = out.into_rows().unwrap().rows;
    assert_eq!(rows[0][1], Value::Int(60));
    assert_eq!(rows[1][1], Value::Int(61));
}

/// Failure injection: the error paths users actually hit.
#[test]
fn failure_modes_are_clean_errors() {
    let mut odb = OrpheusDB::new();
    odb.dispatch(Init::cvd("d").schema(protein_schema()).rows(figure1_rows()))
        .unwrap();

    // Unknown version / CVD, as structured errors.
    let err = odb
        .dispatch(Checkout::of("d").version(9u64).into_table("x"))
        .unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::VersionNotFound {
                version: Vid(9),
                ..
            }
        ),
        "{err}"
    );
    let err = odb
        .dispatch(Checkout::of("nope").version(1u64).into_table("x"))
        .unwrap_err();
    assert!(matches!(err, CoreError::CvdNotFound(_)), "{err}");
    // A checkout with no versions is rejected before touching storage.
    let err = odb.dispatch(Checkout::of("d").into_table("x")).unwrap_err();
    assert!(
        matches!(
            err,
            CoreError::BadRequest {
                command: CommandKind::Checkout,
                ..
            }
        ),
        "{err}"
    );
    // Committing a table that was never checked out.
    odb.engine.execute("CREATE TABLE rogue (a INT)").unwrap();
    assert!(matches!(
        odb.dispatch(Commit::table("rogue").message("m")),
        Err(CoreError::NotStaged(_))
    ));
    // Duplicate CVD.
    assert!(matches!(
        odb.dispatch(Init::cvd("d").schema(protein_schema())),
        Err(CoreError::CvdExists(_))
    ));
    // Checkout into an existing table name.
    assert!(odb
        .dispatch(Checkout::of("d").version(1u64).into_table("rogue"))
        .is_err());
    // Incompatible schema change (TEXT cannot generalize with INT[]).
    odb.dispatch(Checkout::of("d").version(1u64).into_table("w"))
        .unwrap();
    odb.engine.execute("DROP TABLE w").unwrap();
    odb.engine
        .execute("CREATE TABLE w (rid INT, protein1 INT[], protein2 TEXT, neighborhood INT, cooccurrence INT, coexpression INT)")
        .unwrap();
    assert!(matches!(
        odb.dispatch(Commit::table("w").message("bad schema")),
        Err(CoreError::SchemaMismatch(_))
    ));
}

/// The versioned query translator composes with ordinary SQL features.
#[test]
fn versioned_queries_compose() {
    let mut odb = OrpheusDB::new();
    odb.dispatch(Init::cvd("d").schema(protein_schema()).rows(figure1_rows()))
        .unwrap();
    odb.dispatch(Checkout::of("d").version(1u64).into_table("w"))
        .unwrap();
    odb.engine
        .execute("DELETE FROM w WHERE coexpression = 0")
        .unwrap();
    commit_vid(&mut odb, "w", "prune");

    // Subquery + aggregate over one version.
    let r = odb
        .dispatch(Run::sql(
            "SELECT count(*) FROM VERSION 2 OF CVD d \
             WHERE cooccurrence IN (SELECT cooccurrence FROM VERSION 1 OF CVD d)",
        ))
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(4)));

    // Across-version difference via joins: records of v1 absent in v2.
    let r = odb
        .dispatch(Run::sql(
            "SELECT v1.protein1 FROM VERSION 1 OF CVD d AS v1 \
             WHERE v1.protein2 NOT IN (SELECT protein2 FROM VERSION 2 OF CVD d)",
        ))
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

/// EXPLAIN composes with the versioned-query translator: users can inspect
/// the physical plan of a versioned query without executing it.
#[test]
fn explain_versioned_queries() {
    let mut odb = OrpheusDB::new();
    odb.dispatch(
        Init::cvd("protein")
            .schema(protein_schema())
            .rows(figure1_rows()),
    )
    .unwrap();
    let r = odb
        .dispatch(Run::sql(
            "EXPLAIN SELECT count(*) FROM VERSION 1 OF CVD protein",
        ))
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(r.schema.columns[0].name, "QUERY PLAN");
    let text = r
        .rows
        .iter()
        .map(|row| row[0].to_string())
        .collect::<Vec<_>>()
        .join("\n");
    // The split-by-rlist translation shows up physically: an index lookup
    // on the versioning table joined against the data table.
    assert!(text.contains("Index Lookup on protein__rlist"), "{text}");
    assert!(text.contains("Join"), "{text}");
    assert!(text.contains("protein__data"), "{text}");
    assert!(text.contains("Aggregate"), "{text}");
}
