//! The record-access fast path must be invisible: checkout, commit, and
//! diff must produce identical version graphs, rlists, and materialized
//! rows whether versions are read through the rid-index fast path or the
//! retained Table 1 SQL formulation — for all five `ModelKind`s,
//! partitioned CVDs (`optimize` run), and multi-version merge checkouts.

use orpheusdb::core::model::{self, ModelKind};
use orpheusdb::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("protein1", DataType::Text),
        Column::new("protein2", DataType::Text),
        Column::new("score", DataType::Int),
    ])
    .with_primary_key(&["protein1", "protein2"])
    .unwrap()
}

fn rows() -> Vec<Vec<Value>> {
    (0..12)
        .map(|i| {
            vec![
                Value::Text(format!("p{i}")),
                Value::Text(format!("q{i}")),
                Value::Int(i * 10),
            ]
        })
        .collect()
}

/// Build a history through the public API: edits, deletes, inserts, and a
/// two-parent merge — the shapes the fast path has to get right.
fn build_history(model: ModelKind) -> OrpheusDB {
    let mut odb = OrpheusDB::new();
    odb.init_cvd("prot", schema(), rows(), Some(model)).unwrap();
    // v2: update one record, delete one, insert one.
    odb.checkout("prot", &[Vid(1)], "w2").unwrap();
    odb.engine
        .execute("UPDATE w2 SET score = 999 WHERE protein1 = 'p1'")
        .unwrap();
    odb.engine
        .execute("DELETE FROM w2 WHERE protein1 = 'p2'")
        .unwrap();
    odb.engine
        .execute("INSERT INTO w2 VALUES (NULL, 'n1', 'm1', 5)")
        .unwrap();
    odb.commit("w2", "edit").unwrap();
    // v3: branch from v1 again.
    odb.checkout("prot", &[Vid(1)], "w3").unwrap();
    odb.engine
        .execute("INSERT INTO w3 VALUES (NULL, 'n2', 'm2', 6)")
        .unwrap();
    odb.commit("w3", "branch").unwrap();
    // v4: merge checkout of v2 and v3 (v2's records win PK conflicts).
    odb.checkout("prot", &[Vid(2), Vid(3)], "w4").unwrap();
    odb.commit("w4", "merge").unwrap();
    odb
}

fn sorted_rows(mut rows: Vec<(i64, Vec<Value>)>) -> Vec<(i64, Vec<Value>)> {
    rows.sort_by_key(|(rid, _)| *rid);
    rows
}

fn table_rows_by_rid(odb: &mut OrpheusDB, table: &str) -> Vec<Vec<Value>> {
    odb.engine
        .query(&format!("SELECT * FROM {table} ORDER BY rid"))
        .unwrap()
        .rows
}

#[test]
fn version_rows_match_sql_for_all_models_and_versions() {
    for model in ModelKind::ALL {
        let mut odb = build_history(model);
        let versions = odb.cvd("prot").unwrap().num_versions();
        for v in 1..=versions as u64 {
            let cvd = odb.cvd("prot").unwrap().clone();
            assert!(
                model::fast_path_ready(&odb.engine, &cvd, Vid(v)),
                "{} v{v} should be fast-readable",
                model.name()
            );
            let fast = sorted_rows(model::version_rows(&mut odb.engine, &cvd, Vid(v)).unwrap());
            let sql = sorted_rows(model::version_rows_sql(&mut odb.engine, &cvd, Vid(v)).unwrap());
            assert_eq!(fast, sql, "{} v{v}", model.name());
            // The rids agree with the version manager's sorted rlist.
            let rids: Vec<i64> = fast.iter().map(|(r, _)| *r).collect();
            assert_eq!(rids, cvd.rids_of(Vid(v)).unwrap(), "{} v{v}", model.name());
        }
    }
}

#[test]
fn checkout_tables_match_sql_formulation() {
    for model in ModelKind::ALL {
        let mut odb = build_history(model);
        let versions = odb.cvd("prot").unwrap().num_versions();
        for v in 1..=versions as u64 {
            let cvd = odb.cvd("prot").unwrap().clone();
            let fast_t = format!("fast_{v}");
            let sql_t = format!("sql_{v}");
            model::checkout_into(&mut odb.engine, &cvd, Vid(v), &fast_t).unwrap();
            model::checkout_into_sql(&mut odb.engine, &cvd, Vid(v), &sql_t).unwrap();
            assert_eq!(
                table_rows_by_rid(&mut odb, &fast_t),
                table_rows_by_rid(&mut odb, &sql_t),
                "{} v{v}",
                model.name()
            );
        }
    }
}

#[test]
fn version_graphs_agree_across_all_models() {
    // The same edit script must commit identical graphs whatever the model
    // (and therefore whichever read path its commits classified against).
    let reference: Vec<_> = {
        let odb = build_history(ModelKind::SplitByRlist);
        let cvd = odb.cvd("prot").unwrap();
        cvd.versions
            .iter()
            .map(|m| {
                (
                    m.vid,
                    m.parents.clone(),
                    m.parent_weights.clone(),
                    m.num_records,
                )
            })
            .collect()
    };
    for model in ModelKind::ALL {
        let odb = build_history(model);
        let cvd = odb.cvd("prot").unwrap();
        let got: Vec<_> = cvd
            .versions
            .iter()
            .map(|m| {
                (
                    m.vid,
                    m.parents.clone(),
                    m.parent_weights.clone(),
                    m.num_records,
                )
            })
            .collect();
        assert_eq!(got, reference, "{}", model.name());
        // rlists are identical too (same rid allocation order).
        assert_eq!(
            cvd.version_rids,
            build_history(ModelKind::SplitByRlist)
                .cvd("prot")
                .unwrap()
                .version_rids,
            "{}",
            model.name()
        );
    }
}

#[test]
fn merge_checkout_precedence_is_first_listed_wins() {
    for model in ModelKind::ALL {
        let mut odb = build_history(model);
        // v2 changed p1's score to 999; v1 still has 10. Listing v2 first
        // must keep 999, listing v1 first must keep 10.
        odb.checkout("prot", &[Vid(2), Vid(1)], "m21").unwrap();
        let r = odb
            .engine
            .query("SELECT score FROM m21 WHERE protein1 = 'p1'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(999)]], "{}", model.name());
        odb.checkout("prot", &[Vid(1), Vid(2)], "m12").unwrap();
        let r = odb
            .engine
            .query("SELECT score FROM m12 WHERE protein1 = 'p1'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(10)]], "{}", model.name());
        // And the merge matches a manual first-wins dedup over the SQL
        // formulation's rows.
        let cvd = odb.cvd("prot").unwrap().clone();
        let mut expect: Vec<(i64, Vec<Value>)> = Vec::new();
        let mut seen_pk: std::collections::HashSet<(Value, Value)> = Default::default();
        for v in [Vid(2), Vid(1)] {
            for (rid, vals) in model::version_rows_sql(&mut odb.engine, &cvd, v).unwrap() {
                if seen_pk.insert((vals[0].clone(), vals[1].clone())) {
                    expect.push((rid, vals));
                }
            }
        }
        let expect = sorted_rows(expect);
        let got: Vec<(i64, Vec<Value>)> = table_rows_by_rid(&mut odb, "m21")
            .into_iter()
            .map(|mut row| {
                let vals = row.split_off(1);
                let Value::Int(rid) = row[0] else { panic!() };
                (rid, vals)
            })
            .collect();
        assert_eq!(got, expect, "{}", model.name());
    }
}

#[test]
fn partitioned_checkout_matches_sql_and_unpartitioned() {
    let mut odb = build_history(ModelKind::SplitByRlist);
    odb.optimize("prot").unwrap();
    let versions = odb.cvd("prot").unwrap().num_versions();
    for v in 1..=versions as u64 {
        let cvd = odb.cvd("prot").unwrap().clone();
        // Partitioned fast path (what `checkout` routes to)...
        let part_t = format!("part_{v}");
        odb.checkout("prot", &[Vid(v)], &part_t).unwrap();
        // ...against the unpartitioned model read and the SQL formulation.
        let model_t = format!("model_{v}");
        model::checkout_into_sql(&mut odb.engine, &cvd, Vid(v), &model_t).unwrap();
        assert_eq!(
            table_rows_by_rid(&mut odb, &part_t),
            table_rows_by_rid(&mut odb, &model_t),
            "v{v}"
        );
        odb.discard(&part_t).unwrap();
    }
    // Committing on the partitioned layout keeps the graphs identical to
    // the unpartitioned instance driven by the same script.
    odb.checkout("prot", &[Vid(4)], "w5").unwrap();
    odb.engine
        .execute("INSERT INTO w5 VALUES (NULL, 'n3', 'm3', 7)")
        .unwrap();
    odb.commit("w5", "post-optimize").unwrap();
    let plain = build_history(ModelKind::SplitByRlist);
    let cvd = odb.cvd("prot").unwrap();
    assert_eq!(cvd.num_versions(), 5);
    assert_eq!(
        cvd.version_rids[..4],
        plain.cvd("prot").unwrap().version_rids[..]
    );
}

#[test]
fn schema_evolution_keeps_fast_and_sql_paths_equal() {
    for model in ModelKind::ALL {
        let mut odb = build_history(model);
        odb.checkout("prot", &[Vid(4)], "evo").unwrap();
        odb.engine
            .execute("ALTER TABLE evo ADD COLUMN extra INT")
            .unwrap();
        odb.engine
            .execute("UPDATE evo SET extra = 1 WHERE protein1 = 'p3'")
            .unwrap();
        odb.commit("evo", "evolve").unwrap();
        let versions = odb.cvd("prot").unwrap().num_versions() as u64;
        for v in 1..=versions {
            let cvd = odb.cvd("prot").unwrap().clone();
            let fast = sorted_rows(model::version_rows(&mut odb.engine, &cvd, Vid(v)).unwrap());
            let sql = sorted_rows(model::version_rows_sql(&mut odb.engine, &cvd, Vid(v)).unwrap());
            assert_eq!(fast, sql, "{} v{v} after evolution", model.name());
        }
        // An identity re-commit after evolution must keep every record
        // (null-extended comparison): no fresh rids.
        let before = odb.cvd("prot").unwrap().next_rid;
        odb.checkout("prot", &[Vid(versions)], "idem").unwrap();
        let v_next = odb.commit("idem", "identity").unwrap();
        let cvd = odb.cvd("prot").unwrap();
        assert_eq!(
            cvd.rids_of(v_next).unwrap(),
            cvd.rids_of(Vid(versions)).unwrap(),
            "{}",
            model.name()
        );
        assert_eq!(cvd.next_rid, before, "{}", model.name());
    }
}

#[test]
fn diff_matches_sql_set_difference() {
    for model in ModelKind::ALL {
        let mut odb = build_history(model);
        let cvd = odb.cvd("prot").unwrap().clone();
        let d = odb.diff("prot", Vid(1), Vid(2)).unwrap();
        let rows_a = model::version_rows_sql(&mut odb.engine, &cvd, Vid(1)).unwrap();
        let rows_b = model::version_rows_sql(&mut odb.engine, &cvd, Vid(2)).unwrap();
        let rids_a: std::collections::HashSet<i64> = rows_a.iter().map(|(r, _)| *r).collect();
        let rids_b: std::collections::HashSet<i64> = rows_b.iter().map(|(r, _)| *r).collect();
        let mut only_first: Vec<Vec<Value>> = rows_a
            .into_iter()
            .filter(|(r, _)| !rids_b.contains(r))
            .map(|(_, v)| v)
            .collect();
        let mut only_second: Vec<Vec<Value>> = rows_b
            .into_iter()
            .filter(|(r, _)| !rids_a.contains(r))
            .map(|(_, v)| v)
            .collect();
        only_first.sort();
        only_second.sort();
        let mut got_first = d.only_in_first.clone();
        let mut got_second = d.only_in_second.clone();
        got_first.sort();
        got_second.sort();
        assert_eq!(got_first, only_first, "{}", model.name());
        assert_eq!(got_second, only_second, "{}", model.name());
    }
}
