//! Property-based tests (proptest) over the WAL's on-disk format
//! (`crates/core/src/wal.rs`): record encode/decode round-trips for
//! arbitrary logged operations, and hostile-bytes / file-surgery
//! corpora pinning the documented failure policy — arbitrary input
//! never panics the decoder, a damaged segment either recovers a clean
//! prefix of its records (torn tail) or fails with a typed error.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use orpheusdb::core::wal::{self, read_segment, CommitRecord, WalOp, WalRecord, HEADER_LEN};
use orpheusdb::core::{recovery, staging::StagedKind};
use orpheusdb::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite doubles only: NaN breaks PartialEq, not the codec.
        (-1e12f64..1e12).prop_map(Value::Double),
        "[a-z0-9 ]{0,12}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_schema_and_rows() -> impl Strategy<Value = (Schema, Vec<Vec<Value>>)> {
    (
        1usize..4,
        proptest::collection::vec(proptest::collection::vec(arb_value(), 3..4), 0..5),
    )
        .prop_map(|(cols, raw)| {
            let schema = Schema::new(
                (0..cols)
                    .map(|c| Column::new(format!("c{c}"), DataType::Int))
                    .collect(),
            );
            // Every generated row carries 3 cells; trim to the schema
            // width so rows and schema always agree.
            let rows = raw
                .into_iter()
                .map(|mut row| {
                    row.truncate(cols);
                    row
                })
                .collect();
            (schema, rows)
        })
}

fn arb_op() -> impl Strategy<Value = WalOp> {
    let request = prop_oneof![
        "[a-z]{1,10}".prop_map(|n| Request::from(DropCvd::named(n))),
        "[a-z]{1,10}".prop_map(|n| Request::from(Discard::table(n))),
        "[a-z]{1,10}".prop_map(|n| Request::from(CreateUser::named(n))),
        "[a-z]{1,10}".prop_map(|n| Request::from(Login::as_user(n))),
    ]
    .prop_map(WalOp::Request);
    let commit = (
        (
            "[a-z]{1,10}",
            "[a-z0-9_./]{1,16}",
            any::<bool>(),
            proptest::collection::vec(1u64..100, 1..4),
        ),
        (
            "[a-z]{1,8}",
            any::<u64>(),
            arb_schema_and_rows(),
            "[a-z0-9 ]{0,30}",
            1u64..1000,
        ),
    )
        .prop_map(
            |(
                (cvd, staged_name, is_csv, parents),
                (owner, created_at, (schema, rows), message, vid),
            )| {
                WalOp::Commit(CommitRecord {
                    cvd,
                    staged_name,
                    kind: if is_csv {
                        StagedKind::Csv
                    } else {
                        StagedKind::Table
                    },
                    parents: parents.into_iter().map(Vid).collect(),
                    owner,
                    created_at,
                    schema,
                    rows,
                    message,
                    vid: Vid(vid),
                })
            },
        );
    prop_oneof![request, commit]
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (any::<u64>(), any::<u64>(), "[a-z]{1,10}", arb_op()).prop_map(
        |(seq, clock_before, user, op)| WalRecord {
            seq,
            clock_before,
            user,
            op,
        },
    )
}

/// Build a real 3-record segment (init + checkout's commit twice) and
/// return its raw bytes plus the decoded records.
fn segment_fixture(tag: &str) -> (Vec<u8>, Vec<WalRecord>) {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orpheus-walprop-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut odb = recovery::open(&dir).expect("open fresh");
    let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
    let rows: Vec<Vec<Value>> = (0..4).map(|i| vec![Value::Int(i)]).collect();
    odb.execute(
        Init::cvd("t")
            .schema(schema)
            .rows(rows)
            .model(ModelKind::SplitByRlist)
            .into(),
    )
    .expect("init");
    for i in 0..2 {
        let table = format!("w{i}");
        odb.execute(Checkout::of("t").version(1u64).into_table(&table).into())
            .expect("checkout");
        odb.execute(Commit::table(&table).message(format!("c{i}")).into())
            .expect("commit");
    }
    drop(odb);
    let path = wal::segment_path(&dir, 1);
    let bytes = std::fs::read(&path).expect("segment bytes");
    let scan = read_segment(&path, 1).expect("pristine segment scans");
    assert_eq!(scan.records.len(), 3);
    assert!(!scan.truncated_tail);
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, scan.records)
}

/// Write `bytes` as generation-1 segment of a scratch dir and scan it.
fn scan_bytes(tag: &str, bytes: &[u8]) -> orpheusdb::core::Result<wal::SegmentScan> {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "orpheus-walscan-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = wal::segment_path(&dir, 1);
    std::fs::write(&path, bytes).expect("write surgered segment");
    let result = read_segment(&path, 1);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn is_prefix(records: &[WalRecord], of: &[WalRecord]) -> bool {
    records.len() <= of.len() && records.iter().zip(of.iter()).all(|(a, b)| a == b)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// encode ∘ decode is the identity for every representable record.
    #[test]
    fn wal_record_roundtrip(record in arb_record()) {
        let encoded = record.encode();
        let decoded = WalRecord::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, record);
    }

    /// The decoder never panics on arbitrary bytes — hostile input is a
    /// typed error (or, vanishingly, a valid record), never a crash.
    #[test]
    fn decode_of_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = WalRecord::decode(&bytes);
    }

    /// Flipping record bytes must not produce a decode panic either —
    /// this corpus starts from *valid* encodings, so it explores the
    /// decoder's deep paths (length prefixes, value tags) rather than
    /// dying at the first tag check.
    #[test]
    fn decode_of_damaged_encoding_never_panics(
        record in arb_record(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = record.encode();
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] ^= 1 << bit;
        let _ = WalRecord::decode(&bytes);
    }
}

proptest! {
    // File surgery rebuilds a real WAL per case; keep the corpus small.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Cutting a segment at ANY byte offset either recovers a clean
    /// prefix of its records (the torn-tail policy) or fails with a
    /// typed error (cuts inside the segment header) — never a panic,
    /// never invented records.
    #[test]
    fn truncation_at_any_offset_recovers_a_prefix_or_errors(cut_frac in 0.0f64..1.0) {
        let (bytes, records) = segment_fixture("cut");
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match scan_bytes("cut", &bytes[..cut]) {
            Ok(scan) => {
                prop_assert!(is_prefix(&scan.records, &records));
                // Anything shorter than the full file must flag the tail.
                prop_assert!(scan.records.len() == records.len() || scan.truncated_tail);
            }
            Err(e) => {
                prop_assert!((cut as u64) < HEADER_LEN, "unexpected error past the header: {e}");
            }
        }
    }

    /// Flipping ANY single bit of a segment never panics the scanner:
    /// damage in the final record is truncated (prefix), damage anywhere
    /// else is a typed error.
    #[test]
    fn bit_flip_anywhere_is_contained(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let (mut bytes, records) = segment_fixture("flip");
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] ^= 1 << bit;
        if let Ok(scan) = scan_bytes("flip", &bytes) {
            prop_assert!(is_prefix(&scan.records, &records));
        }
    }
}
