//! Property-based tests (proptest) over randomly generated histories and
//! edit scripts, pinning the system's core invariants end to end.

use proptest::prelude::*;

use orpheusdb::bench::generator::{Workload, WorkloadKind, WorkloadParams};
use orpheusdb::bench::loader::load_workload;
use orpheusdb::partition::lyresplit::{lyresplit, lyresplit_for_budget, EdgePick};
use orpheusdb::partition::migration::{apply_plan, plan_migration};
use orpheusdb::prelude::*;

fn arb_params() -> impl Strategy<Value = WorkloadParams> {
    (
        8usize..30,
        2usize..6,
        10usize..40,
        prop_oneof![Just(WorkloadKind::Sci), Just(WorkloadKind::Cur)],
        any::<u64>(),
    )
        .prop_map(|(versions, branches, inserts, kind, seed)| {
            let mut p = match kind {
                WorkloadKind::Sci => WorkloadParams::sci(versions, branches, inserts),
                WorkloadKind::Cur => WorkloadParams::cur(versions, branches, inserts),
            };
            p.seed = seed;
            p.attrs = 3;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Checkout ∘ commit is the identity: committing an unchanged checkout
    /// creates a version with exactly the same records, under every model.
    #[test]
    fn commit_of_unchanged_checkout_is_identity(params in arb_params(), model_i in 0usize..5) {
        let model = ModelKind::ALL[model_i];
        let w = Workload::generate(params);
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "w", &w, model).unwrap();
        let latest = Vid(w.num_versions() as u64);
        odb.checkout("w", &[latest], "t").unwrap();
        let v_new = odb.commit("t", "no-op").unwrap();
        let old: Vec<i64> = odb.version_rows("w", latest).unwrap().into_iter().map(|(r, _)| r).collect();
        let new: Vec<i64> = odb.version_rows("w", v_new).unwrap().into_iter().map(|(r, _)| r).collect();
        prop_assert_eq!(old, new);
        // And the edge weight to the parent equals the full version size.
        let cvd = odb.cvd("w").unwrap();
        let meta = cvd.meta(v_new).unwrap();
        prop_assert_eq!(meta.parent_weights[0], meta.num_records);
    }

    /// LyreSplit's Theorem 2 bounds hold on generated workload trees.
    #[test]
    fn lyresplit_bounds_on_generated_trees(params in arb_params(), delta in 0.15f64..1.0) {
        let w = Workload::generate(params);
        let tree = w.version_graph().to_tree();
        let r = lyresplit(&tree, delta, EdgePick::BalancedVersions);
        r.partitioning.validate().unwrap();
        let s = r.partitioning.storage_cost_tree(&tree) as f64;
        let bound_s = (1.0 + delta).powi(r.levels as i32) * tree.total_records() as f64;
        prop_assert!(s <= bound_s + 1e-6, "S = {} > bound {}", s, bound_s);
        let c = r.partitioning.checkout_cost_tree(&tree);
        let bound_c = (1.0 / delta) * tree.total_edges() as f64 / tree.num_versions() as f64;
        prop_assert!(c <= bound_c + 1e-6, "Cavg = {} > bound {}", c, bound_c);
    }

    /// The budget search respects γ and its partitions cover every version
    /// exactly once.
    #[test]
    fn budget_search_respects_gamma(params in arb_params(), factor in 1.0f64..3.0) {
        let w = Workload::generate(params);
        let tree = w.version_graph().to_tree();
        let gamma = (factor * tree.total_records() as f64) as u64;
        let (res, search) = lyresplit_for_budget(&tree, gamma, EdgePick::BalancedVersions);
        res.partitioning.validate().unwrap();
        prop_assert!(search.storage <= gamma);
        let total: usize = res.partitioning.partitions().iter().map(|p| p.len()).sum();
        prop_assert_eq!(total, tree.num_versions());
    }

    /// Migration plans are sound: applying the intelligent plan to the old
    /// layout yields exactly the new layout's record sets, and it never
    /// moves more records than the naive rebuild.
    #[test]
    fn migration_plans_are_sound(params in arb_params(), d1 in 0.2f64..0.5, d2 in 0.5f64..0.95) {
        let w = Workload::generate(params);
        let bip = w.bipartite();
        let tree = w.version_graph().to_tree();
        let old = lyresplit(&tree, d1, EdgePick::BalancedVersions).partitioning;
        let new = lyresplit(&tree, d2, EdgePick::BalancedVersions).partitioning;
        let plan = plan_migration(&bip, Some(&tree), &old, &new);
        let result = apply_plan(&bip, &old, &plan);
        let new_parts = new.partitions();
        prop_assert_eq!(result.len(), new_parts.len());
        for (k, records) in result {
            prop_assert_eq!(records, bip.union_records(&new_parts[k]));
        }
        let naive = orpheusdb::partition::migration::plan_naive(&bip, &old, &new);
        prop_assert!(plan.total_modifications() <= naive.total_modifications());
    }

    /// Version contents agree across all five data models for arbitrary
    /// generated histories (including CUR merges).
    #[test]
    fn all_models_agree_on_membership(params in arb_params()) {
        let w = Workload::generate(params);
        let mut reference: Option<Vec<usize>> = None;
        for model in [ModelKind::SplitByRlist, ModelKind::CombinedTable, ModelKind::DeltaBased] {
            let mut odb = OrpheusDB::new();
            load_workload(&mut odb, "w", &w, model).unwrap();
            let counts: Vec<usize> = (1..=w.num_versions() as u64)
                .map(|v| odb.version_rows("w", Vid(v)).unwrap().len())
                .collect();
            match &reference {
                None => reference = Some(counts),
                Some(r) => prop_assert_eq!(&counts, r),
            }
        }
    }

    /// Random edit scripts: after a sequence of random inserts/deletes/
    /// updates and commits, every version remains retrievable and diffs are
    /// consistent with the recorded rid sets.
    #[test]
    fn random_edit_scripts_preserve_history(seed in 0u64..1000) {
        let mut rng = seed;
        let mut next = move || { rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (rng >> 33) as usize };
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]).with_primary_key(&["k"]).unwrap();
        let rows: Vec<Vec<Value>> = (0..20).map(|i| vec![Value::Int(i), Value::Int(i * 10)]).collect();
        let mut odb = OrpheusDB::new();
        odb.init_cvd("d", schema, rows, None).unwrap();

        for step in 0..4 {
            let n_versions = odb.cvd("d").unwrap().num_versions() as u64;
            let parent = Vid(next() as u64 % n_versions + 1);
            let t = format!("s{step}");
            odb.checkout("d", &[parent], &t).unwrap();
            match next() % 3 {
                0 => { odb.engine.execute(&format!("INSERT INTO {t} VALUES (NULL, {}, 0)", 1000 + step * 100 + next() % 50)).unwrap(); }
                1 => { odb.engine.execute(&format!("DELETE FROM {t} WHERE k % 7 = {}", next() % 7)).unwrap(); }
                _ => { odb.engine.execute(&format!("UPDATE {t} SET v = v + 1 WHERE k % 5 = {}", next() % 5)).unwrap(); }
            }
            odb.commit(&t, "step").unwrap();
        }

        let cvd = odb.cvd("d").unwrap().clone();
        for v in 1..=cvd.num_versions() as u64 {
            let rows = odb.version_rows("d", Vid(v)).unwrap();
            prop_assert_eq!(rows.len(), cvd.rids_of(Vid(v)).unwrap().len());
            // PK uniqueness holds within every version.
            let mut keys: Vec<&Value> = rows.iter().map(|(_, vals)| &vals[0]).collect();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), rows.len());
        }
    }
}
