//! Resilience acceptance for the fault-tolerant service layer:
//!
//! * (a) a connection severed **between a forwarded commit and its ACK**
//!   (the `FlakyProxy`'s cut point) is survived by reconnect + idempotent
//!   replay: the retried frame returns the original outcome from the
//!   server's per-session replay cache — exactly one new version, never a
//!   double commit;
//! * (b) load shedding is typed and honored: an overloaded server answers
//!   [`CoreError::Overloaded`] with a `retry_after_ms` hint, and the
//!   client's transparent retry loop actually waits it out;
//! * (c) a WAL disk fault flips the instance into documented read-only
//!   degraded mode — mutations refuse with [`CoreError::Degraded`], the
//!   full read corpus keeps serving — and the operator path out
//!   (checkpoint) restores writes; a crash while degraded recovers the
//!   acked prefix exactly;
//! * (d) a frame racing [`NetServer::begin_shutdown`] gets a typed
//!   refusal and `NetServer::shared` stays callable — never a panic.
//!
//! The reconnect storm scales up under `ORPHEUS_STRESS=1` (the CI stress
//! job).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use orpheusdb::core::recovery;
use orpheusdb::net::{
    FlakyProxy, NetServer, RemoteExecutor, RetryPolicy, ServerConfig, DEFAULT_TIMEOUT,
};
use orpheusdb::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orpheus-resil-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Int),
    ])
    .with_primary_key(&["k"])
    .unwrap()
}

fn rows(n: i64) -> Vec<Vec<Value>> {
    (0..n).map(|i| vec![Value::Int(i), Value::Int(0)]).collect()
}

/// A policy with short backoffs so tests reconnect in milliseconds, not
/// the production-tuned default delays.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        ..RetryPolicy::default()
    }
}

/// The tentpole scenario: the proxy severs the connection after the
/// commit frame reached the server but before its ACK came back. The
/// client must reconnect, resume its session, and replay the frame — and
/// the server must answer from its replay cache instead of committing a
/// second time.
#[test]
fn ack_dropped_commit_is_replayed_not_reexecuted() {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let server = NetServer::bind("127.0.0.1:0", shared.clone()).unwrap();
    // Requests through the proxy: 1 init, 2 checkout, 3 update, 4 commit.
    // drop_every = 4 cuts exactly on the commit's lost-ACK window.
    let proxy = FlakyProxy::start(server.local_addr(), 4).unwrap();
    let mut client = RemoteExecutor::connect_with_policy(
        proxy.local_addr(),
        "ada",
        DEFAULT_TIMEOUT,
        fast_policy(),
    )
    .unwrap();

    client
        .execute(Init::cvd("scores").schema(schema()).rows(rows(4)).into())
        .unwrap();
    client
        .execute(
            Checkout::of("scores")
                .version(1u64)
                .into_table("work")
                .into(),
        )
        .unwrap();
    client
        .execute(Run::sql("UPDATE work SET v = 7 WHERE k = 1").into())
        .unwrap();
    let committed = client
        .execute(Commit::table("work").message("survives the cut").into())
        .unwrap();
    assert_eq!(committed.version(), Some(Vid(2)));

    assert!(proxy.cuts() >= 1, "the proxy never fired its cut");
    let retries = client.retry_stats();
    assert!(retries.reconnects >= 1, "{retries:?}");
    assert!(retries.replayed >= 1, "{retries:?}");
    assert!(server.stats().deduped >= 1, "{:?}", server.stats());

    // Exactly one new version landed: the replayed commit deduplicated
    // instead of executing twice.
    let mut audit = shared.session("auditor").unwrap();
    let count = audit
        .execute(Run::sql("SELECT count(*) FROM CVD scores").into())
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(count.rows[0][0], Value::Int(4 * 2)); // 4 rows × versions 1, 2

    drop(client);
    proxy.stop();
    server.shutdown();
}

/// Shedding is typed, retryable, and the client's backoff really sleeps:
/// with `overload_retries = 2` against a server that sheds everything,
/// the surfaced error is `Overloaded` and at least two `retry_after_ms`
/// hints (50 ms each) elapsed first.
#[test]
fn overload_shedding_is_typed_and_backoff_waits() {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let config = ServerConfig {
        max_queue_depth: 0, // shed every frame
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with("127.0.0.1:0", shared, config).unwrap();
    let policy = RetryPolicy {
        overload_retries: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let mut client =
        RemoteExecutor::connect_with_policy(server.local_addr(), "ada", DEFAULT_TIMEOUT, policy)
            .unwrap();

    let start = Instant::now();
    let err = client.execute(Request::Ls).unwrap_err();
    let waited = start.elapsed();

    assert!(
        matches!(err, CoreError::Overloaded { retry_after_ms } if retry_after_ms > 0),
        "{err:?}"
    );
    assert!(err.is_retryable());
    assert!(err.retry_after_ms().is_some());
    // Two transparent retries × a 50 ms server hint each (the jittered
    // client backoff is dominated by the hint here).
    assert!(waited >= Duration::from_millis(90), "{waited:?}");
    assert_eq!(client.retry_stats().overload_retries, 2);
    assert!(server.stats().shed >= 3, "{:?}", server.stats());

    drop(client);
    server.shutdown();
}

/// Batches are shed wholesale and retried wholesale: every outcome of an
/// overloaded batch is the same retryable error.
#[test]
fn overloaded_batch_sheds_every_request() {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let config = ServerConfig {
        max_queue_depth: 0,
        ..ServerConfig::default()
    };
    let server = NetServer::bind_with("127.0.0.1:0", shared, config).unwrap();
    let policy = RetryPolicy {
        overload_retries: 1,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let mut client =
        RemoteExecutor::connect_with_policy(server.local_addr(), "ada", DEFAULT_TIMEOUT, policy)
            .unwrap();

    let results = client.batch(vec![Request::Ls, Request::Whoami]);
    assert_eq!(results.len(), 2);
    for result in &results {
        let err = result.as_ref().unwrap_err();
        assert!(err.is_retryable(), "{err:?}");
        assert!(matches!(err, CoreError::Overloaded { .. }), "{err:?}");
    }
    assert_eq!(client.retry_stats().overload_retries, 1);

    drop(client);
    server.shutdown();
}

/// A WAL disk fault mid-service: the triggering mutation and everything
/// after it refuse with [`CoreError::Degraded`], the full read corpus
/// keeps serving over the same connections, and the documented operator
/// recovery (checkpoint) restores writes.
#[test]
fn degraded_wal_refuses_writes_serves_reads_and_checkpoint_recovers() {
    let dir = tmp_dir("degraded");
    let shared = recovery::open_shared(&dir).unwrap();
    let server = NetServer::bind("127.0.0.1:0", shared.clone()).unwrap();
    let mut client = RemoteExecutor::connect(server.local_addr(), "ada").unwrap();

    client
        .execute(Init::cvd("grades").schema(schema()).rows(rows(5)).into())
        .unwrap();
    client
        .execute(
            Checkout::of("grades")
                .version(1u64)
                .into_table("work")
                .into(),
        )
        .unwrap();
    client
        .execute(Run::sql("UPDATE work SET v = 1 WHERE k = 0").into())
        .unwrap();
    client
        .execute(
            Commit::table("work")
                .message("acked before the fault")
                .into(),
        )
        .unwrap();

    // Disk starts failing: the next append dies before any byte lands.
    let sink = shared.wal_sink().expect("wal-backed instance has a sink");
    sink.arm_fault("append", 1);

    // The triggering mutation reports the degradation...
    let err = client
        .execute(Init::cvd("boom").schema(schema()).rows(rows(1)).into())
        .unwrap_err();
    assert!(matches!(err, CoreError::Degraded(_)), "{err:?}");
    // ...and the instance is now in documented read-only degraded mode.
    assert!(shared.degraded().is_some());

    // Mutations refuse with the typed, retryable error — checked before
    // any in-memory state moves.
    for refused in [
        Request::from(Init::cvd("later").schema(schema()).rows(rows(1))),
        Request::from(Optimize::cvd("grades")),
        Request::from(DropCvd::named("grades")),
    ] {
        let err = client.execute(refused).unwrap_err();
        assert!(matches!(err, CoreError::Degraded(_)), "{err:?}");
        assert!(err.is_retryable());
    }

    // The read corpus keeps serving: listing, log, versioned SQL, and a
    // fresh checkout all work against the degraded instance.
    client.execute(Request::Ls).unwrap();
    client.execute(Log::of("grades").into()).unwrap();
    let count = client
        .execute(Run::sql("SELECT count(*) FROM VERSION 2 OF CVD grades").into())
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(count.rows[0][0], Value::Int(5));
    client
        .execute(
            Checkout::of("grades")
                .version(2u64)
                .into_csv("peek.csv")
                .into(),
        )
        .unwrap();

    // Operator recovery: a successful checkpoint proves the disk writes
    // again, rotates onto a fresh generation, and re-arms the sink.
    recovery::checkpoint_shared(&shared).unwrap();
    assert!(shared.degraded().is_none());
    client
        .execute(
            Checkout::of("grades")
                .version(2u64)
                .into_table("after")
                .into(),
        )
        .unwrap();
    let committed = client
        .execute(Commit::table("after").message("writes restored").into())
        .unwrap();
    assert!(committed.version().is_some());

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash while degraded: reopening the directory replays exactly the
/// acked prefix — the faulted mutation (whose append never landed) is
/// gone, everything acknowledged before it is intact.
#[test]
fn crash_while_degraded_recovers_the_acked_prefix() {
    let dir = tmp_dir("degraded-crash");
    {
        let shared = recovery::open_shared(&dir).unwrap();
        let mut session = shared.session("ada").unwrap();
        session
            .execute(Init::cvd("grades").schema(schema()).rows(rows(3)).into())
            .unwrap();
        session
            .execute(
                Checkout::of("grades")
                    .version(1u64)
                    .into_table("work")
                    .into(),
            )
            .unwrap();
        session
            .execute(Commit::table("work").message("acked").into())
            .unwrap();

        shared.wal_sink().unwrap().arm_fault("append", 1);
        let err = session
            .execute(Init::cvd("boom").schema(schema()).rows(rows(1)).into())
            .unwrap_err();
        assert!(matches!(err, CoreError::Degraded(_)), "{err:?}");
        // Drop without checkpoint: the process "crashes" while degraded.
    }

    let odb = recovery::open(&dir).unwrap();
    let names = odb.ls();
    assert!(names.iter().any(|n| n == "grades"), "{names:?}");
    assert!(
        !names.iter().any(|n| n == "boom"),
        "unacked mutation must not survive recovery: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: `NetServer::shared` and late frames racing
/// `begin_shutdown` get typed outcomes, never a reader-thread panic.
#[test]
fn late_frame_after_begin_shutdown_is_refused_cleanly() {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let server = NetServer::bind("127.0.0.1:0", shared).unwrap();
    let mut client = RemoteExecutor::connect_with_policy(
        server.local_addr(),
        "ada",
        DEFAULT_TIMEOUT,
        RetryPolicy::none(),
    )
    .unwrap();
    client.execute(Request::Ls).unwrap();

    server.begin_shutdown();
    // The instance stays reachable at every lifecycle point.
    let _shared = server.shared();

    // A frame arriving after the flag flips gets the refusal, not a hang
    // and not a panic.
    let err = client.execute(Request::Whoami).unwrap_err();
    assert!(err.to_string().contains("shutting down"), "{err}");

    drop(client);
    server.shutdown();
}

/// Sustained cuts under load: every round trips through checkout →
/// update → commit while the proxy severs the connection every few
/// frames. Every commit must land exactly once, in order, whatever the
/// cut pattern. Scaled up under `ORPHEUS_STRESS=1`.
#[test]
fn reconnect_storm_commits_exactly_once() {
    let rounds: u64 = match std::env::var("ORPHEUS_STRESS").as_deref() {
        Ok("1") => 40,
        _ => 8,
    };
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let server = NetServer::bind("127.0.0.1:0", shared.clone()).unwrap();
    let proxy = FlakyProxy::start(server.local_addr(), 5).unwrap();
    let mut client = RemoteExecutor::connect_with_policy(
        proxy.local_addr(),
        "ada",
        DEFAULT_TIMEOUT,
        RetryPolicy {
            max_reconnects: 32,
            ..fast_policy()
        },
    )
    .unwrap();

    client
        .execute(Init::cvd("scores").schema(schema()).rows(rows(3)).into())
        .unwrap();
    let mut committed = Vec::new();
    for round in 0..rounds {
        let version = 1 + round;
        client
            .execute(
                Checkout::of("scores")
                    .version(version)
                    .into_table("work")
                    .into(),
            )
            .unwrap();
        client
            .execute(Run::sql(format!("UPDATE work SET v = {} WHERE k = 1", round + 1)).into())
            .unwrap();
        let response = client
            .execute(
                Commit::table("work")
                    .message(format!("round {round}"))
                    .into(),
            )
            .unwrap();
        committed.push(response.version().expect("commit returns a version"));
    }

    // Every commit landed exactly once: the version chain is a strict
    // +1 sequence with no gaps (lost commits) and no skips (duplicates).
    let expected: Vec<Vid> = (0..rounds).map(|r| Vid(2 + r)).collect();
    assert_eq!(committed, expected);
    assert!(proxy.cuts() >= 1, "the storm never cut a connection");

    let mut audit = shared.session("auditor").unwrap();
    let count = audit
        .execute(Run::sql("SELECT count(*) FROM CVD scores").into())
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(count.rows[0][0], Value::Int(3 * (1 + rounds as i64)));

    drop(client);
    proxy.stop();
    server.shutdown();
}
