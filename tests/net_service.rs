//! Service-level acceptance for the network layer:
//!
//! * (a) a [`RemoteExecutor`] over a live [`NetServer`] equals the
//!   in-process sequential executor **result for result** on the full bus
//!   corpus (successes and failures mixed), both request-at-a-time and as
//!   one pipelined batch frame;
//! * (b) a client disconnecting mid-stream does not hurt the server:
//!   accepted work drains against the shared instance, a panicking
//!   checkout stays contained to its shard, reservations are released,
//!   and the shard keeps serving the next connection;
//! * (c) server shutdown mid-stream resolves every accepted ticket and
//!   refuses late frames with a clean error instead of hanging clients;
//! * (d) protocol violations (wrong version, oversized frame) and hung
//!   peers surface as typed errors, never panics or infinite blocks.

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use orpheusdb::core::concurrent::{arm_checkout_panic, disarm_checkout_panic};
use orpheusdb::net::proto::{read_frame, write_frame};
use orpheusdb::net::{Frame, MAX_FRAME, PROTOCOL_VERSION};
use orpheusdb::prelude::*;

const CSV: &str = "id,score\n1,10\n2,20\n3,30\n";
const SCHEMA: &str = "id:int!pk\nscore:int\n";

/// The bus corpus from `tests/async_executor.rs`: every request variant,
/// with failures deliberately mid-stream.
fn corpus() -> Vec<Request> {
    let ranks_schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("rank", DataType::Int),
    ])
    .with_primary_key(&["name"])
    .unwrap();
    vec![
        InitFromCsv::cvd("scores")
            .csv(CSV)
            .schema_text(SCHEMA)
            .into(),
        Init::cvd("ranks")
            .schema(ranks_schema)
            .row(vec!["a".into(), 1.into()])
            .row(vec!["b".into(), 2.into()])
            .model(ModelKind::CombinedTable)
            .into(),
        Checkout::of("scores")
            .version(1u64)
            .into_table("work")
            .into(),
        Commit::table("work").message("no-op").into(),
        Checkout::of("scores")
            .version(2u64)
            .into_csv("scores.csv")
            .into(),
        CommitCsv::path("scores.csv")
            .csv("rid,id,score\n1,1,10\n2,2,20\n3,3,30\n,4,40\n")
            .message("add row via csv")
            .into(),
        Diff::of("scores").between(2u64, 3u64).into(),
        Run::sql("SELECT count(*) FROM VERSION 3 OF CVD scores").into(),
        Request::Ls,
        Log::of("scores").into(),
        Optimize::cvd("scores").gamma(2.0).mu(1.5).into(),
        CreateUser::named("courier").into(),
        Login::as_user("courier").into(),
        Request::Whoami,
        Checkout::of("scores")
            .version(1u64)
            .into_table("scratch")
            .into(),
        Discard::table("scratch").into(),
        // Failures, deliberately mid-stream.
        Checkout::of("scores")
            .version(99u64)
            .into_table("zzz")
            .into(),
        Commit::table("never_staged").into(),
        Run::sql("SELECT count(*) FROM VERSION 1 OF CVD nope").into(),
        DropCvd::named("scores").into(),
        DropCvd::named("ranks").into(),
        Request::Ls,
    ]
}

fn render(result: &Result<Response, CoreError>) -> String {
    match result {
        Ok(response) => response.summary(),
        Err(e) => format!("error: {e}"),
    }
}

fn sequential_outcomes() -> Vec<String> {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let mut session = shared.session("driver").unwrap();
    corpus()
        .into_iter()
        .map(|r| render(&session.execute(r)))
        .collect()
}

/// Two CVDs (two shards) under one shared instance, `n` rows each.
fn shared_with_two_cvds(n: i64) -> SharedOrpheusDB {
    let mut odb = OrpheusDB::new();
    for name in ["left", "right"] {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
        .with_primary_key(&["k"])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i), Value::Int(0)]).collect();
        odb.init_cvd(name, schema, rows, None).unwrap();
    }
    SharedOrpheusDB::new(odb)
}

const WAIT: Duration = Duration::from_secs(30);

#[test]
fn remote_execute_loop_equals_the_in_process_executor_on_the_full_corpus() {
    let expected = sequential_outcomes();
    let server = NetServer::bind("127.0.0.1:0", SharedOrpheusDB::new(OrpheusDB::new())).unwrap();
    let mut remote = RemoteExecutor::connect(server.local_addr(), "driver").unwrap();
    let got: Vec<String> = corpus()
        .into_iter()
        .map(|r| render(&remote.execute(r)))
        .collect();
    assert_eq!(expected.len(), got.len());
    for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(want, have, "request {i} diverged over the wire");
    }
    // The Login mid-corpus rebound the connection identity on both ends.
    assert_eq!(remote.user(), "courier");
    server.shared().read(|odb| assert!(odb.staged().is_empty()));
    drop(remote);
    server.shutdown();
}

#[test]
fn one_pipelined_batch_frame_equals_the_in_process_executor() {
    let expected = sequential_outcomes();
    let server = NetServer::bind("127.0.0.1:0", SharedOrpheusDB::new(OrpheusDB::new())).unwrap();
    let mut remote = RemoteExecutor::connect(server.local_addr(), "driver").unwrap();
    let got: Vec<String> = remote.batch(corpus()).iter().map(render).collect();
    assert_eq!(expected.len(), got.len());
    for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(want, have, "batched request {i} diverged over the wire");
    }
    server.shared().read(|odb| assert!(odb.staged().is_empty()));
    drop(remote);
    server.shutdown();
}

#[test]
fn disconnect_mid_stream_drains_work_and_contains_panics_to_the_shard() {
    let shared = shared_with_two_cvds(6);
    let server = NetServer::bind("127.0.0.1:0", shared.clone()).unwrap();
    let addr = server.local_addr();

    // Client A pipelines four checkouts and vanishes without collecting
    // most of the responses. The second checkout panics inside its worker
    // (injected via the same probe the in-process suite uses).
    arm_checkout_panic("__net_probe");
    let mut a = RemoteExecutor::connect(addr, "driver").unwrap();
    let t0 = a.submit(Checkout::of("left").version(1u64).into_table("l_ok"));
    let t1 = a.submit(Checkout::of("left").version(1u64).into_table("__net_probe"));
    let t2 = a.submit(Checkout::of("left").version(1u64).into_table("l_after"));
    let t3 = a.submit(Checkout::of("right").version(1u64).into_table("r_ok"));
    // Collect only the panicking response — the wire carries the typed
    // containment error — then drop the connection with t2/t3 uncollected.
    assert!(t0.wait_for(WAIT).expect("t0 response").is_ok());
    let poisoned = t1.wait_for(WAIT).expect("t1 response");
    disarm_checkout_panic();
    assert!(
        matches!(poisoned, Err(CoreError::WorkerPanicked { ref shard }) if shard == "left"),
        "{poisoned:?}"
    );
    drop((t2, t3));
    drop(a);

    // Client B finds a healthy server. The panicked checkout's
    // reservation was released before its error went out, so the name is
    // free again immediately.
    let mut b = RemoteExecutor::connect(addr, "driver").unwrap();
    b.execute(
        Checkout::of("left")
            .version(1u64)
            .into_table("__net_probe")
            .into(),
    )
    .unwrap();
    // The disconnect did not cancel accepted work: the right-shard
    // checkout (uncollected by A) drains to a staged table the same user
    // can commit once it lands.
    let deadline = Instant::now() + WAIT;
    loop {
        match b.execute(Commit::table("r_ok").message("other shard").into()) {
            Ok(response) => {
                assert!(response.version().is_some());
                break;
            }
            Err(CoreError::NotStaged(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("right-shard work was not drained: {e}"),
        }
    }
    // `l_after` was in flight behind the panic: it was either poisoned
    // with it (name released — a fresh checkout succeeds) or had already
    // executed (staged — the commit succeeds). Either way the name must
    // end up usable on a serving shard.
    let deadline = Instant::now() + WAIT;
    loop {
        let checkout = b.execute(
            Checkout::of("left")
                .version(1u64)
                .into_table("l_after")
                .into(),
        );
        if checkout.is_ok() {
            break;
        }
        let commit = b.execute(Commit::table("l_after").message("drained").into());
        if commit.is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "l_after never became usable: {checkout:?} / {commit:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // A's surviving same-shard checkout kept its result and commits.
    b.execute(Commit::table("l_ok").message("survivor").into())
        .unwrap();
    shared.read(|odb| assert_eq!(odb.cvd("right").unwrap().num_versions(), 2));
    drop(b);
    server.shutdown();
}

#[test]
fn shutdown_mid_stream_resolves_accepted_work_and_refuses_late_frames() {
    let shared = shared_with_two_cvds(4);
    let server = NetServer::bind("127.0.0.1:0", shared).unwrap();
    let addr = server.local_addr();
    let mut remote = RemoteExecutor::connect(addr, "driver").unwrap();

    let mut tickets = Vec::new();
    for i in 0..4 {
        tickets.push(
            remote.submit(
                Checkout::of("left")
                    .version(1u64)
                    .into_table(format!("s{i}")),
            ),
        );
        tickets.push(remote.submit(Commit::table(format!("s{i}")).message("pre-shutdown")));
    }
    // The first pair has round-tripped, so the stream is live and at least
    // some of it was accepted when the shutdown begins. (A ticket's result
    // is one-shot, so each is waited exactly once.)
    let mut tickets = tickets.into_iter();
    let first = tickets.next().unwrap();
    let second = tickets.next().unwrap();
    assert!(first.wait_for(WAIT).expect("first checkout").is_ok());
    assert!(second.wait_for(WAIT).expect("first commit").is_ok());
    server.begin_shutdown();

    // Every in-flight ticket resolves: accepted work drains to a real
    // response, anything the reader had not yet accepted gets the typed
    // refusal — nothing hangs, nothing is dropped.
    for (i, ticket) in tickets.enumerate() {
        let outcome = ticket
            .wait_for(WAIT)
            .unwrap_or_else(|| panic!("ticket {i} never resolved during shutdown"));
        match outcome {
            Ok(_) => {}
            Err(CoreError::Network(m)) => {
                assert!(m.contains("shutting down"), "ticket {i}: {m}")
            }
            Err(e) => panic!("ticket {i}: unexpected error {e}"),
        }
    }

    // Once the grace window is armed, late frames are refused cleanly.
    std::thread::sleep(Duration::from_millis(300));
    match remote.execute(Request::Ls) {
        Err(CoreError::Network(m)) => assert!(m.contains("shutting down"), "{m}"),
        other => panic!("late frame should be refused, got {other:?}"),
    }
    drop(remote);
    server.shutdown();

    // The listener is gone: new connections fail with a typed error.
    match RemoteExecutor::connect(addr, "driver") {
        Err(CoreError::Network(_)) => {}
        other => panic!("connect after shutdown should fail, got {other:?}"),
    }
}

#[test]
fn a_hung_server_becomes_a_clean_timeout_not_an_infinite_block() {
    // A stub that completes the handshake and then never answers anything.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stub = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = read_frame(&mut stream, MAX_FRAME).unwrap().unwrap();
        let user = match hello {
            Frame::Hello { user, .. } => user,
            other => panic!("expected hello, got {other:?}"),
        };
        write_frame(
            &mut stream,
            &Frame::Welcome {
                version: PROTOCOL_VERSION,
                user,
                session: 1,
                resumed: false,
            },
        )
        .unwrap();
        // Swallow frames until the client hangs up.
        while let Ok(Some(_)) = read_frame(&mut stream, MAX_FRAME) {}
    });

    let mut remote =
        RemoteExecutor::connect_with(addr, "driver", Duration::from_millis(200)).unwrap();
    let started = Instant::now();
    match remote.execute(Request::Ls) {
        Err(CoreError::ResponseTimeout { waited_ms, state }) => {
            assert_eq!(waited_ms, 200);
            // The timeout names the last-known link state: still connected,
            // with the hung request in flight.
            assert!(state.contains("connected"), "{state}");
            assert!(state.contains("in flight"), "{state}");
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(10));
    drop(remote);
    stub.join().unwrap();
}

#[test]
fn handshake_refuses_a_wrong_protocol_version_by_name() {
    let server = NetServer::bind("127.0.0.1:0", SharedOrpheusDB::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(
        &mut raw,
        &Frame::Hello {
            version: PROTOCOL_VERSION + 41,
            user: "driver".to_string(),
            resume: None,
        },
    )
    .unwrap();
    match read_frame(&mut raw, MAX_FRAME).unwrap().unwrap() {
        Frame::Resp { id: 0, outcome } => match *outcome {
            Err(CoreError::Protocol(m)) => {
                assert!(m.contains("version"), "{m}");
                assert!(m.contains(&PROTOCOL_VERSION.to_string()), "{m}");
            }
            other => panic!("expected a protocol error, got {other:?}"),
        },
        other => panic!("expected a terminal response, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn an_oversized_frame_is_refused_with_a_protocol_error() {
    use std::io::Write as _;
    let server = NetServer::bind("127.0.0.1:0", SharedOrpheusDB::default()).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(
        &mut raw,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            user: "driver".to_string(),
            resume: None,
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame(&mut raw, MAX_FRAME).unwrap().unwrap(),
        Frame::Welcome { .. }
    ));
    // A length prefix promising more than the server's frame cap.
    raw.write_all(&((MAX_FRAME + 1) as u32).to_be_bytes())
        .unwrap();
    raw.flush().unwrap();
    match read_frame(&mut raw, MAX_FRAME).unwrap().unwrap() {
        Frame::Resp { id: 0, outcome } => match *outcome {
            Err(CoreError::Protocol(m)) => assert!(m.contains("exceeds"), "{m}"),
            other => panic!("expected a protocol error, got {other:?}"),
        },
        other => panic!("expected a terminal response, got {other:?}"),
    }
    // The connection is closed afterwards; nothing else arrives.
    assert!(read_frame(&mut raw, MAX_FRAME).unwrap().is_none());
    server.shutdown();
}
