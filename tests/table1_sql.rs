//! Table 1 of the paper, executed verbatim: the SQL translations of the
//! checkout and commit commands for the combined-table, split-by-vlist and
//! split-by-rlist data models run against the engine exactly as printed.

use orpheusdb::prelude::*;

/// Set up the Figure 1 tables in all three array-based representations.
fn setup() -> Database {
    let mut db = Database::new();
    // Figure 1(b): combined table (with the hidden rid used by commit).
    db.execute(
        "CREATE TABLE T (rid INT PRIMARY KEY, protein1 TEXT, protein2 TEXT, \
         neighborhood INT, cooccurrence INT, coexpression INT, vlist INT[])",
    )
    .unwrap();
    // Figure 1(c): data table + both versioning tables.
    db.execute(
        "CREATE TABLE dataTable (rid INT PRIMARY KEY, protein1 TEXT, protein2 TEXT, \
         neighborhood INT, cooccurrence INT, coexpression INT)",
    )
    .unwrap();
    db.execute("CREATE TABLE vlistTable (rid INT PRIMARY KEY, vlist INT[])")
        .unwrap();
    db.execute("CREATE TABLE versioningTable (vid INT PRIMARY KEY, rlist INT[])")
        .unwrap();

    // Records r1..r7 with the version memberships of Figure 1.
    type FigureRow = (
        i64,
        &'static str,
        &'static str,
        i64,
        i64,
        i64,
        &'static [i64],
    );
    let rows: [FigureRow; 7] = [
        (1, "ENSP273047", "ENSP261890", 0, 53, 0, &[1]),
        (2, "ENSP273047", "ENSP235932", 0, 87, 0, &[1, 2, 3, 4]),
        (3, "ENSP300413", "ENSP274242", 426, 0, 164, &[1, 2, 4]),
        (4, "ENSP309334", "ENSP346022", 0, 227, 975, &[2, 4]),
        (5, "ENSP273047", "ENSP261890", 0, 53, 83, &[3, 4]),
        (6, "ENSP332973", "ENSP300134", 0, 0, 83, &[3, 4]),
        (7, "ENSP472847", "ENSP365773", 225, 0, 73, &[3, 4]),
    ];
    for (rid, p1, p2, n, co, cx, vlist) in rows {
        let vl = vlist
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        db.execute(&format!(
            "INSERT INTO T VALUES ({rid}, '{p1}', '{p2}', {n}, {co}, {cx}, ARRAY[{vl}])"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO dataTable VALUES ({rid}, '{p1}', '{p2}', {n}, {co}, {cx})"
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO vlistTable VALUES ({rid}, ARRAY[{vl}])"
        ))
        .unwrap();
    }
    // rlists per version (Figure 1 c.ii).
    for (vid, rlist) in [
        (1, "1, 2, 3"),
        (2, "2, 3, 4"),
        (3, "2, 5, 6, 7"),
        (4, "2, 3, 4, 5, 6, 7"),
    ] {
        db.execute(&format!(
            "INSERT INTO versioningTable VALUES ({vid}, ARRAY[{rlist}])"
        ))
        .unwrap();
    }
    db
}

#[test]
fn combined_table_column_of_table1() {
    let mut db = setup();
    // CHECKOUT (Table 1, column 1): SELECT * into T' FROM T WHERE ARRAY[vi] <@ vlist
    db.execute("SELECT * INTO Tprime FROM T WHERE ARRAY[3] <@ vlist")
        .unwrap();
    let r = db.query("SELECT count(*) FROM Tprime").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(4)));

    // COMMIT: UPDATE T SET vlist=vlist+vj WHERE rid in (SELECT rid FROM T')
    db.execute("UPDATE T SET vlist = vlist + 5 WHERE rid in (SELECT rid FROM Tprime)")
        .unwrap();
    let r = db
        .query("SELECT count(*) FROM T WHERE ARRAY[5] <@ vlist")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(4)));
    // v3's members are exactly v5's members now.
    let r = db
        .query("SELECT count(*) FROM T WHERE ARRAY[3, 5] <@ vlist")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(4)));
}

#[test]
fn split_by_vlist_column_of_table1() {
    let mut db = setup();
    // CHECKOUT (Table 1, column 2).
    db.execute(
        "SELECT * INTO Tprime FROM dataTable, \
         (SELECT rid AS rid_tmp FROM vlistTable WHERE ARRAY[1] <@ vlist) AS tmp \
         WHERE rid = rid_tmp",
    )
    .unwrap();
    let r = db.query("SELECT count(*) FROM Tprime").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(3)));

    // COMMIT: UPDATE versioningTable SET vlist=vlist+vj WHERE rid in (...).
    db.execute("UPDATE vlistTable SET vlist = vlist + 5 WHERE rid in (SELECT rid FROM Tprime)")
        .unwrap();
    let r = db
        .query("SELECT count(*) FROM vlistTable WHERE ARRAY[5] <@ vlist")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(3)));
}

#[test]
fn split_by_rlist_column_of_table1() {
    let mut db = setup();
    // CHECKOUT (Table 1, column 3): the unnest + join plan.
    db.execute(
        "SELECT * INTO Tprime FROM dataTable, \
         (SELECT unnest(rlist) AS rid_tmp FROM versioningTable WHERE vid = 4) AS tmp \
         WHERE rid = rid_tmp",
    )
    .unwrap();
    let r = db.query("SELECT count(*) FROM Tprime").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(6)));

    // COMMIT: INSERT INTO versioningTable VALUES (vj, ARRAY[SELECT rid FROM T'])
    db.execute("INSERT INTO versioningTable VALUES (5, ARRAY[SELECT rid FROM Tprime])")
        .unwrap();
    let r = db
        .query("SELECT array_length(rlist) FROM versioningTable WHERE vid = 5")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(6)));
}

/// The checkout plans hit the access paths the paper describes: the
/// split-by-rlist checkout touches the versioning table through the vid
/// primary-key index (1 lookup) rather than scanning it.
#[test]
fn rlist_checkout_uses_vid_index() {
    let mut db = setup();
    db.stats.reset();
    db.execute(
        "SELECT * INTO Tprime FROM dataTable, \
         (SELECT unnest(rlist) AS rid_tmp FROM versioningTable WHERE vid = 1) AS tmp \
         WHERE rid = rid_tmp",
    )
    .unwrap();
    let snap = db.stats.snapshot();
    assert_eq!(snap.index_lookups, 1, "vid lookup should use the PK index");
    // Only the data table is sequentially scanned (7 records).
    assert_eq!(snap.rows_scanned, 7);
}

/// Figure 4(a): the metadata table is plain SQL-queryable.
#[test]
fn metadata_table_is_queryable_sql() {
    let mut odb = OrpheusDB::new();
    let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
    odb.init_cvd("d", schema, vec![vec![Value::Int(1)]], None)
        .unwrap();
    odb.checkout("d", &[Vid(1)], "w").unwrap();
    odb.engine
        .execute("INSERT INTO w VALUES (NULL, 2)")
        .unwrap();
    odb.commit("w", "second").unwrap();
    let r = odb
        .engine
        .query("SELECT vid, msg FROM d__meta WHERE commit_t >= 1 ORDER BY vid")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[1][1], Value::Text("second".into()));
}
