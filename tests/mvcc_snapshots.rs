//! The MVCC snapshot acceptance suite: reads never wait on (or tear
//! under) a writer, and cross-CVD writes are atomic transactions.
//!
//! The deterministic tests park a committer *inside* the shard write lock
//! with the core's test-only commit gate
//! (`orpheus_core::concurrent::arm_commit_gate`) and prove that reads on
//! the same CVD still complete — and see exactly the pre-commit state,
//! never a torn one. The storm tests are scheduler-driven; their
//! iteration counts are modest by default and scale up under
//! `ORPHEUS_STRESS=1` (the CI stress job), matching the
//! `concurrent_sessions` convention. The lock-order rationale lives in
//! `docs/CONCURRENCY.md`.

use orpheusdb::core::concurrent::arm_commit_gate;
use orpheusdb::prelude::*;

/// The commit gate is one process-global slot; tests that arm it must
/// not overlap or one test's committer parks on another's gate. Each
/// gated test holds this for its whole body (poisoning is benign: a
/// failed gated test must not cascade).
static GATE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Iteration multiplier: 1 normally, larger under `ORPHEUS_STRESS=1`.
fn stress(base: usize) -> usize {
    match std::env::var("ORPHEUS_STRESS").as_deref() {
        Ok("1") => base * 12,
        _ => base,
    }
}

fn cvd_schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Int),
    ])
    .with_primary_key(&["k"])
    .unwrap()
}

/// A shared instance holding `names`, each CVD seeded with 10 rows.
fn shared_with_cvds(names: &[&str]) -> SharedOrpheusDB {
    let mut odb = OrpheusDB::new();
    for name in names {
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![i.into(), 0.into()]).collect();
        odb.init_cvd(name, cvd_schema(), rows, None).unwrap();
    }
    SharedOrpheusDB::new(odb)
}

fn scalar(result: &orpheusdb::engine::QueryResult) -> i64 {
    match result.scalar() {
        Some(Value::Int(n)) => *n,
        other => panic!("expected an integer scalar, got {other:?}"),
    }
}

/// While a commit is parked inside the shard write lock, every read on
/// that CVD completes on the snapshot and sees the *pre-commit* graph —
/// old, consistent, never torn. After release, the same reads see the new
/// version.
#[test]
fn mvcc_reads_during_a_held_commit_see_the_old_graph_never_a_torn_one() {
    let _serial = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shared = shared_with_cvds(&["data"]);
    let writer = shared.session("writer").unwrap();
    writer.checkout("data", &[Vid(1)], "w").unwrap();
    writer.sql("UPDATE w SET v = 9 WHERE k = 0").unwrap();

    let gate = arm_commit_gate("w");
    let committed = std::thread::scope(|scope| {
        let handle = scope.spawn(|| writer.commit("w", "gated"));
        gate.wait_entered();

        // The committer holds the CVD write lock right now; none of the
        // reads below may block, and all must see version 1 only.
        let mut reader = shared.session("reader").unwrap();
        let history = match reader.execute(Log::of("data").into()).unwrap() {
            Response::Log { entries, .. } => entries,
            other => panic!("log returned {other:?}"),
        };
        assert_eq!(history.len(), 1, "mid-commit log sees the old graph");

        let rows = reader
            .run("SELECT count(*) FROM VERSION 1 OF CVD data")
            .unwrap();
        assert_eq!(scalar(&rows), 10);
        // The staged edit is the writer's private state: invisible to the
        // reader's snapshot even while its commit is in flight.
        let unchanged = reader
            .run("SELECT count(*) FROM VERSION 1 OF CVD data WHERE v = 0")
            .unwrap();
        assert_eq!(scalar(&unchanged), 10, "no torn read of the staged edit");
        assert_eq!(reader.version_rows("data", Vid(1)).unwrap().len(), 10);

        gate.release();
        handle.join().expect("committer panicked").unwrap()
    });

    assert_eq!(committed, Vid(2));
    let reader = shared.session("reader").unwrap();
    let after = reader
        .run("SELECT count(*) FROM VERSION 2 OF CVD data WHERE v = 9")
        .unwrap();
    assert_eq!(scalar(&after), 1, "post-release reads see the new version");
}

/// A checkout *completes* while another session's commit holds the same
/// CVD's write lock (it parks on the snapshot), the owner can read their
/// own parked table immediately, and the parked table commits cleanly
/// after the held commit lands.
#[test]
fn mvcc_parked_checkout_completes_and_commits_after_a_held_commit() {
    let _serial = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shared = shared_with_cvds(&["data"]);
    let writer = shared.session("writer").unwrap();
    writer.checkout("data", &[Vid(1)], "w").unwrap();

    let gate = arm_commit_gate("w");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| writer.commit("w", "gated"));
        gate.wait_entered();

        let reader = shared.session("reader").unwrap();
        reader.checkout("data", &[Vid(1)], "parked").unwrap();
        // Read-your-writes on the parked table, mid-commit. (A *write*
        // to it would rightly block — only reads are lock-free.)
        let count = reader.sql("SELECT count(*) FROM parked").unwrap();
        assert_eq!(scalar(&count), 10);

        gate.release();
        handle.join().expect("committer panicked").unwrap();
        reader.sql("UPDATE parked SET v = 5 WHERE k = 1").unwrap();

        // The parked checkout is a first-class staged table afterwards:
        // it commits as a sibling of version 1.
        let vid = reader.commit("parked", "from parked checkout").unwrap();
        assert_eq!(vid, Vid(3));
    });

    shared.read(|odb| {
        assert_eq!(odb.log_entries("data").unwrap().len(), 3);
        assert!(odb.staged().is_empty(), "no leaked staged tables");
    });
}

/// A parked checkout that the owner *discards* mid-flight leaves nothing
/// behind: no staged artifact, no leaked index reservation.
#[test]
fn mvcc_parked_checkout_discards_cleanly() {
    let _serial = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shared = shared_with_cvds(&["data"]);
    let writer = shared.session("writer").unwrap();
    writer.checkout("data", &[Vid(1)], "w").unwrap();

    let gate = arm_commit_gate("w");
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| writer.commit("w", "gated"));
        gate.wait_entered();
        let reader = shared.session("reader").unwrap();
        reader.checkout("data", &[Vid(1)], "parked").unwrap();
        gate.release();
        handle.join().expect("committer panicked").unwrap();
        reader.discard("parked").unwrap();
        // The name is reusable immediately.
        reader.checkout("data", &[Vid(2)], "parked").unwrap();
        reader.discard("parked").unwrap();
    });
    shared.read(|odb| assert!(odb.staged().is_empty()));
}

/// A write joining checkouts of two different CVDs is a cross-CVD write
/// transaction — it succeeds (no `CrossCvd` refusal) and both sides'
/// effects land atomically.
#[test]
fn mvcc_cross_cvd_writes_commit_atomically() {
    let shared = shared_with_cvds(&["left", "right"]);
    let session = shared.session("u").unwrap();
    session.checkout("left", &[Vid(1)], "lw").unwrap();
    session.checkout("right", &[Vid(1)], "rw").unwrap();

    // One statement reads `rw` (right's shard) while writing `lw` (left's
    // shard): the executor locks both shards in sorted key order.
    session
        .sql("UPDATE lw SET v = (SELECT count(*) FROM rw) WHERE k = 0")
        .unwrap();
    let joined = session.sql("SELECT count(*) FROM lw WHERE v = 10").unwrap();
    assert_eq!(scalar(&joined), 1, "the joined write applied");

    session.sql("UPDATE rw SET v = 1 WHERE k = 3").unwrap();
    assert_eq!(session.commit("lw", "left edit").unwrap(), Vid(2));
    assert_eq!(session.commit("rw", "right edit").unwrap(), Vid(2));
    shared.read(|odb| {
        assert_eq!(odb.log_entries("left").unwrap().len(), 2);
        assert_eq!(odb.log_entries("right").unwrap().len(), 2);
        assert!(odb.staged().is_empty());
    });
}

/// A failing cross-CVD statement leaves *neither* shard modified: the
/// transaction merges its shard copies, and an error discards the merged
/// state instead of writing half of it back.
#[test]
fn mvcc_cross_cvd_write_failure_leaves_both_shards_untouched() {
    let shared = shared_with_cvds(&["left", "right"]);
    let session = shared.session("u").unwrap();
    session.checkout("left", &[Vid(1)], "lw").unwrap();
    session.checkout("right", &[Vid(1)], "rw").unwrap();

    // Type error: `v` is an int column. The statement routes to both
    // shards (reads rw, writes lw) and must fail without side effects.
    let err = session.sql("UPDATE lw SET v = (SELECT count(*) FROM rw) + 'x' WHERE k = 0");
    assert!(err.is_err(), "the malformed cross-CVD write must fail");

    let left = session.sql("SELECT count(*) FROM lw WHERE v = 0").unwrap();
    let right = session.sql("SELECT count(*) FROM rw WHERE v = 0").unwrap();
    assert_eq!(scalar(&left), 10, "left shard untouched after the failure");
    assert_eq!(
        scalar(&right),
        10,
        "right shard untouched after the failure"
    );
}

/// Deadlock storm: threads hammer cross-CVD writes over overlapping CVD
/// pairs in *opposite* textual orders. The sorted-key lock order makes
/// the opposite orders irrelevant; the test passing (rather than hanging)
/// is the assertion. Scaled up under `ORPHEUS_STRESS=1`.
#[test]
fn mvcc_opposed_cross_cvd_writers_never_deadlock() {
    const PAIRS: [(&str, &str); 2] = [("alpha", "beta"), ("beta", "alpha")];
    let rounds = stress(4);
    let shared = shared_with_cvds(&["alpha", "beta"]);

    std::thread::scope(|scope| {
        for (t, (first, second)) in PAIRS.iter().enumerate() {
            let shared = shared.clone();
            scope.spawn(move || {
                let session = shared.session(&format!("u{t}")).unwrap();
                for i in 0..rounds {
                    let a = format!("u{t}_a{i}");
                    let b = format!("u{t}_b{i}");
                    session.checkout(first, &[Vid(1)], &a).unwrap();
                    session.checkout(second, &[Vid(1)], &b).unwrap();
                    // Reads `b`'s shard while writing `a`'s: the executor
                    // locks both, always in sorted order regardless of
                    // this thread's textual order.
                    session
                        .sql(&format!(
                            "UPDATE {a} SET v = (SELECT count(*) FROM {b}) WHERE k = 0"
                        ))
                        .unwrap();
                    session.commit(&a, &format!("u{t} round {i}")).unwrap();
                    session.discard(&b).unwrap();
                }
            });
        }
    });

    shared.read(|odb| {
        assert_eq!(odb.log_entries("alpha").unwrap().len(), 1 + rounds);
        assert_eq!(odb.log_entries("beta").unwrap().len(), 1 + rounds);
        assert!(odb.staged().is_empty());
    });
}

/// Readers stream snapshot reads while a writer streams commits on the
/// same CVD; afterwards the graph matches a sequential replay exactly.
/// Scheduler-driven companion to the deterministic gated tests above;
/// scaled up under `ORPHEUS_STRESS=1`.
#[test]
fn mvcc_snapshot_readers_never_disturb_a_streaming_writer() {
    let rounds = stress(4);
    let shared = shared_with_cvds(&["data"]);

    std::thread::scope(|scope| {
        let writer = shared.clone();
        scope.spawn(move || {
            let session = writer.session("writer").unwrap();
            for i in 0..rounds {
                let table = format!("w{i}");
                session.checkout("data", &[Vid(1)], &table).unwrap();
                session
                    .sql(&format!("UPDATE {table} SET v = {i} WHERE k = 0"))
                    .unwrap();
                session.commit(&table, &format!("round {i}")).unwrap();
            }
        });
        for r in 0..2 {
            let shared = shared.clone();
            scope.spawn(move || {
                let session = shared.session(&format!("reader{r}")).unwrap();
                for _ in 0..rounds * 3 {
                    let rows = session
                        .run("SELECT count(*) FROM VERSION 1 OF CVD data")
                        .unwrap();
                    assert_eq!(scalar(&rows), 10, "version 1 is immutable");
                    session.diff("data", Vid(1), Vid(1)).unwrap();
                }
            });
        }
    });

    // Sequential replay of the writer's script on a fresh instance.
    let reference = shared_with_cvds(&["data"]);
    {
        let session = reference.session("writer").unwrap();
        for i in 0..rounds {
            let table = format!("w{i}");
            session.checkout("data", &[Vid(1)], &table).unwrap();
            session
                .sql(&format!("UPDATE {table} SET v = {i} WHERE k = 0"))
                .unwrap();
            session.commit(&table, &format!("round {i}")).unwrap();
        }
    }
    let storm = shared.read(|odb| {
        odb.log_entries("data")
            .unwrap()
            .into_iter()
            .map(|e| (e.parents, e.num_records, e.message))
            .collect::<std::collections::BTreeSet<_>>()
    });
    let replay = reference.read(|odb| {
        odb.log_entries("data")
            .unwrap()
            .into_iter()
            .map(|e| (e.parents, e.num_records, e.message))
            .collect::<std::collections::BTreeSet<_>>()
    });
    assert_eq!(storm, replay, "reader storm must not disturb the graph");
}

/// `Executor::batch` equals the sequential `execute` loop on a request
/// vector whose writes span two CVDs — the batch planner's cross-CVD
/// write steps preserve sequential semantics exactly.
#[test]
fn mvcc_batch_equals_sequential_for_multi_cvd_writes() {
    let script = || -> Vec<Request> {
        vec![
            Checkout::of("left").version(1u64).into_table("lw").into(),
            Checkout::of("right").version(1u64).into_table("rw").into(),
            // Pure snapshot reads, split into read-only steps.
            Run::sql("SELECT count(*) FROM VERSION 1 OF CVD left").into(),
            Log::of("right").into(),
            // The cross-CVD write: reads rw, writes lw.
            Run::sql("UPDATE lw SET v = (SELECT count(*) FROM rw) WHERE k = 0").into(),
            Run::sql("UPDATE rw SET v = 2 WHERE k = 1").into(),
            Commit::table("lw").message("left").into(),
            Commit::table("rw").message("right").into(),
            Diff::of("left").between(1u64, 2u64).into(),
        ]
    };
    let render = |results: Vec<Result<Response, CoreError>>| -> Vec<String> {
        results
            .into_iter()
            .map(|r| match r {
                Ok(resp) => format!("ok: {resp:?}"),
                Err(e) => format!("err: {e}"),
            })
            .collect()
    };

    let sequential = shared_with_cvds(&["left", "right"]);
    let mut s = sequential.session("u").unwrap();
    let expected: Vec<String> = render(script().into_iter().map(|r| s.execute(r)).collect());

    let batched = shared_with_cvds(&["left", "right"]);
    let got = render(batched.session("u").unwrap().batch(script()));
    assert_eq!(got, expected, "batch == sequential for multi-CVD writes");

    let graphs = |shared: &SharedOrpheusDB| {
        shared.read(|odb| {
            (
                odb.log_entries("left").unwrap().len(),
                odb.log_entries("right").unwrap().len(),
                odb.staged().len(),
            )
        })
    };
    assert_eq!(graphs(&sequential), (2, 2, 0));
    assert_eq!(graphs(&batched), (2, 2, 0));
}
