//! Multi-threaded session integration tests for the per-CVD locking
//! scheme: disjoint-CVD commits must behave exactly like a sequential run
//! (no lost updates, identical version graphs), and same-CVD conflicts
//! must still serialize with ownership checks intact.
//!
//! Every test name starts with `concurrent_` so CI's stress job can select
//! the whole suite with `cargo test -- concurrent_`. Iteration counts are
//! modest by default and scale up under `ORPHEUS_STRESS=1` (the CI stress
//! job), so lock-ordering bugs surface there rather than in production.

use orpheusdb::prelude::*;

/// Iteration multiplier: 1 normally, larger under `ORPHEUS_STRESS=1`.
fn stress(base: usize) -> usize {
    match std::env::var("ORPHEUS_STRESS").as_deref() {
        Ok("1") => base * 12,
        _ => base,
    }
}

fn cvd_schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("v", DataType::Int),
    ])
    .with_primary_key(&["k"])
    .unwrap()
}

fn instance_with_cvds(names: &[String]) -> OrpheusDB {
    let mut odb = OrpheusDB::new();
    for name in names {
        let rows: Vec<Vec<Value>> = (0..12).map(|i| vec![i.into(), 0.into()]).collect();
        odb.init_cvd(name, cvd_schema(), rows, None).unwrap();
    }
    odb
}

/// The per-thread editing script: `rounds` checkout → edit → commit cycles
/// against one CVD, via the typed bus.
fn edit_rounds(session: &mut Session, cvd: &str, who: &str, rounds: usize) {
    for i in 0..rounds {
        let table = session.private_table(&format!("{cvd}_{i}"));
        session
            .dispatch(Checkout::of(cvd).version(1u64).into_table(&table))
            .unwrap();
        session
            .sql(&format!("UPDATE {table} SET v = {i} WHERE k = 0"))
            .unwrap();
        session
            .dispatch(Commit::table(&table).message(format!("{who} round {i}")))
            .unwrap();
    }
}

/// K sessions commit to K disjoint CVDs concurrently: (a) no lost updates,
/// (b) each CVD's version graph matches the sequential run's, (c) all
/// staged tables are consumed.
#[test]
fn concurrent_disjoint_cvd_commits_match_the_sequential_run() {
    const USERS: usize = 4;
    let rounds = stress(3);
    let names: Vec<String> = (0..USERS).map(|u| format!("cvd{u}")).collect();

    // Sequential reference run.
    let sequential = SharedOrpheusDB::new(instance_with_cvds(&names));
    for (u, cvd) in names.iter().enumerate() {
        let mut s = sequential.session(&format!("user{u}")).unwrap();
        edit_rounds(&mut s, cvd, &format!("user{u}"), rounds);
    }

    // Concurrent run: same scripts, one thread per user/CVD.
    let shared = SharedOrpheusDB::new(instance_with_cvds(&names));
    std::thread::scope(|scope| {
        for (u, cvd) in names.iter().enumerate() {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut s = shared.session(&format!("user{u}")).unwrap();
                edit_rounds(&mut s, cvd, &format!("user{u}"), rounds);
            });
        }
    });

    // Version graphs agree per CVD: count, parents, messages, record counts.
    for cvd in &names {
        let reference: Vec<(Vid, Vec<Vid>, String, u64)> = sequential.read(|odb| {
            odb.cvd(cvd)
                .unwrap()
                .versions
                .iter()
                .map(|m| (m.vid, m.parents.clone(), m.message.clone(), m.num_records))
                .collect()
        });
        let concurrent: Vec<(Vid, Vec<Vid>, String, u64)> = shared.read(|odb| {
            odb.cvd(cvd)
                .unwrap()
                .versions
                .iter()
                .map(|m| (m.vid, m.parents.clone(), m.message.clone(), m.num_records))
                .collect()
        });
        assert_eq!(reference, concurrent, "{cvd}");
    }
    shared.read(|odb| assert!(odb.staged().is_empty()));
}

/// Conflicting commits to the *same* CVD still serialize: every commit
/// lands as a distinct version, and no thread can touch another's staged
/// table (owner checks stay intact under contention).
#[test]
fn concurrent_same_cvd_commits_serialize_with_owner_checks_intact() {
    const USERS: usize = 6;
    let rounds = stress(2);
    let names = vec!["hot".to_string()];
    let shared = SharedOrpheusDB::new(instance_with_cvds(&names));

    std::thread::scope(|scope| {
        for u in 0..USERS {
            let shared = shared.clone();
            scope.spawn(move || {
                let s = shared.session(&format!("user{u}")).unwrap();
                let rival = format!("user{}", (u + 1) % USERS);
                for i in 0..rounds {
                    let mine = s.private_table(&format!("w{i}"));
                    s.checkout("hot", &[Vid(1)], &mine).unwrap();
                    // A rival's session cannot commit or read my table.
                    let rival_session = shared.session(&rival).unwrap();
                    let err = rival_session.commit(&mine, "steal").unwrap_err();
                    assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
                    let err = rival_session
                        .sql(&format!("SELECT count(*) FROM {mine}"))
                        .unwrap_err();
                    assert!(matches!(err, CoreError::PermissionDenied(_)), "{err}");
                    s.commit(&mine, &format!("user{u} round {i}")).unwrap();
                }
            });
        }
    });

    shared.read(|odb| {
        let cvd = odb.cvd("hot").unwrap();
        assert_eq!(cvd.num_versions(), 1 + USERS * rounds);
        // Every commit message is present exactly once — no lost updates.
        let mut messages: Vec<&str> = cvd
            .versions
            .iter()
            .skip(1)
            .map(|m| m.message.as_str())
            .collect();
        messages.sort_unstable();
        let mut expected: Vec<String> = (0..USERS)
            .flat_map(|u| (0..rounds).map(move |i| format!("user{u} round {i}")))
            .collect();
        expected.sort();
        assert_eq!(
            messages,
            expected.iter().map(|s| s.as_str()).collect::<Vec<_>>()
        );
        assert!(odb.staged().is_empty());
    });
}

/// Mixed traffic under stress: writers on disjoint CVDs, readers running
/// versioned queries and logs against all of them, a catalog churner
/// creating and dropping CVDs — no deadlocks, no identity leaks.
#[test]
fn concurrent_mixed_catalog_and_shard_traffic_stays_consistent() {
    let names: Vec<String> = (0..3).map(|u| format!("cvd{u}")).collect();
    let shared = SharedOrpheusDB::new(instance_with_cvds(&names));
    let rounds = stress(3);

    std::thread::scope(|scope| {
        // Writers.
        for (u, cvd) in names.iter().enumerate() {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut s = shared.session(&format!("writer{u}")).unwrap();
                edit_rounds(&mut s, cvd, &format!("writer{u}"), rounds);
            });
        }
        // Readers.
        for r in 0..2 {
            let shared = shared.clone();
            let names = names.clone();
            scope.spawn(move || {
                let mut s = shared.session(&format!("reader{r}")).unwrap();
                for _ in 0..rounds * 4 {
                    for cvd in &names {
                        let n = s
                            .run(&format!("SELECT count(*) FROM VERSION 1 OF CVD {cvd}"))
                            .unwrap();
                        assert_eq!(n.scalar(), Some(&Value::Int(12)));
                        let log = s.dispatch(Log::of(cvd.as_str())).unwrap();
                        assert!(matches!(log, Response::Log { .. }));
                    }
                }
            });
        }
        // Catalog churn: create and drop scratch CVDs while shard traffic
        // runs — exercises catalog/shard lock handoff.
        {
            let shared = shared.clone();
            scope.spawn(move || {
                let mut s = shared.session("churner").unwrap();
                for i in 0..rounds * 2 {
                    let name = format!("scratch{i}");
                    s.dispatch(
                        Init::cvd(&name)
                            .schema(cvd_schema())
                            .row(vec![1.into(), 1.into()]),
                    )
                    .unwrap();
                    s.dispatch(DropCvd::named(&name)).unwrap();
                }
            });
        }
    });

    // The instance identity never leaked a session user.
    assert_eq!(
        shared.read(|odb| odb.access.whoami().to_string()),
        "default"
    );
    shared.read(|odb| {
        assert_eq!(odb.ls().len(), names.len());
        for cvd in &names {
            assert_eq!(odb.cvd(cvd).unwrap().num_versions(), 1 + rounds);
        }
    });
}
