//! The async-executor acceptance suite — the [`Executor`] contract and the
//! worker-pool semantics of `orpheus_core::async_exec`:
//!
//! * (a) an [`AsyncHandle`] equals the sequential `execute` loop **result
//!   for result** on the full bus corpus (every request variant,
//!   successes and failures mixed), both request-at-a-time and pipelined
//!   through `batch`;
//! * (b) sequential barriers order catalog churn (CVD create/drop)
//!   exactly like the sequential loop, and concurrent handles mixing
//!   catalog churn with shard work leave a consistent instance;
//! * (c) a panicking worker poisons **only its shard's in-flight
//!   tickets**: completed requests keep their results, the other shard is
//!   untouched, reservations are released, and the shard keeps serving
//!   later submissions.

use orpheusdb::core::concurrent::{arm_checkout_panic, disarm_checkout_panic};
use orpheusdb::prelude::*;
use std::sync::Arc;

const CSV: &str = "id,score\n1,10\n2,20\n3,30\n";
const SCHEMA: &str = "id:int!pk\nscore:int\n";

/// The bus_roundtrip corpus as one request vector — same shape as
/// `tests/batch_semantics.rs`, self-contained so fresh instances can run
/// it as a loop or a single pipelined batch.
fn corpus() -> Vec<Request> {
    let ranks_schema = Schema::new(vec![
        Column::new("name", DataType::Text),
        Column::new("rank", DataType::Int),
    ])
    .with_primary_key(&["name"])
    .unwrap();
    vec![
        InitFromCsv::cvd("scores")
            .csv(CSV)
            .schema_text(SCHEMA)
            .into(),
        Init::cvd("ranks")
            .schema(ranks_schema)
            .row(vec!["a".into(), 1.into()])
            .row(vec!["b".into(), 2.into()])
            .model(ModelKind::CombinedTable)
            .into(),
        Checkout::of("scores")
            .version(1u64)
            .into_table("work")
            .into(),
        Commit::table("work").message("no-op").into(),
        Checkout::of("scores")
            .version(2u64)
            .into_csv("scores.csv")
            .into(),
        CommitCsv::path("scores.csv")
            .csv("rid,id,score\n1,1,10\n2,2,20\n3,3,30\n,4,40\n")
            .message("add row via csv")
            .into(),
        Diff::of("scores").between(2u64, 3u64).into(),
        Run::sql("SELECT count(*) FROM VERSION 3 OF CVD scores").into(),
        Request::Ls,
        Log::of("scores").into(),
        Optimize::cvd("scores").gamma(2.0).mu(1.5).into(),
        CreateUser::named("courier").into(),
        Login::as_user("courier").into(),
        Request::Whoami,
        Checkout::of("scores")
            .version(1u64)
            .into_table("scratch")
            .into(),
        Discard::table("scratch").into(),
        // Failures, deliberately mid-stream.
        Checkout::of("scores")
            .version(99u64)
            .into_table("zzz")
            .into(),
        Commit::table("never_staged").into(),
        Run::sql("SELECT count(*) FROM VERSION 1 OF CVD nope").into(),
        DropCvd::named("scores").into(),
        DropCvd::named("ranks").into(),
        Request::Ls,
    ]
}

fn render(result: &Result<Response, CoreError>) -> String {
    match result {
        Ok(response) => response.summary(),
        Err(e) => format!("error: {e}"),
    }
}

fn sequential_outcomes() -> Vec<String> {
    let shared = SharedOrpheusDB::new(OrpheusDB::new());
    let mut session = shared.session("driver").unwrap();
    corpus()
        .into_iter()
        .map(|r| render(&session.execute(r)))
        .collect()
}

#[test]
fn handle_execute_loop_equals_the_sequential_loop_on_the_full_corpus() {
    let expected = sequential_outcomes();
    // Both pool modes: worker threads and coordinator-only (inline).
    for workers in [0, 2] {
        let pool = AsyncExecutor::with_workers(SharedOrpheusDB::new(OrpheusDB::new()), workers);
        let mut handle = pool.handle("driver").unwrap();
        let got: Vec<String> = corpus()
            .into_iter()
            .map(|r| render(&handle.execute(r)))
            .collect();
        assert_eq!(expected.len(), got.len());
        for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(want, have, "workers={workers}: request {i} diverged");
        }
        pool.shared().read(|odb| assert!(odb.staged().is_empty()));
    }
}

#[test]
fn pipelined_batch_equals_the_sequential_loop_on_the_full_corpus() {
    let expected = sequential_outcomes();
    for workers in [0, 2] {
        let pool = AsyncExecutor::with_workers(SharedOrpheusDB::new(OrpheusDB::new()), workers);
        let mut handle = pool.handle("driver").unwrap();
        let got: Vec<String> = handle.batch(corpus()).iter().map(render).collect();
        assert_eq!(expected.len(), got.len());
        for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(want, have, "workers={workers}: request {i} diverged");
        }
        pool.shared().read(|odb| assert!(odb.staged().is_empty()));
    }
}

/// Two CVDs under one shared instance, `n` rows each.
fn shared_with_two_cvds(n: i64) -> SharedOrpheusDB {
    let mut odb = OrpheusDB::new();
    for name in ["left", "right"] {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
        .with_primary_key(&["k"])
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::Int(i), Value::Int(0)]).collect();
        odb.init_cvd(name, schema, rows, None).unwrap();
    }
    SharedOrpheusDB::new(odb)
}

#[test]
fn barriers_order_catalog_churn_exactly_like_the_sequential_loop() {
    // A batch that interleaves shard work with CVD create/drop: the drops
    // and inits are sequential barriers, so everything before them must
    // land first and everything after must observe them — the checkout of
    // the dropped CVD fails, the checkout of the new CVD succeeds.
    let scenario = || -> Vec<Request> {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        vec![
            Checkout::of("left").version(1u64).into_table("l0").into(),
            Commit::table("l0").message("before churn").into(),
            DropCvd::named("right").into(),
            Checkout::of("right").version(1u64).into_table("r0").into(), // fails: dropped
            Init::cvd("fresh")
                .schema(schema)
                .rows(vec![vec![1.into()]])
                .into(),
            Checkout::of("fresh").version(1u64).into_table("f0").into(),
            Commit::table("f0").message("after churn").into(),
            Request::Ls,
        ]
    };

    let a = shared_with_two_cvds(6);
    let mut sequential = a.session("u").unwrap();
    let expected: Vec<String> = scenario()
        .into_iter()
        .map(|r| render(&sequential.execute(r)))
        .collect();

    for workers in [0, 2] {
        let b = shared_with_two_cvds(6);
        let pool = AsyncExecutor::with_workers(b.clone(), workers);
        let mut handle = pool.handle("u").unwrap();
        let got: Vec<String> = handle.batch(scenario()).iter().map(render).collect();
        assert_eq!(expected, got, "workers={workers}");
        b.read(|odb| {
            assert_eq!(odb.ls(), vec!["fresh", "left"]);
            assert_eq!(odb.cvd("left").unwrap().num_versions(), 2);
            assert_eq!(odb.cvd("fresh").unwrap().num_versions(), 2);
            assert!(odb.staged().is_empty());
        });
    }
}

#[test]
fn concurrent_handles_survive_mixed_catalog_churn() {
    let shared = shared_with_two_cvds(8);
    let pool = Arc::new(AsyncExecutor::with_workers(shared.clone(), 2));
    std::thread::scope(|scope| {
        // Two clients hammer the stable CVDs...
        for (user, cvd) in [("w0", "left"), ("w1", "right")] {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                let handle = pool.handle(user).unwrap();
                for i in 0..4 {
                    let table = format!("{user}_{i}");
                    let t1 = handle.submit(Checkout::of(cvd).version(1u64).into_table(&table));
                    let t2 = handle.submit(Commit::table(&table).message(format!("{user} {i}")));
                    t1.wait().unwrap();
                    t2.wait().unwrap();
                }
            });
        }
        // ...while a third creates and drops CVDs (catalog barriers).
        let pool = Arc::clone(&pool);
        scope.spawn(move || {
            let handle = pool.handle("churn").unwrap();
            for i in 0..3 {
                let name = format!("temp{i}");
                let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
                let results = handle.clone().batch(vec![
                    Init::cvd(&name)
                        .schema(schema)
                        .rows(vec![vec![1.into()]])
                        .into(),
                    Checkout::of(&name)
                        .version(1u64)
                        .into_table(format!("t{i}"))
                        .into(),
                    Commit::table(format!("t{i}")).message("churn").into(),
                    DropCvd::named(&name).into(),
                ]);
                for (j, r) in results.iter().enumerate() {
                    assert!(r.is_ok(), "churn round {i} step {j}: {r:?}");
                }
            }
        });
    });
    shared.read(|odb| {
        assert_eq!(odb.ls(), vec!["left", "right"]);
        assert_eq!(odb.cvd("left").unwrap().num_versions(), 5);
        assert_eq!(odb.cvd("right").unwrap().num_versions(), 5);
        assert!(odb.staged().is_empty());
    });
}

#[test]
fn a_panicking_worker_poisons_only_its_shards_in_flight_tickets() {
    for workers in [0, 2] {
        let shared = shared_with_two_cvds(6);
        let pool = AsyncExecutor::with_workers(shared.clone(), workers);
        let mut handle = pool.handle("u").unwrap();

        arm_checkout_panic("__panic_probe");
        let results = handle.batch(vec![
            // Same shard, before the panic: completes and keeps its result.
            Checkout::of("left").version(1u64).into_table("l_ok").into(),
            // The injected panic fires executing this checkout.
            Checkout::of("left")
                .version(1u64)
                .into_table("__panic_probe")
                .into(),
            // Same shard, in flight behind the panic: poisoned.
            Checkout::of("left")
                .version(1u64)
                .into_table("l_after")
                .into(),
            // A different shard: completely unaffected.
            Checkout::of("right")
                .version(1u64)
                .into_table("r_ok")
                .into(),
        ]);
        disarm_checkout_panic();

        assert!(results[0].is_ok(), "workers={workers}: {:?}", results[0]);
        assert!(
            matches!(results[1], Err(CoreError::WorkerPanicked { ref shard }) if shard == "left"),
            "workers={workers}: {:?}",
            results[1]
        );
        assert!(
            matches!(results[2], Err(CoreError::WorkerPanicked { .. })),
            "workers={workers}: {:?}",
            results[2]
        );
        assert!(results[3].is_ok(), "workers={workers}: {:?}", results[3]);

        // The poisoned requests' reservations were released and the shard
        // keeps serving: the same names check out cleanly afterwards.
        handle
            .execute(
                Checkout::of("left")
                    .version(1u64)
                    .into_table("__panic_probe")
                    .into(),
            )
            .unwrap();
        handle
            .execute(
                Checkout::of("left")
                    .version(1u64)
                    .into_table("l_after")
                    .into(),
            )
            .unwrap();
        let committed = handle
            .execute(Commit::table("l_ok").message("survivor").into())
            .unwrap();
        assert_eq!(committed.version(), Some(Vid(2)));

        shared.read(|odb| {
            // l_ok was committed; the probe names were re-staged above.
            assert_eq!(odb.staged().len(), 3, "workers={workers}");
        });
    }
}
