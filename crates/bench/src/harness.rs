//! Experiment harness: the paper's timing protocol, table rendering, and
//! the bus-level workload driver.
//!
//! Section 5.1: "Each experiment was repeated 5 times ... we discarded the
//! largest and smallest number among the five trials, and then took the
//! average of the remaining three." [`time_op`] implements exactly that
//! protocol (with a configurable trial count for quick runs).
//!
//! Command-level workloads run through the typed request bus via
//! [`drive`]: a stream of [`Request`]s is executed on any
//! [`Executor`] (an `OrpheusDB` or a `Session`) with per-command timing,
//! so future executors that batch or dispatch asynchronously can be
//! measured against the sequential baseline without changing the workload
//! definition.

use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use orpheus_core::request::{CommandKind, Executor, Request};
use orpheus_core::{Checkout, Commit, CoreError, Discard, OrpheusDB, Response, Result, Run};

/// Run `op` `trials` times, drop the fastest and slowest trial (when there
/// are at least three), and return the mean of the rest in milliseconds.
pub fn time_op<F: FnMut()>(trials: usize, mut op: F) -> f64 {
    let trials = trials.max(1);
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        op();
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    protocol_mean(samples)
}

/// The paper's aggregation applied to already-collected samples: drop the
/// fastest and slowest (when there are at least three) and average the
/// rest. Benchmarks whose trials rebuild state themselves (so [`time_op`]
/// cannot wrap them) share the protocol through this.
pub fn protocol_mean(mut samples: Vec<f64>) -> f64 {
    assert!(
        !samples.is_empty(),
        "protocol_mean needs at least one sample"
    );
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let kept: &[f64] = if samples.len() >= 3 {
        &samples[1..samples.len() - 1]
    } else {
        &samples
    };
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Nearest-rank percentile of a sample set (`p` in 0..=100). Sorts the
/// samples in place; returns 0.0 for an empty set. The differential arms
/// report p50/p99 request latencies through this.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Time a single run (for expensive operations where repetition is
/// impractical, e.g. full dataset loads).
pub fn time_once<T, F: FnOnce() -> T>(op: F) -> (T, f64) {
    let start = Instant::now();
    let out = op();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Number of timing trials (default 3; `ORPHEUS_TRIALS` overrides — the
/// paper uses 5).
pub fn trials() -> usize {
    env_usize("ORPHEUS_TRIALS", 3).max(1)
}

/// Read a `usize` knob from the environment, falling back to `default`
/// when unset or unparsable. The shared parser behind every bench bin's
/// `ORPHEUS_*` knob; callers with a lower bound clamp at the use site
/// (e.g. `.max(1)`), since some knobs — batch size, worker count — take 0
/// meaningfully.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(default)
}

/// [`env_usize`] for floating-point knobs (finite and positive, else the
/// default).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(default)
}

/// The machine's detected hardware parallelism (1 when detection fails).
/// Every `BENCH_*.json` emitter reports this through one code path, so a
/// result recorded on a 1-core container is never mistaken for a claim
/// about the design.
pub fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Write a machine-readable benchmark artifact as `BENCH_<name>.json`
/// into `ORPHEUS_BENCH_OUT` (default: the working directory), stamping
/// the detected core count into every artifact. Returns the path written.
pub fn write_bench_json(name: &str, json: JsonObject) -> Result<String> {
    let out_dir = std::env::var("ORPHEUS_BENCH_OUT").unwrap_or_else(|_| ".".to_string());
    let path = format!("{out_dir}/BENCH_{name}.json");
    let stamped = json.int("cores", detected_parallelism() as u64);
    std::fs::write(&path, format!("{}\n", stamped.render()))
        .map_err(|e| CoreError::Io(format!("cannot write {path}: {e}")))?;
    Ok(path)
}

/// Reader/writer overlap meter for MVCC storms.
///
/// Throughput ratios are noisy on shared 1-core containers, so the MVCC
/// benchmarks also count the thing the snapshot design actually promises:
/// **reads that completed while a commit was in flight on the instance**.
/// Writers wrap each commit in [`overlap::commit_guard`]; readers call
/// [`overlap::note_read`] after each completed read (or drive their
/// stream through [`drive_overlapped`], which does both). Any
/// `overlapped() > 0` is direct evidence that a read finished without
/// waiting for the writer — under a single lock per CVD that interleaving
/// is impossible for same-CVD traffic.
///
/// The counters are process-global (benchmark binaries run one experiment
/// at a time); call [`overlap::reset`] between arms.
pub mod overlap {
    use std::sync::atomic::{AtomicU64, Ordering};

    static COMMITS_IN_FLIGHT: AtomicU64 = AtomicU64::new(0);
    static READS_TOTAL: AtomicU64 = AtomicU64::new(0);
    static READS_OVERLAPPED: AtomicU64 = AtomicU64::new(0);

    /// Marks one commit as in flight until dropped.
    #[must_use = "the commit counts as in flight only while the guard lives"]
    pub struct CommitGuard(());

    impl Drop for CommitGuard {
        fn drop(&mut self) {
            COMMITS_IN_FLIGHT.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Enter a commit: reads completing before the returned guard drops
    /// count as overlapped.
    pub fn commit_guard() -> CommitGuard {
        COMMITS_IN_FLIGHT.fetch_add(1, Ordering::SeqCst);
        CommitGuard(())
    }

    /// Record one completed read, checking it against in-flight commits.
    pub fn note_read() {
        READS_TOTAL.fetch_add(1, Ordering::SeqCst);
        if COMMITS_IN_FLIGHT.load(Ordering::SeqCst) > 0 {
            READS_OVERLAPPED.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Reads recorded since the last [`reset`].
    pub fn reads() -> u64 {
        READS_TOTAL.load(Ordering::SeqCst)
    }

    /// Reads that completed while at least one commit was in flight.
    pub fn overlapped() -> u64 {
        READS_OVERLAPPED.load(Ordering::SeqCst)
    }

    /// Zero the read counters (in-flight commits are guard-owned and not
    /// touched).
    pub fn reset() {
        READS_TOTAL.store(0, Ordering::SeqCst);
        READS_OVERLAPPED.store(0, Ordering::SeqCst);
    }
}

/// Like [`drive`], but feeding the [`overlap`] meter: commits run inside
/// an [`overlap::commit_guard`], and pure reads — checkouts (MVCC parks
/// them without the shard lock), `log`, `diff`, and SELECT statements —
/// are recorded with [`overlap::note_read`] as they complete.
pub fn drive_overlapped<E: Executor>(
    executor: &mut E,
    requests: impl IntoIterator<Item = Request>,
) -> Result<BusStats> {
    let mut stats = BusStats::default();
    for request in requests {
        let is_read = match &request {
            Request::Checkout(_) | Request::CheckoutCsv(_) | Request::Log(_) | Request::Diff(_) => {
                true
            }
            Request::Run(r) => r
                .sql
                .trim_start()
                .to_ascii_lowercase()
                .starts_with("select"),
            _ => false,
        };
        let is_commit = matches!(&request, Request::Commit(_) | Request::CommitCsv(_));
        let kind = request.kind();
        let start = Instant::now();
        if is_commit {
            let _guard = overlap::commit_guard();
            executor.execute(request)?;
        } else {
            executor.execute(request)?;
            if is_read {
                overlap::note_read();
            }
        }
        stats.record(kind, start.elapsed().as_secs_f64() * 1e3);
    }
    Ok(stats)
}

/// Per-command timing of one bus-driven workload run.
#[derive(Debug, Default)]
pub struct BusStats {
    /// Total wall-clock of the whole stream, in milliseconds.
    pub total_ms: f64,
    /// (command, executions, total milliseconds), in first-seen order.
    pub per_command: Vec<(CommandKind, usize, f64)>,
}

impl BusStats {
    fn record(&mut self, kind: CommandKind, ms: f64) {
        match self.per_command.iter_mut().find(|(k, _, _)| *k == kind) {
            Some((_, count, total)) => {
                *count += 1;
                *total += ms;
            }
            None => self.per_command.push((kind, 1, ms)),
        }
        self.total_ms += ms;
    }

    /// Number of requests executed.
    pub fn requests(&self) -> usize {
        self.per_command.iter().map(|(_, n, _)| n).sum()
    }

    /// Render as an aligned [`Report`] (command, count, total ms, ms/op).
    pub fn report(&self) -> Report {
        let mut report = Report::new(&["command", "count", "total_ms", "ms_per_op"]);
        for &(kind, count, total) in &self.per_command {
            report.row(vec![
                kind.name().to_string(),
                count.to_string(),
                ms(total),
                ms(total / count as f64),
            ]);
        }
        report
    }
}

/// Execute a request stream on any executor, timing every command. Stops
/// at (and returns) the first error, so workloads fail loudly.
pub fn drive<E: Executor>(
    executor: &mut E,
    requests: impl IntoIterator<Item = Request>,
) -> Result<BusStats> {
    let mut stats = BusStats::default();
    for request in requests {
        let kind = request.kind();
        let start = Instant::now();
        executor.execute(request)?;
        stats.record(kind, start.elapsed().as_secs_f64() * 1e3);
    }
    Ok(stats)
}

/// Like [`drive`], but submitting the stream through [`Executor::batch`]
/// in chunks of `batch_size` requests (0 or anything larger than the
/// stream means one batch for the whole stream), so batching executors
/// get to coalesce lock acquisitions and version-row scans.
///
/// Timing is necessarily per *batch*; the per-command breakdown
/// attributes each batch's wall time evenly across its requests, so
/// treat `ms_per_op` as an amortized figure. Like [`drive`], the first
/// per-request error aborts the run and is returned, so workloads fail
/// loudly.
pub fn drive_batched<E: Executor>(
    executor: &mut E,
    requests: impl IntoIterator<Item = Request>,
    batch_size: usize,
) -> Result<BusStats> {
    let mut stats = BusStats::default();
    let mut iter = requests.into_iter();
    loop {
        let chunk: Vec<Request> = match batch_size {
            0 => iter.by_ref().collect(),
            n => iter.by_ref().take(n).collect(),
        };
        if chunk.is_empty() {
            return Ok(stats);
        }
        let kinds: Vec<CommandKind> = chunk.iter().map(Request::kind).collect();
        let start = Instant::now();
        let results = executor.batch(chunk);
        let per_request_ms = start.elapsed().as_secs_f64() * 1e3 / kinds.len() as f64;
        for (kind, result) in kinds.into_iter().zip(results) {
            result?;
            stats.record(kind, per_request_ms);
        }
    }
}

/// The bus workload behind the paper's checkout experiments: check each
/// sampled version out into a scratch table and discard it again.
pub fn checkout_storm(cvd: &str, versions: &[u64]) -> Vec<Request> {
    let mut requests = Vec::with_capacity(versions.len() * 2);
    for (i, &v) in versions.iter().enumerate() {
        let table = format!("__bus_co_{i}_{v}");
        requests.push(Checkout::of(cvd).version(v).into_table(&table).into());
        requests.push(Discard::table(table).into());
    }
    requests
}

/// Per-thread request stream for the contention benchmark: `ops` rounds of
/// checkout → commit against one CVD. Table names embed the thread id so
/// streams from different threads never collide, whichever executor runs
/// them.
pub fn contention_storm(cvd: &str, thread: usize, ops: usize) -> Vec<Request> {
    let mut requests = Vec::with_capacity(ops * 2);
    for i in 0..ops {
        let table = format!("__storm_t{thread}_{i}");
        requests.push(Checkout::of(cvd).version(1u64).into_table(&table).into());
        requests.push(
            Commit::table(&table)
                .message(format!("storm thread {thread} op {i}"))
                .into(),
        );
    }
    requests
}

/// Read-heavy variant of [`contention_storm`]: each round exports the
/// same version as CSV `cluster` times (distinct export paths, identical
/// version set — the profile of many clients pulling the current dataset,
/// which Section 6's workloads show dominating commits), then runs one
/// checkout → commit round exactly like [`contention_storm`]. The
/// repeated identical exports are the shared-scan opportunity a batching
/// or async executor can exploit *across* interleaved clients of one
/// CVD, which per-request sessions structurally cannot: the version
/// merge runs once per sub-batch instead of once per export.
/// `cluster == 0` degenerates to the plain `contention_storm` shape.
///
/// The exported CSVs stay registered in the staging area (a real client
/// would `commit -f` or abandon them later), so outcome comparisons
/// should expect `ops * cluster` staged CSV entries per thread rather
/// than zero.
pub fn clustered_storm(cvd: &str, thread: usize, ops: usize, cluster: usize) -> Vec<Request> {
    let mut requests = Vec::with_capacity(ops * (cluster + 2));
    for i in 0..ops {
        for j in 0..cluster {
            let path = format!("__storm_t{thread}_{i}_{j}.csv");
            requests.push(Checkout::of(cvd).version(1u64).into_csv(path).into());
        }
        let table = format!("__storm_t{thread}_{i}");
        requests.push(Checkout::of(cvd).version(1u64).into_table(&table).into());
        requests.push(
            Commit::table(&table)
                .message(format!("storm thread {thread} op {i}"))
                .into(),
        );
    }
    requests
}

/// The batching benchmark workload: per round, every CVD gets a *cluster*
/// of checkouts of version 1 (identical version sets, so a batching
/// executor can share one version-row scan), then a versioned count
/// query, one commit, and discards of the remaining scratch checkouts.
/// Rounds interleave CVDs, so batching also has to route sub-batches per
/// shard while keeping responses in submission order. The resulting
/// version graph (one identity commit per CVD per round, all parented at
/// v1) is deterministic, which is what lets the `batching` bench bin
/// compare graphs across batched and unbatched arms.
pub fn batch_storm(cvds: &[String], rounds: usize, cluster: usize) -> Vec<Request> {
    let cluster = cluster.max(1);
    let mut requests = Vec::with_capacity(rounds * cvds.len() * (cluster + 2));
    for round in 0..rounds {
        for (c, cvd) in cvds.iter().enumerate() {
            for j in 0..cluster {
                let table = format!("__batch_c{c}_r{round}_{j}");
                requests.push(Checkout::of(cvd).version(1u64).into_table(table).into());
            }
        }
        for (c, cvd) in cvds.iter().enumerate() {
            requests.push(Run::sql(format!("SELECT count(*) FROM VERSION 1 OF CVD {cvd}")).into());
            requests.push(
                Commit::table(format!("__batch_c{c}_r{round}_0"))
                    .message(format!("batch_storm round {round}"))
                    .into(),
            );
            for j in 1..cluster {
                requests.push(Discard::table(format!("__batch_c{c}_r{round}_{j}")).into());
            }
        }
    }
    requests
}

/// Outcome of one multi-threaded storm run.
#[derive(Debug)]
pub struct StormStats {
    /// Wall-clock of the whole run (all threads released together, timed
    /// until the last one finished), in milliseconds.
    pub wall_ms: f64,
    /// Requests executed across all threads.
    pub requests: usize,
    /// Hardware parallelism detected at run time
    /// ([`detected_parallelism`]) — recorded here so every artifact
    /// derived from a storm run carries the conditions it ran under.
    pub cores: usize,
    /// Per-thread command timing.
    pub per_thread: Vec<BusStats>,
}

impl StormStats {
    /// Aggregate throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ms / 1e3)
    }
}

/// Drive one request stream per thread, all released simultaneously, and
/// time the aggregate. `make_executor(i)` builds thread `i`'s executor
/// before the start barrier, so setup cost stays out of the measurement.
/// The same streams can be run against different executors (per-CVD
/// sessions vs the [`GlobalLockSession`] baseline vs async handles) for
/// an apples-to-apples comparison.
pub fn drive_parallel<E, F>(make_executor: F, streams: Vec<Vec<Request>>) -> Result<StormStats>
where
    E: Executor + Send,
    F: Fn(usize) -> E + Send + Sync,
{
    drive_parallel_with(make_executor, streams, |executor, stream| {
        drive(executor, stream)
    })
}

/// [`drive_parallel`] with every thread driving through
/// [`drive_overlapped`] — the storm variant that feeds the [`overlap`]
/// meter. Callers own the meter's lifecycle: [`overlap::reset`] before
/// the run, read the counters after.
pub fn drive_parallel_overlapped<E, F>(
    make_executor: F,
    streams: Vec<Vec<Request>>,
) -> Result<StormStats>
where
    E: Executor + Send,
    F: Fn(usize) -> E + Send + Sync,
{
    drive_parallel_with(make_executor, streams, |executor, stream| {
        drive_overlapped(executor, stream)
    })
}

/// Like [`drive_parallel`], but each thread submits its whole stream as
/// one [`Executor::batch`] call (pipelined submission). On an async
/// handle this is the fire-then-wait pattern: every request is enqueued
/// before the first response is awaited.
pub fn drive_parallel_batched<E, F>(
    make_executor: F,
    streams: Vec<Vec<Request>>,
) -> Result<StormStats>
where
    E: Executor + Send,
    F: Fn(usize) -> E + Send + Sync,
{
    drive_parallel_with(make_executor, streams, |executor, stream| {
        drive_batched(executor, stream, 0)
    })
}

/// The engine behind [`drive_parallel`] / [`drive_parallel_batched`]:
/// per-thread executors built before a shared start barrier, one `run`
/// call per thread, aggregate wall time from barrier release to last
/// completion, cores recorded via [`detected_parallelism`] (the single
/// stamping path every `BENCH_*.json` emitter shares — see
/// [`storm_json`]).
fn drive_parallel_with<E, F, R>(
    make_executor: F,
    streams: Vec<Vec<Request>>,
    run: R,
) -> Result<StormStats>
where
    E: Executor + Send,
    F: Fn(usize) -> E + Send + Sync,
    R: Fn(&mut E, Vec<Request>) -> Result<BusStats> + Send + Sync,
{
    // Two barriers: `ready` proves every thread finished its (untimed)
    // executor setup; `go` releases the work. The clock starts between
    // them — after setup, before any thread can run a request — so setup
    // stays out of the measurement AND no thread gets a head start before
    // the stamp (on a loaded single-core host, stamping after a single
    // barrier's `wait` returned on the main thread would let workers run
    // whole scheduler slices first, undercounting every arm by a
    // different amount).
    let ready = Barrier::new(streams.len() + 1);
    let go = Barrier::new(streams.len() + 1);
    let mut per_thread = Vec::with_capacity(streams.len());
    let mut wall_ms = 0.0;
    std::thread::scope(|scope| -> Result<()> {
        let handles: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(i, stream)| {
                let ready = &ready;
                let go = &go;
                let make_executor = &make_executor;
                let run = &run;
                scope.spawn(move || -> Result<BusStats> {
                    let mut executor = make_executor(i);
                    ready.wait();
                    go.wait();
                    run(&mut executor, stream)
                })
            })
            .collect();
        ready.wait();
        let start = Instant::now();
        go.wait();
        for handle in handles {
            per_thread.push(handle.join().expect("storm thread panicked")?);
        }
        wall_ms = start.elapsed().as_secs_f64() * 1e3;
        Ok(())
    })?;
    let requests = per_thread.iter().map(BusStats::requests).sum();
    Ok(StormStats {
        wall_ms,
        requests,
        cores: detected_parallelism(),
        per_thread,
    })
}

/// Render one storm arm for a `BENCH_*.json` artifact, carrying the core
/// count *the run recorded* ([`StormStats::cores`]) rather than
/// re-detecting at write time. Every storm-based emitter goes through
/// this — including the [`GlobalLockSession`] baseline arms, which used
/// to be stamped only by [`write_bench_json`]'s top-level detection — so
/// an arm measured under one condition can never be stamped with
/// another.
pub fn storm_json(stats: &StormStats) -> JsonObject {
    JsonObject::new()
        .num("wall_ms", stats.wall_ms)
        .int("requests", stats.requests as u64)
        .num("req_per_s", stats.throughput_rps())
        .int("cores", stats.cores as u64)
}

/// The pre-per-CVD-locking baseline: the whole instance behind one mutex,
/// identity swapped per request — exactly what `SharedOrpheusDB` did
/// before the catalog/per-CVD split. Kept as the control arm of
/// [`contention_storm`] so the parallel executor is measured against the
/// single-lock design on identical request streams. Its storm runs are
/// emitted through [`storm_json`] like every other arm's, so the baseline
/// carries the same recorded core count as the treatment arms instead of
/// a separately-detected one.
#[derive(Debug, Clone)]
pub struct GlobalLockSession {
    db: Arc<Mutex<OrpheusDB>>,
    user: String,
}

impl GlobalLockSession {
    pub fn new(db: Arc<Mutex<OrpheusDB>>, user: impl Into<String>) -> GlobalLockSession {
        GlobalLockSession {
            db,
            user: user.into(),
        }
    }
}

impl Executor for GlobalLockSession {
    fn execute(&mut self, request: Request) -> Result<Response> {
        let mut odb = self.db.lock().unwrap_or_else(|e| e.into_inner());
        odb.access.ensure_user(&self.user)?;
        let prior = odb.access.whoami().to_string();
        odb.access.login(&self.user)?;
        let result = odb.execute(request);
        let _ = odb.access.login(&prior);
        result
    }
}

/// Minimal JSON object builder for the machine-readable `BENCH_*.json`
/// artifacts (the offline build has no serde).
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    pub fn int(mut self, key: &str, value: u64) -> JsonObject {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    pub fn num(mut self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() {
            format!("{value:.3}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    pub fn obj(mut self, key: &str, value: JsonObject) -> JsonObject {
        self.fields.push((key.to_string(), value.render()));
        self
    }

    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Simple aligned-column table printer for experiment output.
#[derive(Debug, Default)]
pub struct Report {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(headers: &[&str]) -> Report {
        Report {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a byte count as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Format milliseconds with three decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_protocol_drops_extremes() {
        let mut calls = 0;
        let t = time_op(5, || {
            calls += 1;
        });
        assert_eq!(calls, 5);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, t) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn report_renders_aligned_and_csv() {
        let mut r = Report::new(&["dataset", "time"]);
        r.row(vec!["SCI_40K".into(), "1.5".into()]);
        r.row(vec!["CUR_400K".into(), "12.25".into()]);
        let text = r.render();
        assert!(text.contains("dataset"));
        assert!(text.lines().count() >= 4);
        let csv = r.to_csv();
        assert!(csv.starts_with("dataset,time\n"));
        assert!(csv.contains("SCI_40K,1.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new(&["a", "b"]);
        r.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(ms(1.23456), "1.235");
    }

    #[test]
    fn bus_driver_times_per_command() {
        use crate::generator::{Workload, WorkloadParams};
        use crate::loader::load_workload;
        use orpheus_core::{ModelKind, OrpheusDB, SharedOrpheusDB};

        let w = Workload::generate(WorkloadParams::sci(12, 3, 20));
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &w, ModelKind::SplitByRlist).unwrap();

        // Direct executor.
        let stats = drive(&mut odb, checkout_storm("bench", &[1, 6, 12])).unwrap();
        assert_eq!(stats.requests(), 6);
        assert_eq!(stats.per_command.len(), 2);
        let (kind, count, total) = stats.per_command[0];
        assert_eq!(kind, CommandKind::Checkout);
        assert_eq!(count, 3);
        assert!(total >= 0.0);
        let rendered = stats.report().render();
        assert!(
            rendered.contains("checkout") && rendered.contains("discard"),
            "{rendered}"
        );

        // The same stream drives a session over a shared instance.
        let shared = SharedOrpheusDB::new(odb);
        let mut session = shared.session("bench_user").unwrap();
        let stats = drive(&mut session, checkout_storm("bench", &[3, 9])).unwrap();
        assert_eq!(stats.requests(), 4);

        // Errors surface instead of being swallowed.
        assert!(drive(&mut session, checkout_storm("nope", &[1])).is_err());
    }

    #[test]
    fn contention_storm_streams_are_disjoint_checkout_commit_pairs() {
        let a = contention_storm("cvd0", 0, 3);
        let b = contention_storm("cvd1", 1, 3);
        assert_eq!(a.len(), 6);
        for (i, req) in a.iter().enumerate() {
            let kind = req.kind();
            if i % 2 == 0 {
                assert_eq!(kind, CommandKind::Checkout);
            } else {
                assert_eq!(kind, CommandKind::Commit);
            }
        }
        // No table name appears in both threads' streams.
        let names = |reqs: &[Request]| -> Vec<String> {
            reqs.iter()
                .filter_map(|r| match r {
                    Request::Checkout(c) => Some(c.table.clone()),
                    _ => None,
                })
                .collect()
        };
        for n in names(&a) {
            assert!(!names(&b).contains(&n), "{n} collides");
        }
    }

    /// The parallel per-CVD executor and the single-lock baseline produce
    /// identical version graphs from the same streams — the equivalence
    /// that makes the throughput comparison meaningful.
    #[test]
    fn storm_outcomes_agree_between_baseline_and_per_cvd_sessions() {
        use crate::generator::{Workload, WorkloadParams};
        use crate::loader::load_workload;
        use orpheus_core::{ModelKind, SharedOrpheusDB};

        let w = Workload::generate(WorkloadParams::sci(4, 2, 10));
        let build = || {
            let mut odb = OrpheusDB::new();
            for c in 0..2 {
                load_workload(&mut odb, &format!("cvd{c}"), &w, ModelKind::SplitByRlist).unwrap();
            }
            odb
        };
        let streams = || -> Vec<Vec<Request>> {
            (0..2)
                .map(|t| contention_storm(&format!("cvd{t}"), t, 2))
                .collect()
        };

        let baseline_db = Arc::new(Mutex::new(build()));
        let base = drive_parallel(
            |t| GlobalLockSession::new(Arc::clone(&baseline_db), format!("user{t}")),
            streams(),
        )
        .unwrap();
        assert_eq!(base.requests, 8);
        assert!(base.wall_ms >= 0.0);
        assert!(base.throughput_rps() > 0.0);

        let shared = SharedOrpheusDB::new(build());
        let storm =
            drive_parallel(|t| shared.session(&format!("user{t}")).unwrap(), streams()).unwrap();
        assert_eq!(storm.requests, 8);

        // Same number of versions per CVD, no staged leftovers, either way.
        let baseline_db = baseline_db.lock().unwrap_or_else(|e| e.into_inner());
        for c in 0..2 {
            let name = format!("cvd{c}");
            let base_versions = baseline_db.cvd(&name).unwrap().num_versions();
            let storm_versions = shared.read(|odb| odb.cvd(&name).unwrap().num_versions());
            assert_eq!(base_versions, storm_versions, "{name}");
        }
        assert!(baseline_db.staged().is_empty());
        shared.read(|odb| assert!(odb.staged().is_empty()));
    }

    #[test]
    fn batched_driver_produces_the_same_graphs_as_unbatched() {
        use crate::generator::{Workload, WorkloadParams};
        use crate::loader::load_workload;
        use orpheus_core::{ModelKind, SharedOrpheusDB};

        let w = Workload::generate(WorkloadParams::sci(4, 2, 10));
        let build = || {
            let mut odb = OrpheusDB::new();
            for c in 0..2 {
                load_workload(&mut odb, &format!("cvd{c}"), &w, ModelKind::SplitByRlist).unwrap();
            }
            odb
        };
        let names = vec!["cvd0".to_string(), "cvd1".to_string()];
        let stream = batch_storm(&names, 2, 3);

        let mut sequential = build();
        let unbatched = drive(&mut sequential, stream.clone()).unwrap();

        let mut whole_stream = build();
        let batched = drive_batched(&mut whole_stream, stream.clone(), 0).unwrap();
        assert_eq!(batched.requests(), unbatched.requests());

        // A session executor, driven in small chunks.
        let shared = SharedOrpheusDB::new(build());
        let mut session = shared.session("u").unwrap();
        let chunked = drive_batched(&mut session, stream, 7).unwrap();
        assert_eq!(chunked.requests(), unbatched.requests());

        // All three executions commit the same version graphs and leave
        // nothing staged.
        for name in &names {
            let want = sequential.cvd(name).unwrap().num_versions();
            assert_eq!(whole_stream.cvd(name).unwrap().num_versions(), want);
            assert_eq!(
                shared.read(|odb| odb.cvd(name).unwrap().num_versions()),
                want
            );
        }
        assert!(sequential.staged().is_empty());
        assert!(whole_stream.staged().is_empty());
        shared.read(|odb| assert!(odb.staged().is_empty()));

        // Errors propagate out of a batch exactly like out of `drive`.
        assert!(drive_batched(&mut session, checkout_storm("nope", &[1]), 0).is_err());
    }

    /// One test owns the process-global overlap counters (tests run in
    /// parallel, so splitting this would race the counters).
    #[test]
    fn overlap_meter_counts_reads_under_in_flight_commits() {
        overlap::reset();
        overlap::note_read();
        assert_eq!(overlap::reads(), 1);
        assert_eq!(overlap::overlapped(), 0);
        {
            let _in_flight = overlap::commit_guard();
            overlap::note_read();
        }
        overlap::note_read();
        assert_eq!(overlap::reads(), 3);
        assert_eq!(overlap::overlapped(), 1);

        // drive_overlapped feeds the same counters: 2 checkouts and no
        // in-flight commit (the commit guard wraps only the commit's own
        // execution, during which no read completes on this thread).
        use crate::generator::{Workload, WorkloadParams};
        use crate::loader::load_workload;
        use orpheus_core::ModelKind;
        overlap::reset();
        let w = Workload::generate(WorkloadParams::sci(4, 2, 10));
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "ovl", &w, ModelKind::SplitByRlist).unwrap();
        let stats = drive_overlapped(&mut odb, contention_storm("ovl", 0, 2)).unwrap();
        assert_eq!(stats.requests(), 4);
        assert_eq!(overlap::reads(), 2);
        assert_eq!(overlap::overlapped(), 0);
    }

    #[test]
    fn protocol_mean_drops_extremes() {
        assert_eq!(protocol_mean(vec![5.0]), 5.0);
        assert_eq!(protocol_mean(vec![1.0, 3.0]), 2.0);
        // 100 and 0 are dropped, the rest average to 2.
        assert_eq!(protocol_mean(vec![100.0, 2.0, 0.0, 2.0]), 2.0);
    }

    #[test]
    fn json_objects_render_valid_json() {
        let json = JsonObject::new()
            .str("bench", "contention_storm")
            .int("threads", 4)
            .num("speedup", 2.5)
            .obj(
                "nested",
                JsonObject::new().str("k", "quo\"te").num("nan", f64::NAN),
            )
            .render();
        assert_eq!(
            json,
            "{\"bench\": \"contention_storm\", \"threads\": 4, \"speedup\": 2.500, \
             \"nested\": {\"k\": \"quo\\\"te\", \"nan\": null}}"
        );
    }
}
