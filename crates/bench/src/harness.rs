//! Experiment harness: the paper's timing protocol, table rendering, and
//! the bus-level workload driver.
//!
//! Section 5.1: "Each experiment was repeated 5 times ... we discarded the
//! largest and smallest number among the five trials, and then took the
//! average of the remaining three." [`time_op`] implements exactly that
//! protocol (with a configurable trial count for quick runs).
//!
//! Command-level workloads run through the typed request bus via
//! [`drive`]: a stream of [`Request`]s is executed on any
//! [`Executor`] (an `OrpheusDB` or a `Session`) with per-command timing,
//! so future executors that batch or dispatch asynchronously can be
//! measured against the sequential baseline without changing the workload
//! definition.

use std::time::Instant;

use orpheus_core::request::{CommandKind, Executor, Request};
use orpheus_core::{Checkout, Discard, Result};

/// Run `op` `trials` times, drop the fastest and slowest trial (when there
/// are at least three), and return the mean of the rest in milliseconds.
pub fn time_op<F: FnMut()>(trials: usize, mut op: F) -> f64 {
    let trials = trials.max(1);
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let start = Instant::now();
        op();
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let kept: &[f64] = if samples.len() >= 3 {
        &samples[1..samples.len() - 1]
    } else {
        &samples
    };
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Time a single run (for expensive operations where repetition is
/// impractical, e.g. full dataset loads).
pub fn time_once<T, F: FnOnce() -> T>(op: F) -> (T, f64) {
    let start = Instant::now();
    let out = op();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Number of timing trials (default 3; `ORPHEUS_TRIALS` overrides — the
/// paper uses 5).
pub fn trials() -> usize {
    std::env::var("ORPHEUS_TRIALS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(3)
}

/// Per-command timing of one bus-driven workload run.
#[derive(Debug, Default)]
pub struct BusStats {
    /// Total wall-clock of the whole stream, in milliseconds.
    pub total_ms: f64,
    /// (command, executions, total milliseconds), in first-seen order.
    pub per_command: Vec<(CommandKind, usize, f64)>,
}

impl BusStats {
    fn record(&mut self, kind: CommandKind, ms: f64) {
        match self.per_command.iter_mut().find(|(k, _, _)| *k == kind) {
            Some((_, count, total)) => {
                *count += 1;
                *total += ms;
            }
            None => self.per_command.push((kind, 1, ms)),
        }
        self.total_ms += ms;
    }

    /// Number of requests executed.
    pub fn requests(&self) -> usize {
        self.per_command.iter().map(|(_, n, _)| n).sum()
    }

    /// Render as an aligned [`Report`] (command, count, total ms, ms/op).
    pub fn report(&self) -> Report {
        let mut report = Report::new(&["command", "count", "total_ms", "ms_per_op"]);
        for &(kind, count, total) in &self.per_command {
            report.row(vec![
                kind.name().to_string(),
                count.to_string(),
                ms(total),
                ms(total / count as f64),
            ]);
        }
        report
    }
}

/// Execute a request stream on any executor, timing every command. Stops
/// at (and returns) the first error, so workloads fail loudly.
pub fn drive<E: Executor>(
    executor: &mut E,
    requests: impl IntoIterator<Item = Request>,
) -> Result<BusStats> {
    let mut stats = BusStats::default();
    for request in requests {
        let kind = request.kind();
        let start = Instant::now();
        executor.execute(request)?;
        stats.record(kind, start.elapsed().as_secs_f64() * 1e3);
    }
    Ok(stats)
}

/// The bus workload behind the paper's checkout experiments: check each
/// sampled version out into a scratch table and discard it again.
pub fn checkout_storm(cvd: &str, versions: &[u64]) -> Vec<Request> {
    let mut requests = Vec::with_capacity(versions.len() * 2);
    for (i, &v) in versions.iter().enumerate() {
        let table = format!("__bus_co_{i}_{v}");
        requests.push(Checkout::of(cvd).version(v).into_table(&table).into());
        requests.push(Discard::table(table).into());
    }
    requests
}

/// Simple aligned-column table printer for experiment output.
#[derive(Debug, Default)]
pub struct Report {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(headers: &[&str]) -> Report {
        Report {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a byte count as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Format milliseconds with three decimals.
pub fn ms(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_protocol_drops_extremes() {
        let mut calls = 0;
        let t = time_op(5, || {
            calls += 1;
        });
        assert_eq!(calls, 5);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, t) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn report_renders_aligned_and_csv() {
        let mut r = Report::new(&["dataset", "time"]);
        r.row(vec!["SCI_40K".into(), "1.5".into()]);
        r.row(vec!["CUR_400K".into(), "12.25".into()]);
        let text = r.render();
        assert!(text.contains("dataset"));
        assert!(text.lines().count() >= 4);
        let csv = r.to_csv();
        assert!(csv.starts_with("dataset,time\n"));
        assert!(csv.contains("SCI_40K,1.5"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new(&["a", "b"]);
        r.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(ms(1.23456), "1.235");
    }

    #[test]
    fn bus_driver_times_per_command() {
        use crate::generator::{Workload, WorkloadParams};
        use crate::loader::load_workload;
        use orpheus_core::{ModelKind, OrpheusDB, SharedOrpheusDB};

        let w = Workload::generate(WorkloadParams::sci(12, 3, 20));
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &w, ModelKind::SplitByRlist).unwrap();

        // Direct executor.
        let stats = drive(&mut odb, checkout_storm("bench", &[1, 6, 12])).unwrap();
        assert_eq!(stats.requests(), 6);
        assert_eq!(stats.per_command.len(), 2);
        let (kind, count, total) = stats.per_command[0];
        assert_eq!(kind, CommandKind::Checkout);
        assert_eq!(count, 3);
        assert!(total >= 0.0);
        let rendered = stats.report().render();
        assert!(
            rendered.contains("checkout") && rendered.contains("discard"),
            "{rendered}"
        );

        // The same stream drives a session over a shared instance.
        let shared = SharedOrpheusDB::new(odb);
        let mut session = shared.session("bench_user").unwrap();
        let stats = drive(&mut session, checkout_storm("bench", &[3, 9])).unwrap();
        assert_eq!(stats.requests(), 4);

        // Errors surface instead of being swallowed.
        assert!(drive(&mut session, checkout_storm("nope", &[1])).is_err());
    }
}
