//! The differential oracle harness: replay one generated history
//! (`crate::generator::HistoryGen`) through every executor the system
//! ships — in-process [`OrpheusDB`], a
//! [`ConcurrentExecutor`](orpheus_core::ConcurrentExecutor) over
//! [`SharedOrpheusDB`], a pipelined [`AsyncExecutor`] handle, a
//! [`RemoteExecutor`] talking to a live [`NetServer`], and a WAL-backed
//! instance that is dropped and reopened via [`recovery::open_shared`] —
//! and gate each arm on agreement with the naive reference model
//! (`crate::oracle::Oracle`):
//!
//! * **graph equality** — every version's parents and record count, from
//!   `Log`;
//! * **rlist equality** and **row-for-row checkout equality** — at sampled
//!   versions, checkout → `SELECT *` → compare rids and values against
//!   `payload(rid, col)`, normalizing the trailing NULLs that models
//!   produce for records born before a schema evolution.
//!
//! Every failure message carries the generator seed and a one-command
//! reproduction line, so a divergence found at any tier is immediately
//! re-runnable. The replay itself is model-faithful: each commit checks
//! out the parent version(s), probes the staged table's width (models
//! disagree about whether old versions check out narrow or NULL-padded),
//! widens it with `ALTER TABLE … ADD COLUMN` to the current schema,
//! applies deletes and inserts through SQL, and commits through the
//! command bus — the engine allocates every rid itself, and must agree
//! with the oracle's allocator rid-for-rid.

use std::time::Instant;

use orpheus_core::{
    recovery, AsyncExecutor, Checkout, Commit, Discard, Executor, Init, Log, ModelKind, OrpheusDB,
    Request, Response, Run, SharedOrpheusDB, Vid,
};
use orpheus_engine::Value;
use orpheus_net::{NetServer, RemoteExecutor};

use crate::experiments::sample_versions;
use crate::generator::{HistoryEvent, HistoryGen, HistoryParams};
use crate::harness::percentile;
use crate::loader::bench_schema;
use crate::oracle::Oracle;

/// CVD name used by every arm.
const CVD: &str = "diff";
/// Staged-table name for replayed commits.
const WORK: &str = "diffwork";
/// Staged-table name for verification checkouts.
const VERIFY: &str = "diffverify";
/// Rows per multi-row INSERT statement.
const INSERT_CHUNK: usize = 256;
/// Rids per DELETE … IN (…) statement.
const DELETE_CHUNK: usize = 512;

/// One executor arm of the differential harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// `OrpheusDB` driven directly through the command bus.
    InProcess,
    /// `ConcurrentExecutor` over `SharedOrpheusDB`.
    Concurrent,
    /// `AsyncExecutor` handle, one pipelined batch per commit.
    Async,
    /// `RemoteExecutor` against a live TCP `NetServer`.
    Remote,
    /// WAL-backed instance, dropped and reopened before verification.
    WalReopen,
}

impl Arm {
    pub const ALL: [Arm; 5] = [
        Arm::InProcess,
        Arm::Concurrent,
        Arm::Async,
        Arm::Remote,
        Arm::WalReopen,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Arm::InProcess => "inproc",
            Arm::Concurrent => "concurrent",
            Arm::Async => "async",
            Arm::Remote => "remote",
            Arm::WalReopen => "wal_reopen",
        }
    }

    /// Parse a comma-separated arm list (the `ORPHEUS_DIFF_ARMS` knob);
    /// unknown names are an error so CI typos cannot silently skip arms.
    pub fn parse_list(s: &str) -> Result<Vec<Arm>, String> {
        let mut arms = Vec::new();
        for name in s.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            let arm = Arm::ALL
                .into_iter()
                .find(|a| a.name() == name)
                .ok_or_else(|| format!("unknown differential arm {name:?}"))?;
            if !arms.contains(&arm) {
                arms.push(arm);
            }
        }
        if arms.is_empty() {
            return Err("empty differential arm list".into());
        }
        Ok(arms)
    }
}

/// Configuration of one differential run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    pub params: HistoryParams,
    pub model: ModelKind,
    pub arms: Vec<Arm>,
    /// Versions at which checkouts are verified row-for-row (sampled
    /// evenly; the graph is verified at *every* version regardless).
    pub checkout_samples: usize,
    /// Tier label for reproduction messages ("smoke", "ci", "paper").
    pub label: String,
}

/// Timing of one arm's replay (the verification pass is not timed).
#[derive(Debug, Clone)]
pub struct ArmStats {
    pub arm: &'static str,
    /// Requests executed during replay.
    pub requests: usize,
    pub elapsed_s: f64,
    pub req_per_s: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// History shape, for the report.
    pub versions: usize,
    pub records: usize,
}

/// Replay context: everything a failure message needs to be reproducible.
/// Fields are private; tests build one with [`Ctx::for_test`].
pub struct Ctx {
    arm: &'static str,
    model: ModelKind,
    seed: u64,
    label: String,
}

impl Ctx {
    /// Build a context for standalone use (integration and mutation
    /// tests).
    pub fn for_test(arm: &'static str, model: ModelKind, seed: u64) -> Ctx {
        Ctx {
            arm,
            model,
            seed,
            label: "test".into(),
        }
    }

    fn fail(&self, msg: impl std::fmt::Display) -> String {
        format!(
            "[differential:{arm} model={model:?} seed={seed}] {msg}\n  reproduce: \
             ORPHEUS_SCALE={label} ORPHEUS_EXPERIMENTS=differential ORPHEUS_TRIALS=1 \
             cargo run --release -p orpheus-bench --bin all_experiments",
            arm = self.arm,
            model = self.model,
            seed = self.seed,
            label = self.label,
        )
    }
}

/// Run the configured arms; returns per-arm timings, or the first
/// divergence as a seed-bearing error string.
pub fn run_differential(cfg: &DiffConfig) -> Result<Vec<ArmStats>, String> {
    let oracle = Oracle::replay(HistoryGen::new(cfg.params.clone()));
    let samples = sample_versions(oracle.num_versions(), cfg.checkout_samples);
    eprintln!(
        "[differential] oracle ready: {} versions, {} records; arms: {}",
        oracle.num_versions(),
        oracle.num_records(),
        cfg.arms
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
            .join(",")
    );
    let mut stats = Vec::new();
    for &arm in &cfg.arms {
        let ctx = Ctx {
            arm: arm.name(),
            model: cfg.model,
            seed: cfg.params.seed,
            label: cfg.label.clone(),
        };
        // Progress on stderr: the paper tier runs for many minutes per
        // arm with nothing on stdout until every arm has finished.
        eprintln!("[differential] {}: replaying...", arm.name());
        let timing = run_arm(arm, cfg, &oracle, &samples, &ctx)?;
        eprintln!(
            "[differential] {}: ok in {:.1}s ({} requests)",
            arm.name(),
            timing.elapsed_s,
            timing.requests
        );
        stats.push(timing);
    }
    Ok(stats)
}

fn run_arm(
    arm: Arm,
    cfg: &DiffConfig,
    oracle: &Oracle,
    samples: &[u64],
    ctx: &Ctx,
) -> Result<ArmStats, String> {
    let gen = HistoryGen::new(cfg.params.clone());
    let (lat, elapsed) = match arm {
        Arm::InProcess => {
            let mut odb = OrpheusDB::new();
            let r = replay(&mut odb, gen, cfg.model, false, ctx)?;
            verify_against(&mut odb, oracle, samples, ctx)?;
            r
        }
        Arm::Concurrent => {
            let shared = SharedOrpheusDB::new(OrpheusDB::new());
            let mut exec = shared
                .executor("diff_user")
                .map_err(|e| ctx.fail(format_args!("open executor: {e}")))?;
            let r = replay(&mut exec, gen, cfg.model, false, ctx)?;
            verify_against(&mut exec, oracle, samples, ctx)?;
            r
        }
        Arm::Async => {
            let shared = SharedOrpheusDB::new(OrpheusDB::new());
            let pool = AsyncExecutor::new(shared);
            let mut handle = pool
                .handle("diff_user")
                .map_err(|e| ctx.fail(format_args!("open async handle: {e}")))?;
            let r = replay(&mut handle, gen, cfg.model, true, ctx)?;
            verify_against(&mut handle, oracle, samples, ctx)?;
            r
        }
        Arm::Remote => {
            let shared = SharedOrpheusDB::new(OrpheusDB::new());
            let server = NetServer::bind("127.0.0.1:0", shared)
                .map_err(|e| ctx.fail(format_args!("bind server: {e}")))?;
            let addr = server.local_addr();
            let mut exec = RemoteExecutor::connect(addr, "diff_user")
                .map_err(|e| ctx.fail(format_args!("connect: {e}")))?;
            let r = replay(&mut exec, gen, cfg.model, false, ctx)?;
            verify_against(&mut exec, oracle, samples, ctx)?;
            drop(exec);
            server.shutdown();
            r
        }
        Arm::WalReopen => {
            let dir = std::env::temp_dir().join(format!(
                "orpheus-diff-{}-{}",
                std::process::id(),
                ctx.label
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let r = {
                let shared = recovery::open_shared(&dir)
                    .map_err(|e| ctx.fail(format_args!("open WAL dir: {e}")))?;
                let mut exec = shared
                    .executor("diff_user")
                    .map_err(|e| ctx.fail(format_args!("open executor: {e}")))?;
                replay(&mut exec, gen, cfg.model, false, ctx)?
                // shared (and its WAL) drop here; durability is the point.
            };
            let reopened = recovery::open_shared(&dir)
                .map_err(|e| ctx.fail(format_args!("reopen WAL dir: {e}")))?;
            let mut exec = reopened
                .executor("diff_user")
                .map_err(|e| ctx.fail(format_args!("reopen executor: {e}")))?;
            verify_against(&mut exec, oracle, samples, ctx)?;
            drop(exec);
            drop(reopened);
            let _ = std::fs::remove_dir_all(&dir);
            r
        }
    };
    let mut lat_us: Vec<f64> = lat;
    let p50 = percentile(&mut lat_us, 50.0);
    let p99 = percentile(&mut lat_us, 99.0);
    Ok(ArmStats {
        arm: arm.name(),
        requests: lat_us.len(),
        elapsed_s: elapsed,
        req_per_s: if elapsed > 0.0 {
            lat_us.len() as f64 / elapsed
        } else {
            0.0
        },
        p50_us: p50,
        p99_us: p99,
        versions: oracle.num_versions(),
        records: oracle.num_records(),
    })
}

/// Replay a history through one executor. Returns per-request latencies
/// (µs; pipelined batches report the amortized per-request time) and the
/// replay wall-clock in seconds.
///
/// Public so tests can replay honestly and then verify against a
/// deliberately corrupted oracle.
pub fn replay<E: Executor>(
    exec: &mut E,
    gen: HistoryGen,
    model: ModelKind,
    pipeline: bool,
    ctx: &Ctx,
) -> Result<(Vec<f64>, f64), String> {
    let mut lat = Vec::new();
    let start = Instant::now();
    for event in gen {
        match event {
            HistoryEvent::Init(init) => {
                let rows: Vec<Vec<Value>> = init
                    .rows
                    .iter()
                    .map(|(_, vals)| vals.iter().copied().map(Value::Int).collect())
                    .collect();
                let req = Init::cvd(CVD)
                    .schema(bench_schema(init.attrs))
                    .rows(rows)
                    .model(model);
                let resp = timed(exec, req.into(), &mut lat)
                    .map_err(|e| ctx.fail(format_args!("init: {e}")))?;
                if !matches!(resp, Response::Initialized { .. }) {
                    return Err(ctx.fail(format_args!("init: unexpected response {resp:?}")));
                }
            }
            HistoryEvent::Commit(commit) => {
                // Checkout the parent version(s), then probe the staged
                // width — models legitimately disagree about whether an
                // old version checks out narrow or NULL-padded.
                let checkout = Checkout::of(CVD)
                    .versions(commit.parents.iter().map(|&p| Vid(p)))
                    .into_table(WORK);
                timed(exec, checkout.into(), &mut lat)
                    .map_err(|e| ctx.fail(format_args!("v{}: checkout: {e}", commit.vid)))?;
                let probe = timed(
                    exec,
                    Run::sql(format!("SELECT * FROM {WORK} WHERE rid = 0")).into(),
                    &mut lat,
                )
                .map_err(|e| ctx.fail(format_args!("v{}: probe: {e}", commit.vid)))?;
                let staged_attrs = match probe.rows() {
                    Some(q) => q.schema.columns.len().saturating_sub(1),
                    None => {
                        return Err(
                            ctx.fail(format_args!("v{}: probe returned no schema", commit.vid))
                        )
                    }
                };

                // The commit body: widen, delete, insert, commit — one
                // pipelined batch on the async arm, individual requests
                // elsewhere.
                let mut body: Vec<Request> = Vec::new();
                for c in staged_attrs..commit.width {
                    body.push(Run::sql(format!("ALTER TABLE {WORK} ADD COLUMN a{c} INT")).into());
                }
                for chunk in commit.deletes.chunks(DELETE_CHUNK) {
                    let list = chunk
                        .iter()
                        .map(i64::to_string)
                        .collect::<Vec<_>>()
                        .join(", ");
                    body.push(Run::sql(format!("DELETE FROM {WORK} WHERE rid IN ({list})")).into());
                }
                for chunk in commit.inserts.chunks(INSERT_CHUNK) {
                    let rows = chunk
                        .iter()
                        .map(|(_, vals)| {
                            let mut row = String::from("(NULL");
                            for v in vals {
                                row.push_str(", ");
                                row.push_str(&v.to_string());
                            }
                            row.push(')');
                            row
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    body.push(Run::sql(format!("INSERT INTO {WORK} VALUES {rows}")).into());
                }
                body.push(
                    Commit::table(WORK)
                        .message(format!("v{}", commit.vid))
                        .into(),
                );

                let last = if pipeline {
                    let n = body.len();
                    let t = Instant::now();
                    let results = exec.batch(body);
                    let each = t.elapsed().as_secs_f64() * 1e6 / n.max(1) as f64;
                    lat.extend(std::iter::repeat_n(each, n));
                    let mut final_resp = None;
                    for r in results {
                        final_resp = Some(r.map_err(|e| {
                            ctx.fail(format_args!("v{}: batched commit body: {e}", commit.vid))
                        })?);
                    }
                    final_resp
                } else {
                    let mut final_resp = None;
                    for req in body {
                        final_resp = Some(timed(exec, req, &mut lat).map_err(|e| {
                            ctx.fail(format_args!("v{}: commit body: {e}", commit.vid))
                        })?);
                    }
                    final_resp
                };
                match last {
                    Some(Response::Committed { version, .. }) if version.0 == commit.vid => {}
                    other => {
                        return Err(ctx.fail(format_args!(
                            "v{}: expected Committed version {}, got {other:?}",
                            commit.vid, commit.vid
                        )))
                    }
                }
            }
        }
    }
    Ok((lat, start.elapsed().as_secs_f64()))
}

fn timed<E: Executor>(
    exec: &mut E,
    req: Request,
    lat: &mut Vec<f64>,
) -> Result<Response, orpheus_core::CoreError> {
    let t = Instant::now();
    let resp = exec.execute(req);
    lat.push(t.elapsed().as_secs_f64() * 1e6);
    resp
}

/// Verify an executor's CVD against the oracle: the whole version graph
/// (parents + record counts via `Log`), and rlist + row-for-row checkout
/// equality at the sampled versions. Returns the first divergence as a
/// seed-bearing error.
pub fn verify_against<E: Executor>(
    exec: &mut E,
    oracle: &Oracle,
    samples: &[u64],
    ctx: &Ctx,
) -> Result<(), String> {
    // Graph equality at every version.
    let resp = exec
        .execute(Log::of(CVD).into())
        .map_err(|e| ctx.fail(format_args!("log: {e}")))?;
    let entries = match resp {
        Response::Log { entries, .. } => entries,
        other => return Err(ctx.fail(format_args!("log: unexpected response {other:?}"))),
    };
    if entries.len() != oracle.num_versions() {
        return Err(ctx.fail(format_args!(
            "graph: {} versions, oracle has {}",
            entries.len(),
            oracle.num_versions()
        )));
    }
    for entry in &entries {
        let model_v = oracle.version(entry.vid.0);
        let mut parents: Vec<u64> = entry.parents.iter().map(|p| p.0).collect();
        parents.sort_unstable();
        if parents != model_v.parents {
            return Err(ctx.fail(format_args!(
                "graph: v{} parents {:?}, oracle says {:?}",
                entry.vid.0, parents, model_v.parents
            )));
        }
        if entry.num_records != model_v.rlist.len() as u64 {
            return Err(ctx.fail(format_args!(
                "graph: v{} has {} records, oracle says {}",
                entry.vid.0,
                entry.num_records,
                model_v.rlist.len()
            )));
        }
    }

    // Checkout equality at sampled versions.
    for &vid in samples {
        exec.execute(Checkout::of(CVD).version(vid).into_table(VERIFY).into())
            .map_err(|e| ctx.fail(format_args!("verify v{vid}: checkout: {e}")))?;
        let resp = exec
            .execute(Run::sql(format!("SELECT * FROM {VERIFY}")).into())
            .map_err(|e| ctx.fail(format_args!("verify v{vid}: select: {e}")))?;
        let q = resp
            .rows()
            .ok_or_else(|| ctx.fail(format_args!("verify v{vid}: select returned no rows")))?
            .clone();
        exec.execute(Discard::table(VERIFY).into())
            .map_err(|e| ctx.fail(format_args!("verify v{vid}: discard: {e}")))?;

        let mut rows: Vec<(i64, Vec<Value>)> = Vec::with_capacity(q.rows.len());
        for row in q.rows {
            let mut it = row.into_iter();
            match it.next() {
                Some(Value::Int(rid)) => rows.push((rid, it.collect())),
                other => {
                    return Err(ctx.fail(format_args!(
                        "verify v{vid}: first column is not a rid: {other:?}"
                    )))
                }
            }
        }
        rows.sort_by_key(|&(rid, _)| rid);

        let expect = &oracle.version(vid).rlist;
        let got: Vec<i64> = rows.iter().map(|&(rid, _)| rid).collect();
        if &got != expect {
            let first = got
                .iter()
                .zip(expect.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| got.len().min(expect.len()));
            return Err(ctx.fail(format_args!(
                "rlist: v{vid} has {} rids, oracle says {} (first divergence at index {first}: \
                 got {:?}, want {:?})",
                got.len(),
                expect.len(),
                got.get(first),
                expect.get(first)
            )));
        }
        for (rid, mut vals) in rows {
            // Models render columns newer than a record as trailing NULLs
            // (or omit them when the version's table is frozen narrow);
            // payloads are never NULL, so trimming is unambiguous.
            while vals.last().is_some_and(Value::is_null) {
                vals.pop();
            }
            let expect_row = oracle.row(rid);
            let matches = vals.len() == expect_row.len()
                && vals
                    .iter()
                    .zip(expect_row.iter())
                    .all(|(v, &e)| matches!(v, Value::Int(x) if *x == e));
            if !matches {
                return Err(ctx.fail(format_args!(
                    "rows: v{vid} rid {rid}: got {vals:?}, oracle says {expect_row:?}"
                )));
            }
        }
    }
    Ok(())
}
