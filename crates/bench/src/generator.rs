//! The versioning benchmark generator (Section 5.1, after Maddox et al.
//! \[37\]).
//!
//! * **SCI** simulates data scientists taking working copies of an evolving
//!   dataset: a mainline chain with branches forking from arbitrary points
//!   (of the mainline or of other branches) — the version graph is a tree.
//! * **CUR** simulates curation of a canonical dataset: branches
//!   periodically *merge back* into their parent branch — the version graph
//!   is a DAG, with ~7–10% of records conceptually duplicated by the
//!   DAG→tree transformation (the `|R̂|` column of Table 2).
//!
//! Each derived version applies `I` modifications to its parent: a mix of
//! inserts, updates (which create fresh rids — records are immutable), and
//! deletes, keeping version sizes in steady state so that each record lives
//! in ~10 versions on average, matching the paper's statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use orpheus_partition::{BipartiteGraph, VersionGraph};

/// Workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Science: branching tree, no merges.
    Sci,
    /// Curation: branches merge back periodically (DAG).
    Cur,
}

/// Generator parameters (the knobs of Table 2).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    pub kind: WorkloadKind,
    /// Total number of versions |V|.
    pub versions: usize,
    /// Number of branches B.
    pub branches: usize,
    /// Modifications (inserts or updates) per derived version I.
    pub inserts: usize,
    /// Base version size as a multiple of I (the paper's datasets have
    /// |E|/|V| ≈ 11·I for SCI).
    pub base_factor: usize,
    /// Number of integer data attributes per record.
    pub attrs: usize,
    /// Fraction of the I modifications that are pure inserts (the rest are
    /// updates = delete + fresh insert). The benchmark "contains only a few
    /// deleted tuples, opting instead for updates or inserts" (§3.2).
    pub insert_fraction: f64,
    /// For CUR: probability that a step merges a branch into its parent.
    pub merge_prob: f64,
    pub seed: u64,
}

impl WorkloadParams {
    pub fn sci(versions: usize, branches: usize, inserts: usize) -> WorkloadParams {
        WorkloadParams {
            kind: WorkloadKind::Sci,
            versions,
            branches,
            inserts,
            base_factor: 10,
            attrs: 8,
            insert_fraction: 0.85,
            merge_prob: 0.0,
            seed: 42,
        }
    }

    pub fn cur(versions: usize, branches: usize, inserts: usize) -> WorkloadParams {
        WorkloadParams {
            kind: WorkloadKind::Cur,
            merge_prob: 0.5,
            ..WorkloadParams::sci(versions, branches, inserts)
        }
    }
}

/// A generated workload: version graph structure plus record membership.
/// Record payloads are deterministic functions of the rid (see
/// [`Workload::record_values`]), so they need not be stored.
#[derive(Debug, Clone)]
pub struct Workload {
    pub params: WorkloadParams,
    /// Parent version indices (0-based) per version.
    pub parents: Vec<Vec<usize>>,
    /// Sorted record ids per version (0-based).
    pub version_rids: Vec<Vec<usize>>,
    /// Total number of distinct records.
    pub num_records: usize,
}

impl Workload {
    /// Generate a workload.
    pub fn generate(params: WorkloadParams) -> Workload {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut parents: Vec<Vec<usize>> = Vec::with_capacity(params.versions);
        let mut version_rids: Vec<Vec<usize>> = Vec::with_capacity(params.versions);

        // Root version: base_factor · I records.
        let base = params.base_factor * params.inserts.max(1);
        version_rids.push((0..base).collect());
        let mut next_rid = base;
        parents.push(Vec::new());

        // Branch bookkeeping: branch 0 is the mainline and never retires.
        // In CUR, non-mainline branches live for a few commits and then
        // merge back into their parent branch (short-lived working copies),
        // which keeps the duplicated-record fraction |R̂|/|R| in the paper's
        // 7–10% range.
        struct Branch {
            tip: usize,
            parent_branch: usize,
            commits_since_fork: usize,
            active: bool,
        }
        let mut branches: Vec<Branch> = vec![Branch {
            tip: 0,
            parent_branch: 0,
            commits_since_fork: 0,
            active: true,
        }];
        let mut branches_created = 1usize;
        // Fork evenly so all B branches exist by the end.
        let fork_every = (params.versions / params.branches.max(1)).max(1);

        for v in 1..params.versions {
            // CUR: merge a matured branch back into its parent branch.
            if params.kind == WorkloadKind::Cur {
                let candidate = (1..branches.len())
                    .find(|&i| branches[i].active && branches[i].commits_since_fork >= 1);
                if let Some(b) = candidate {
                    if rng.gen_bool(params.merge_prob) {
                        let pb = branches[b].parent_branch;
                        let (a_tip, b_tip) = (branches[pb].tip, branches[b].tip);
                        if a_tip != b_tip {
                            let mut records: Vec<usize> = version_rids[a_tip]
                                .iter()
                                .chain(version_rids[b_tip].iter())
                                .copied()
                                .collect();
                            records.sort_unstable();
                            records.dedup();
                            parents.push(vec![a_tip.min(b_tip), a_tip.max(b_tip)]);
                            version_rids.push(records);
                            branches[pb].tip = v;
                            branches[b].active = false;
                            continue;
                        }
                    }
                }
            }

            let active: Vec<usize> = branches
                .iter()
                .enumerate()
                .filter(|(_, b)| b.active)
                .map(|(i, _)| i)
                .collect();
            let make_branch = branches_created < params.branches && v % fork_every == 0;
            let branch = if make_branch {
                // Fork from a random active branch tip.
                let from = active[rng.gen_range(0..active.len())];
                branches.push(Branch {
                    tip: branches[from].tip,
                    parent_branch: from,
                    commits_since_fork: 0,
                    active: true,
                });
                branches_created += 1;
                branches.len() - 1
            } else {
                active[rng.gen_range(0..active.len())]
            };

            let tip = branches[branch].tip;
            let mut records = version_rids[tip].clone();
            let n_updates =
                ((params.inserts as f64) * (1.0 - params.insert_fraction)).round() as usize;
            let n_inserts = params.inserts - n_updates;
            // Updates: replace random records with fresh rids (immutable
            // records: a modification is a delete + insert).
            for _ in 0..n_updates.min(records.len()) {
                let idx = rng.gen_range(0..records.len());
                records.swap_remove(idx);
                records.push(next_rid);
                next_rid += 1;
            }
            // Keep version sizes in steady state: delete as many as we
            // insert once past the base size (records live ~base_factor
            // versions on average, matching "each record exists on average
            // in 10 versions").
            if records.len() > base {
                for _ in 0..n_inserts.min(records.len()) {
                    let idx = rng.gen_range(0..records.len());
                    records.swap_remove(idx);
                }
            }
            for _ in 0..n_inserts {
                records.push(next_rid);
                next_rid += 1;
            }
            records.sort_unstable();
            parents.push(vec![tip]);
            version_rids.push(records);
            branches[branch].tip = v;
            branches[branch].commits_since_fork += 1;
        }

        Workload {
            params,
            parents,
            version_rids,
            num_records: next_rid,
        }
    }

    pub fn num_versions(&self) -> usize {
        self.version_rids.len()
    }

    /// Total membership edges |E|.
    pub fn num_edges(&self) -> usize {
        self.version_rids.iter().map(|r| r.len()).sum()
    }

    /// Deterministic integer payload of a record: `attrs` 4-byte-ish values
    /// derived from the rid (the paper's records are 100 × 4-byte ints).
    pub fn record_values(&self, rid: usize) -> Vec<i64> {
        (0..self.params.attrs)
            .map(|c| {
                let mut x = (rid as u64)
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(c as u64);
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                (x >> 33) as i64 % 10_000
            })
            .collect()
    }

    /// The version-record bipartite graph.
    pub fn bipartite(&self) -> BipartiteGraph {
        BipartiteGraph::new(self.version_rids.clone())
    }

    /// The version graph with overlap weights.
    pub fn version_graph(&self) -> VersionGraph {
        VersionGraph::from_bipartite(&self.parents, &self.bipartite())
    }

    /// Records of a version that are new relative to its parents (fresh
    /// rids under the no-cross-version-diff rule).
    pub fn new_rids_of(&self, v: usize) -> Vec<usize> {
        if self.parents[v].is_empty() {
            return self.version_rids[v].clone();
        }
        let mut inherited: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &p in &self.parents[v] {
            inherited.extend(self.version_rids[p].iter().copied());
        }
        self.version_rids[v]
            .iter()
            .copied()
            .filter(|r| !inherited.contains(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_is_a_tree_with_branches() {
        let w = Workload::generate(WorkloadParams::sci(120, 10, 50));
        assert_eq!(w.num_versions(), 120);
        assert!(w.parents.iter().all(|p| p.len() <= 1));
        let g = w.version_graph();
        assert!(g.is_tree());
        // Branch structure: some version has more than one child.
        let children = g.children();
        assert!(children.iter().any(|c| c.len() > 1));
    }

    #[test]
    fn cur_is_a_dag_with_merges() {
        let w = Workload::generate(WorkloadParams::cur(150, 10, 50));
        let merges = w.parents.iter().filter(|p| p.len() == 2).count();
        assert!(merges > 0, "CUR must contain merges");
        assert!(!w.version_graph().is_tree());
        // |R̂| is positive and a modest fraction of |R| (paper: 7–10%;
        // the short-lived-branch generator lands in the same ballpark).
        let dup = w.version_graph().duplicated_records(&w.bipartite());
        assert!(dup > 0);
        assert!(
            dup < w.num_records / 4,
            "|R̂| = {dup} too large vs |R| = {}",
            w.num_records
        );
    }

    #[test]
    fn record_lifetimes_average_near_base_factor() {
        let w = Workload::generate(WorkloadParams::sci(300, 20, 100));
        let avg_versions_per_record = w.num_edges() as f64 / w.num_records as f64;
        // Steady-state sizes ⇒ records live ~base_factor versions on
        // average (paper: "each record exists on average in 10 versions").
        assert!(
            avg_versions_per_record > 3.0 && avg_versions_per_record < 30.0,
            "avg lifetime {avg_versions_per_record}"
        );
    }

    #[test]
    fn version_sizes_stay_in_steady_state() {
        let p = WorkloadParams::sci(200, 10, 100);
        let base = p.base_factor * p.inserts;
        let w = Workload::generate(p);
        let max = w.version_rids.iter().map(|r| r.len()).max().unwrap();
        assert!(max <= base * 2, "sizes should not balloon: {max} vs {base}");
    }

    #[test]
    fn deterministic_by_seed_and_payloads() {
        let a = Workload::generate(WorkloadParams::sci(50, 5, 20));
        let b = Workload::generate(WorkloadParams::sci(50, 5, 20));
        assert_eq!(a.version_rids, b.version_rids);
        assert_eq!(a.record_values(7), b.record_values(7));
        assert_eq!(a.record_values(7).len(), 8);
        assert_ne!(a.record_values(7), a.record_values(8));
    }

    #[test]
    fn new_rids_are_disjoint_from_parents() {
        let w = Workload::generate(WorkloadParams::cur(80, 8, 30));
        for v in 0..w.num_versions() {
            let new = w.new_rids_of(v);
            for &p in &w.parents[v] {
                for r in &new {
                    assert!(!w.version_rids[p].contains(r));
                }
            }
            // Merges introduce no new records in this benchmark.
            if w.parents[v].len() == 2 {
                assert!(new.is_empty());
            }
        }
    }
}
