//! The versioning benchmark generator (Section 5.1, after Maddox et al.
//! \[37\]).
//!
//! * **SCI** simulates data scientists taking working copies of an evolving
//!   dataset: a mainline chain with branches forking from arbitrary points
//!   (of the mainline or of other branches) — the version graph is a tree.
//! * **CUR** simulates curation of a canonical dataset: branches
//!   periodically *merge back* into their parent branch — the version graph
//!   is a DAG, with ~7–10% of records conceptually duplicated by the
//!   DAG→tree transformation (the `|R̂|` column of Table 2).
//!
//! Each derived version applies `I` modifications to its parent: a mix of
//! inserts, updates (which create fresh rids — records are immutable), and
//! deletes, keeping version sizes in steady state so that each record lives
//! in ~10 versions on average, matching the paper's statistics.
//!
//! ## Streaming histories
//!
//! [`HistoryGen`] is the paper-scale form of the generator: an iterator of
//! [`HistoryEvent`]s (one `Init`, then one `Commit` per derived version)
//! that never materializes the whole dataset — its working set is one
//! rlist per *live branch*, so million-record histories generate in
//! O(branches × version size) memory. On top of the Table 2 knobs it adds
//! skewed branch popularity (`skew`) and mid-history schema evolution
//! (`evolve_every`), and it derives every random choice from per-version
//! sub-streams of the seed, which buys two properties the differential
//! oracle harness relies on:
//!
//! 1. the same seed produces a bit-identical event stream on every run, and
//! 2. two parameter sets that differ **only in `versions`** produce
//!    identical prefixes, so `ORPHEUS_SCALE` tiers built that way share
//!    their opening history and a failure at a big tier can be chased at a
//!    small one.
//!
//! Events name the exact rids the engine will allocate (init rows get rids
//! `1..=n` in order; each commit's fresh rows get consecutive rids in
//! staged-row order), so a replay through the real command bus and a replay
//! through the naive oracle (`crate::oracle`) must agree rid-for-rid.
//! Deletes only ever name rids present in the parent version and never a
//! rid inserted by the same commit — a row inserted and deleted inside one
//! staged table would never reach the engine's allocator and the rid
//! streams would drift.
//!
//! [`Workload`] (the original eager API used by the figure experiments) is
//! a thin replay of `HistoryGen` with skew and evolution switched off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use orpheus_partition::{BipartiteGraph, VersionGraph};

/// Deterministic record payload: attribute `col` of record `rid` (1-based
/// engine rid). A pure function of its arguments, so neither the generator
/// nor the oracle ever stores row contents. Always non-NULL, which keeps
/// cross-model comparison unambiguous: a trailing NULL in a checked-out
/// row can only mean "this column did not exist when the record was
/// created".
pub fn payload(rid: i64, col: usize) -> i64 {
    let mut x = (rid as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(col as u64);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    ((x >> 33) % 10_000) as i64
}

/// SplitMix64 finalizer, used to derive independent sub-streams.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Per-(version, lane) rng stream. Lane 0 drives structural choices
/// (merge? fork from where?), lane 1 drives content choices (which rids
/// churn). Keying by version id — not by draw count — is what makes
/// histories prefix-stable when only `versions` changes.
fn sub_rng(seed: u64, vid: u64, lane: u64) -> StdRng {
    StdRng::seed_from_u64(splitmix(splitmix(seed) ^ splitmix((vid << 2) | lane)))
}

/// Workload family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Science: branching tree, no merges.
    Sci,
    /// Curation: branches merge back periodically (DAG).
    Cur,
}

/// Generator parameters (the knobs of Table 2).
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    pub kind: WorkloadKind,
    /// Total number of versions |V|.
    pub versions: usize,
    /// Number of branches B.
    pub branches: usize,
    /// Modifications (inserts or updates) per derived version I.
    pub inserts: usize,
    /// Base version size as a multiple of I (the paper's datasets have
    /// |E|/|V| ≈ 11·I for SCI).
    pub base_factor: usize,
    /// Number of integer data attributes per record.
    pub attrs: usize,
    /// Fraction of the I modifications that are pure inserts (the rest are
    /// updates = delete + fresh insert). The benchmark "contains only a few
    /// deleted tuples, opting instead for updates or inserts" (§3.2).
    pub insert_fraction: f64,
    /// For CUR: probability that a step merges a branch into its parent.
    pub merge_prob: f64,
    pub seed: u64,
}

impl WorkloadParams {
    pub fn sci(versions: usize, branches: usize, inserts: usize) -> WorkloadParams {
        WorkloadParams {
            kind: WorkloadKind::Sci,
            versions,
            branches,
            inserts,
            base_factor: 10,
            attrs: 8,
            insert_fraction: 0.85,
            merge_prob: 0.0,
            seed: 42,
        }
    }

    pub fn cur(versions: usize, branches: usize, inserts: usize) -> WorkloadParams {
        WorkloadParams {
            kind: WorkloadKind::Cur,
            merge_prob: 0.5,
            ..WorkloadParams::sci(versions, branches, inserts)
        }
    }

    /// The streaming-generator parameters equivalent to this workload
    /// (uniform branch popularity, no schema evolution).
    pub fn history(&self) -> HistoryParams {
        HistoryParams {
            versions: self.versions,
            branches: self.branches,
            fork_every: (self.versions / self.branches.max(1)).max(1),
            base_rows: self.base_factor * self.inserts.max(1),
            inserts: self.inserts,
            attrs: self.attrs,
            insert_fraction: self.insert_fraction,
            merge_prob: match self.kind {
                WorkloadKind::Cur => self.merge_prob,
                WorkloadKind::Sci => 0.0,
            },
            skew: 0.0,
            evolve_every: 0,
            seed: self.seed,
        }
    }
}

/// Knobs of the streaming generator. A superset of [`WorkloadParams`]:
/// `fork_every` is explicit (not derived from `versions`) so that two
/// parameter sets differing only in `versions` generate identical
/// prefixes.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryParams {
    /// Total versions including the init version (≥ 1).
    pub versions: usize,
    /// Maximum number of branches ever created (≥ 1; 1 = a pure chain).
    pub branches: usize,
    /// A new branch forks every `fork_every` versions until `branches`
    /// exist.
    pub fork_every: usize,
    /// Records in the init version.
    pub base_rows: usize,
    /// Modifications per derived version (the paper's `I`).
    pub inserts: usize,
    /// Initial attribute count (`a0..a{attrs-1}`, all ints).
    pub attrs: usize,
    /// Fraction of modifications that are pure inserts; the rest are
    /// updates (delete + fresh-rid insert).
    pub insert_fraction: f64,
    /// Probability that a step merges a matured branch back into its
    /// parent branch (0 = tree).
    pub merge_prob: f64,
    /// Branch-popularity skew: branch at creation rank r is picked with
    /// weight 1/(r+1)^skew. 0 = uniform; larger = mainline-heavy.
    pub skew: f64,
    /// Add one column every `evolve_every` versions (0 = never). An
    /// evolution scheduled on a version that turns out to be a merge is
    /// skipped.
    pub evolve_every: usize,
    pub seed: u64,
}

/// The opening event of a history: the init version's schema width and
/// rows. Rids are `1..=rows.len()` in row order — exactly what the engine
/// allocates for `Init`.
#[derive(Debug, Clone, PartialEq)]
pub struct InitEvent {
    pub attrs: usize,
    /// `(rid, payload values)`, width = `attrs`.
    pub rows: Vec<(i64, Vec<i64>)>,
}

/// One derived version: which versions it checks out, which staged rows it
/// deletes, which fresh rows it inserts, and whether the commit widens the
/// schema first.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitEvent {
    /// The version id this commit must be assigned (init is 1).
    pub vid: u64,
    /// Checked-out parent version ids (two for a merge). Merges carry no
    /// churn in this benchmark.
    pub parents: Vec<u64>,
    /// Rids deleted from the staged table; always present in the parent
    /// version(s), sorted.
    pub deletes: Vec<i64>,
    /// Fresh rows `(rid, payload values)` in engine allocation order; the
    /// value width is `width` (records are born at the current schema
    /// width, never with trailing NULLs).
    pub inserts: Vec<(i64, Vec<i64>)>,
    /// `Some(column)` if this commit adds a column before inserting.
    pub add_column: Option<String>,
    /// CVD attribute count after this commit.
    pub width: usize,
}

/// A streamed history event.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryEvent {
    Init(InitEvent),
    Commit(CommitEvent),
}

impl HistoryEvent {
    /// The version id this event creates.
    pub fn vid(&self) -> u64 {
        match self {
            HistoryEvent::Init(_) => 1,
            HistoryEvent::Commit(c) => c.vid,
        }
    }
}

struct GenBranch {
    /// Version id of the branch tip.
    tip: u64,
    /// Sorted rlist at the tip (emptied when the branch retires).
    rids: Vec<i64>,
    parent_branch: usize,
    commits_since_fork: usize,
    active: bool,
}

/// Streaming history generator: `Iterator<Item = HistoryEvent>`.
pub struct HistoryGen {
    params: HistoryParams,
    branches: Vec<GenBranch>,
    branches_created: usize,
    next_vid: u64,
    next_rid: i64,
    width: usize,
}

impl HistoryGen {
    pub fn new(params: HistoryParams) -> HistoryGen {
        assert!(
            params.versions >= 1,
            "a history has at least its init version"
        );
        assert!(params.fork_every >= 1);
        HistoryGen {
            width: params.attrs,
            params,
            branches: Vec::new(),
            branches_created: 0,
            next_vid: 1,
            next_rid: 1,
        }
    }

    pub fn params(&self) -> &HistoryParams {
        &self.params
    }

    /// Pick an active branch, weighting creation rank r by 1/(r+1)^skew.
    fn pick_branch(&self, active: &[usize], rng: &mut StdRng) -> usize {
        if active.len() == 1 || self.params.skew <= 0.0 {
            return active[rng.gen_range(0..active.len())];
        }
        let weights: Vec<f64> = (0..active.len())
            .map(|r| 1.0 / ((r + 1) as f64).powf(self.params.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut t = rng.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return active[i];
            }
        }
        active[active.len() - 1]
    }
}

/// Sorted-merge union of two sorted rid lists.
fn sorted_union(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Iterator for HistoryGen {
    type Item = HistoryEvent;

    fn next(&mut self) -> Option<HistoryEvent> {
        let v = self.next_vid;
        if v as usize > self.params.versions {
            return None;
        }
        self.next_vid += 1;

        if v == 1 {
            let n = self.params.base_rows;
            let rows: Vec<(i64, Vec<i64>)> = (1..=n as i64)
                .map(|rid| (rid, (0..self.width).map(|c| payload(rid, c)).collect()))
                .collect();
            self.next_rid = n as i64 + 1;
            self.branches.push(GenBranch {
                tip: 1,
                rids: (1..=n as i64).collect(),
                parent_branch: 0,
                commits_since_fork: 0,
                active: true,
            });
            self.branches_created = 1;
            return Some(HistoryEvent::Init(InitEvent {
                attrs: self.params.attrs,
                rows,
            }));
        }

        let mut rs = sub_rng(self.params.seed, v, 0);

        // Merge a matured branch back into its parent branch.
        if self.params.merge_prob > 0.0 {
            let candidate = (1..self.branches.len())
                .find(|&i| self.branches[i].active && self.branches[i].commits_since_fork >= 1);
            if let Some(b) = candidate {
                if rs.gen_bool(self.params.merge_prob) {
                    let pb = self.branches[b].parent_branch;
                    let (a_tip, b_tip) = (self.branches[pb].tip, self.branches[b].tip);
                    if a_tip != b_tip {
                        let merged = sorted_union(&self.branches[pb].rids, &self.branches[b].rids);
                        self.branches[pb].rids = merged;
                        self.branches[pb].tip = v;
                        self.branches[b].active = false;
                        self.branches[b].rids = Vec::new();
                        return Some(HistoryEvent::Commit(CommitEvent {
                            vid: v,
                            parents: vec![a_tip.min(b_tip), a_tip.max(b_tip)],
                            deletes: Vec::new(),
                            inserts: Vec::new(),
                            add_column: None,
                            width: self.width,
                        }));
                    }
                }
            }
        }

        // Fork a new branch on cadence, else extend a skew-picked branch.
        let active: Vec<usize> = self
            .branches
            .iter()
            .enumerate()
            .filter(|(_, b)| b.active)
            .map(|(i, _)| i)
            .collect();
        let make_branch = self.branches_created < self.params.branches
            && (v as usize - 1).is_multiple_of(self.params.fork_every);
        let branch = if make_branch {
            let from = self.pick_branch(&active, &mut rs);
            self.branches.push(GenBranch {
                tip: self.branches[from].tip,
                rids: self.branches[from].rids.clone(),
                parent_branch: from,
                commits_since_fork: 0,
                active: true,
            });
            self.branches_created += 1;
            self.branches.len() - 1
        } else {
            self.pick_branch(&active, &mut rs)
        };

        let mut add_column = None;
        if self.params.evolve_every > 0 && (v as usize - 1).is_multiple_of(self.params.evolve_every)
        {
            add_column = Some(format!("a{}", self.width));
            self.width += 1;
        }

        // Churn: updates (delete + fresh insert), steady-state deletes once
        // past the base size, then pure inserts. Delete victims come only
        // from rids inherited from the parent, never from this commit's
        // fresh rows — the engine allocates rids at commit time, so a row
        // inserted and deleted inside one staged table would desynchronize
        // the rid streams.
        let mut rc = sub_rng(self.params.seed, v, 1);
        let tip = self.branches[branch].tip;
        let mut rids = std::mem::take(&mut self.branches[branch].rids);
        let n_updates =
            ((self.params.inserts as f64) * (1.0 - self.params.insert_fraction)).round() as usize;
        let n_updates = n_updates.min(self.params.inserts);
        let n_inserts = self.params.inserts - n_updates;
        let mut deletes = Vec::new();
        let mut fresh = Vec::new();
        for _ in 0..n_updates.min(rids.len()) {
            let idx = rc.gen_range(0..rids.len());
            deletes.push(rids.swap_remove(idx));
            fresh.push(self.next_rid);
            self.next_rid += 1;
        }
        if rids.len() + fresh.len() > self.params.base_rows {
            for _ in 0..n_inserts.min(rids.len()) {
                let idx = rc.gen_range(0..rids.len());
                deletes.push(rids.swap_remove(idx));
            }
        }
        for _ in 0..n_inserts {
            fresh.push(self.next_rid);
            self.next_rid += 1;
        }
        rids.extend(fresh.iter().copied());
        rids.sort_unstable();
        self.branches[branch].rids = rids;
        self.branches[branch].tip = v;
        self.branches[branch].commits_since_fork += 1;
        deletes.sort_unstable();
        let width = self.width;
        let inserts: Vec<(i64, Vec<i64>)> = fresh
            .iter()
            .map(|&r| (r, (0..width).map(|c| payload(r, c)).collect()))
            .collect();
        Some(HistoryEvent::Commit(CommitEvent {
            vid: v,
            parents: vec![tip],
            deletes,
            inserts,
            add_column,
            width,
        }))
    }
}

/// A generated workload: version graph structure plus record membership.
/// Record payloads are deterministic functions of the rid (see
/// [`Workload::record_values`]), so they need not be stored.
#[derive(Debug, Clone)]
pub struct Workload {
    pub params: WorkloadParams,
    /// Parent version indices (0-based) per version.
    pub parents: Vec<Vec<usize>>,
    /// Sorted record ids per version (0-based).
    pub version_rids: Vec<Vec<usize>>,
    /// Total number of distinct records.
    pub num_records: usize,
}

impl Workload {
    /// Generate a workload: an eager replay of [`HistoryGen`].
    pub fn generate(params: WorkloadParams) -> Workload {
        let history = params.history();
        let mut parents: Vec<Vec<usize>> = Vec::with_capacity(params.versions);
        let mut version_rids: Vec<Vec<usize>> = Vec::with_capacity(params.versions);
        let mut num_records = 0usize;
        for event in HistoryGen::new(history) {
            match event {
                HistoryEvent::Init(e) => {
                    num_records = e.rows.len();
                    parents.push(Vec::new());
                    version_rids.push(e.rows.iter().map(|&(r, _)| r as usize - 1).collect());
                }
                HistoryEvent::Commit(e) => {
                    let mut rids: Vec<usize> = if e.parents.len() == 1 {
                        version_rids[e.parents[0] as usize - 1].clone()
                    } else {
                        let mut u: Vec<usize> = e
                            .parents
                            .iter()
                            .flat_map(|&p| version_rids[p as usize - 1].iter().copied())
                            .collect();
                        u.sort_unstable();
                        u.dedup();
                        u
                    };
                    if !e.deletes.is_empty() {
                        let del: std::collections::HashSet<usize> =
                            e.deletes.iter().map(|&r| r as usize - 1).collect();
                        rids.retain(|r| !del.contains(r));
                    }
                    for &(r, _) in &e.inserts {
                        rids.push(r as usize - 1);
                        num_records = num_records.max(r as usize);
                    }
                    rids.sort_unstable();
                    parents.push(e.parents.iter().map(|&p| p as usize - 1).collect());
                    version_rids.push(rids);
                }
            }
        }
        Workload {
            params,
            parents,
            version_rids,
            num_records,
        }
    }

    pub fn num_versions(&self) -> usize {
        self.version_rids.len()
    }

    /// Total membership edges |E|.
    pub fn num_edges(&self) -> usize {
        self.version_rids.iter().map(|r| r.len()).sum()
    }

    /// Deterministic integer payload of a record: `attrs` 4-byte-ish values
    /// derived from the rid (the paper's records are 100 × 4-byte ints).
    /// Workload rids are 0-based; this is [`payload`] of the 1-based engine
    /// rid, so bulk-loaded and replayed datasets carry identical bytes.
    pub fn record_values(&self, rid: usize) -> Vec<i64> {
        (0..self.params.attrs)
            .map(|c| payload(rid as i64 + 1, c))
            .collect()
    }

    /// The version-record bipartite graph.
    pub fn bipartite(&self) -> BipartiteGraph {
        BipartiteGraph::new(self.version_rids.clone())
    }

    /// The version graph with overlap weights.
    pub fn version_graph(&self) -> VersionGraph {
        VersionGraph::from_bipartite(&self.parents, &self.bipartite())
    }

    /// Records of a version that are new relative to its parents (fresh
    /// rids under the no-cross-version-diff rule).
    pub fn new_rids_of(&self, v: usize) -> Vec<usize> {
        if self.parents[v].is_empty() {
            return self.version_rids[v].clone();
        }
        let mut inherited: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for &p in &self.parents[v] {
            inherited.extend(self.version_rids[p].iter().copied());
        }
        self.version_rids[v]
            .iter()
            .copied()
            .filter(|r| !inherited.contains(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_is_a_tree_with_branches() {
        let w = Workload::generate(WorkloadParams::sci(120, 10, 50));
        assert_eq!(w.num_versions(), 120);
        assert!(w.parents.iter().all(|p| p.len() <= 1));
        let g = w.version_graph();
        assert!(g.is_tree());
        // Branch structure: some version has more than one child.
        let children = g.children();
        assert!(children.iter().any(|c| c.len() > 1));
    }

    #[test]
    fn cur_is_a_dag_with_merges() {
        let w = Workload::generate(WorkloadParams::cur(150, 10, 50));
        let merges = w.parents.iter().filter(|p| p.len() == 2).count();
        assert!(merges > 0, "CUR must contain merges");
        assert!(!w.version_graph().is_tree());
        // |R̂| is positive and a modest fraction of |R| (paper: 7–10%;
        // the short-lived-branch generator lands in the same ballpark).
        let dup = w.version_graph().duplicated_records(&w.bipartite());
        assert!(dup > 0);
        assert!(
            dup < w.num_records / 4,
            "|R̂| = {dup} too large vs |R| = {}",
            w.num_records
        );
    }

    #[test]
    fn record_lifetimes_average_near_base_factor() {
        let w = Workload::generate(WorkloadParams::sci(300, 20, 100));
        let avg_versions_per_record = w.num_edges() as f64 / w.num_records as f64;
        // Steady-state sizes ⇒ records live ~base_factor versions on
        // average (paper: "each record exists on average in 10 versions").
        assert!(
            avg_versions_per_record > 3.0 && avg_versions_per_record < 30.0,
            "avg lifetime {avg_versions_per_record}"
        );
    }

    #[test]
    fn version_sizes_stay_in_steady_state() {
        let p = WorkloadParams::sci(200, 10, 100);
        let base = p.base_factor * p.inserts;
        let w = Workload::generate(p);
        let max = w.version_rids.iter().map(|r| r.len()).max().unwrap();
        assert!(max <= base * 2, "sizes should not balloon: {max} vs {base}");
    }

    #[test]
    fn deterministic_by_seed_and_payloads() {
        let a = Workload::generate(WorkloadParams::sci(50, 5, 20));
        let b = Workload::generate(WorkloadParams::sci(50, 5, 20));
        assert_eq!(a.version_rids, b.version_rids);
        assert_eq!(a.record_values(7), b.record_values(7));
        assert_eq!(a.record_values(7).len(), 8);
        assert_ne!(a.record_values(7), a.record_values(8));
    }

    #[test]
    fn new_rids_are_disjoint_from_parents() {
        let w = Workload::generate(WorkloadParams::cur(80, 8, 30));
        for v in 0..w.num_versions() {
            let new = w.new_rids_of(v);
            for &p in &w.parents[v] {
                for r in &new {
                    assert!(!w.version_rids[p].contains(r));
                }
            }
            // Merges introduce no new records in this benchmark.
            if w.parents[v].len() == 2 {
                assert!(new.is_empty());
            }
        }
    }

    fn history_fixture() -> HistoryParams {
        HistoryParams {
            versions: 40,
            branches: 4,
            fork_every: 7,
            base_rows: 120,
            inserts: 25,
            attrs: 5,
            insert_fraction: 0.8,
            merge_prob: 0.3,
            skew: 0.9,
            evolve_every: 11,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn history_stream_is_bit_identical_across_runs() {
        let a: Vec<HistoryEvent> = HistoryGen::new(history_fixture()).collect();
        let b: Vec<HistoryEvent> = HistoryGen::new(history_fixture()).collect();
        assert_eq!(a.len(), 40);
        assert_eq!(a, b);
    }

    #[test]
    fn histories_differing_only_in_versions_share_a_prefix() {
        let long: Vec<HistoryEvent> = HistoryGen::new(history_fixture()).collect();
        let short_params = HistoryParams {
            versions: 17,
            ..history_fixture()
        };
        let short: Vec<HistoryEvent> = HistoryGen::new(short_params).collect();
        assert_eq!(short.len(), 17);
        assert_eq!(&long[..17], &short[..]);
    }

    #[test]
    fn history_events_are_well_formed() {
        let mut seen_rids = std::collections::HashSet::new();
        let mut width = 0usize;
        let mut num_evolutions = 0;
        let mut num_merges = 0;
        for event in HistoryGen::new(history_fixture()) {
            match event {
                HistoryEvent::Init(e) => {
                    width = e.attrs;
                    for (i, &(rid, ref vals)) in e.rows.iter().enumerate() {
                        assert_eq!(rid, i as i64 + 1, "init rids are 1..=n in order");
                        assert_eq!(vals.len(), width);
                        assert!(seen_rids.insert(rid));
                    }
                }
                HistoryEvent::Commit(e) => {
                    if e.add_column.is_some() {
                        num_evolutions += 1;
                        assert_eq!(e.add_column.as_deref(), Some(&*format!("a{}", e.width - 1)));
                    }
                    assert_eq!(e.width, width + usize::from(e.add_column.is_some()));
                    width = e.width;
                    if e.parents.len() == 2 {
                        num_merges += 1;
                        assert!(e.deletes.is_empty() && e.inserts.is_empty());
                    }
                    for &(rid, ref vals) in &e.inserts {
                        assert_eq!(vals.len(), e.width, "records are born at full width");
                        assert!(seen_rids.insert(rid), "fresh rids are globally unique");
                        assert!(!e.deletes.contains(&rid), "no insert+delete in one commit");
                    }
                }
            }
        }
        assert!(
            num_evolutions >= 2,
            "fixture must exercise schema evolution"
        );
        assert!(num_merges >= 1, "fixture must exercise merges");
        assert!(width > 5, "schema must have widened");
    }

    #[test]
    fn workload_replay_matches_streamed_events() {
        // The eager Workload is a replay of the stream: every fresh rid in
        // the stream appears in exactly the versions the Workload says.
        let params = WorkloadParams::cur(60, 6, 30);
        let w = Workload::generate(params.clone());
        let events: Vec<HistoryEvent> = HistoryGen::new(params.history()).collect();
        assert_eq!(events.len(), w.num_versions());
        for event in &events {
            if let HistoryEvent::Commit(e) = event {
                let v = e.vid as usize - 1;
                for &(rid, _) in &e.inserts {
                    assert!(w.version_rids[v].contains(&(rid as usize - 1)));
                }
                for &rid in &e.deletes {
                    assert!(!w.version_rids[v].contains(&(rid as usize - 1)));
                }
            }
        }
    }
}
