//! The Table 2 dataset configurations, scaled for laptop-speed runs.
//!
//! The paper's datasets range from 1M to 10M records; every cost in the
//! system is linear in record count, so the experiments preserve their
//! *shape* at 1/25 scale (the default). Set the environment variable
//! `ORPHEUS_SCALE` to a larger multiplier to approach paper scale, e.g.
//! `ORPHEUS_SCALE=5` for ~1M-record runs of the *_40K datasets.

use crate::generator::{HistoryParams, Workload, WorkloadKind, WorkloadParams};

/// A named dataset specification (a row of Table 2, scaled).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper name (e.g. "SCI_1M").
    pub paper_name: &'static str,
    /// Scaled name (e.g. "SCI_40K").
    pub name: &'static str,
    pub kind: WorkloadKind,
    pub versions: usize,
    pub branches: usize,
    pub inserts: usize,
}

impl DatasetSpec {
    /// Generate the workload at the current scale.
    pub fn generate(&self) -> Workload {
        let s = scale();
        let mut params = match self.kind {
            WorkloadKind::Sci => {
                WorkloadParams::sci(self.versions, self.branches, self.inserts * s)
            }
            WorkloadKind::Cur => {
                WorkloadParams::cur(self.versions, self.branches, self.inserts * s)
            }
        };
        params.seed = 42 ^ self.name.len() as u64 ^ (self.versions as u64) << 8;
        Workload::generate(params)
    }
}

/// Named experiment tiers: `ORPHEUS_SCALE={smoke,ci,paper}`. Numeric
/// values keep their historical meaning (a raw multiplier, tier Smoke).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTier {
    /// Seconds-scale: unit tests and local sanity runs.
    Smoke,
    /// Minutes-scale: the CI `experiments-smoke` job, all five
    /// differential arms.
    Ci,
    /// The paper's scale: a ≥1M-record, ≥500-version deep-and-bushy
    /// history (the `ORPHEUS_STRESS` job).
    Paper,
}

impl ScaleTier {
    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::Smoke => "smoke",
            ScaleTier::Ci => "ci",
            ScaleTier::Paper => "paper",
        }
    }

    /// The differential-harness history for this tier. All three tiers
    /// share seed and rate knobs; they differ in size. Within a tier,
    /// histories that differ only in `versions` share a prefix (see
    /// `generator::HistoryGen`), which is how a paper-tier divergence is
    /// chased at smoke size.
    pub fn history(self) -> HistoryParams {
        let (versions, branches, fork_every, base_rows, inserts, evolve_every) = match self {
            ScaleTier::Smoke => (24, 4, 6, 300, 40, 9),
            ScaleTier::Ci => (120, 10, 12, 4_000, 120, 45),
            ScaleTier::Paper => (640, 32, 20, 150_000, 2_400, 211),
        };
        HistoryParams {
            versions,
            branches,
            fork_every,
            base_rows,
            inserts,
            attrs: 8,
            insert_fraction: 0.85,
            merge_prob: 0.3,
            skew: 0.8,
            evolve_every,
            seed: 0xD1FF,
        }
    }

    /// How many versions the differential harness verifies row-for-row.
    pub fn checkout_samples(self) -> usize {
        match self {
            ScaleTier::Smoke => 6,
            ScaleTier::Ci => 12,
            ScaleTier::Paper => 6,
        }
    }
}

/// The active tier from `ORPHEUS_SCALE` (numeric or unset values map to
/// Smoke — the numeric multiplier only affects the figure datasets, via
/// [`scale`]).
pub fn tier() -> ScaleTier {
    match std::env::var("ORPHEUS_SCALE").ok().as_deref() {
        Some("ci") => ScaleTier::Ci,
        Some("paper") => ScaleTier::Paper,
        _ => ScaleTier::Smoke,
    }
}

/// Global scale multiplier from `ORPHEUS_SCALE` (default 1). Numeric
/// values are the multiplier directly; the named tiers map to 1/1/5 —
/// `paper` runs the *_200K figure datasets at ~1M records.
pub fn scale() -> usize {
    match std::env::var("ORPHEUS_SCALE").ok().as_deref() {
        Some("paper") => 5,
        Some("ci") | Some("smoke") => 1,
        Some(s) => s.parse::<usize>().ok().filter(|&s| s >= 1).unwrap_or(1),
        None => 1,
    }
}

/// Scaled stand-ins for the paper's SCI_* rows of Table 2. Version counts
/// and branch counts keep the paper's |V|/|B| ratios; `inserts` scales |R|.
pub const SCI: [DatasetSpec; 5] = [
    DatasetSpec {
        paper_name: "SCI_1M",
        name: "SCI_40K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 200,
    },
    DatasetSpec {
        paper_name: "SCI_2M",
        name: "SCI_80K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 400,
    },
    DatasetSpec {
        paper_name: "SCI_5M",
        name: "SCI_200K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 1000,
    },
    DatasetSpec {
        paper_name: "SCI_8M",
        name: "SCI_320K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 1600,
    },
    DatasetSpec {
        paper_name: "SCI_10M",
        name: "SCI_400K",
        kind: WorkloadKind::Sci,
        versions: 1000,
        branches: 100,
        inserts: 400,
    },
];

/// Scaled stand-ins for the paper's CUR_* rows.
pub const CUR: [DatasetSpec; 3] = [
    DatasetSpec {
        paper_name: "CUR_1M",
        name: "CUR_40K",
        kind: WorkloadKind::Cur,
        versions: 220,
        branches: 20,
        inserts: 180,
    },
    DatasetSpec {
        paper_name: "CUR_5M",
        name: "CUR_200K",
        kind: WorkloadKind::Cur,
        versions: 220,
        branches: 20,
        inserts: 900,
    },
    DatasetSpec {
        paper_name: "CUR_10M",
        name: "CUR_400K",
        kind: WorkloadKind::Cur,
        versions: 1000,
        branches: 100,
        inserts: 360,
    },
];

/// The Figure 3 model-comparison datasets (SCI_1M..SCI_8M equivalents).
pub fn fig3_datasets() -> Vec<DatasetSpec> {
    SCI[..4].to_vec()
}

/// The partitioning-experiment datasets (Figures 9–13).
pub fn partitioning_datasets() -> Vec<DatasetSpec> {
    let mut v = vec![SCI[0].clone(), SCI[2].clone(), SCI[4].clone()];
    v.extend(CUR.iter().cloned());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_generate_consistent_workloads() {
        for spec in SCI.iter().take(2).chain(CUR.iter().take(1)) {
            let w = spec.generate();
            assert_eq!(w.num_versions(), spec.versions);
            assert!(w.num_records > 0);
            // |R| lands in the ballpark the name suggests (within 3×).
            let target: usize = match spec.name {
                "SCI_40K" | "CUR_40K" => 40_000,
                "SCI_80K" => 80_000,
                "SCI_200K" | "CUR_200K" => 200_000,
                _ => continue,
            };
            assert!(
                w.num_records > target / 3 && w.num_records < target * 3,
                "{}: |R| = {} vs target {target}",
                spec.name,
                w.num_records
            );
        }
    }

    #[test]
    fn cur_specs_have_merges() {
        let w = CUR[0].generate();
        assert!(w.parents.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn tiers_are_ordered_and_paper_reaches_the_paper() {
        use crate::generator::HistoryGen;
        use crate::oracle::Oracle;
        let smoke = ScaleTier::Smoke.history();
        let ci = ScaleTier::Ci.history();
        let paper = ScaleTier::Paper.history();
        assert!(smoke.versions < ci.versions && ci.versions < paper.versions);
        assert!(
            paper.versions >= 500,
            "paper tier must be ≥500 versions deep"
        );
        // ≥1M records without generating the paper tier: |R| is exactly
        // base + inserts per derived non-merge version; merges have no
        // churn, so count them at ci shape and scale the bound. Cheaper:
        // replay the ci tier and check the record-count formula holds,
        // then apply it to paper parameters with the worst-case merge
        // fraction observed at ci.
        let ci_oracle = Oracle::replay(HistoryGen::new(ci.clone()));
        let merges = ci_oracle
            .versions
            .iter()
            .filter(|v| v.parents.len() == 2)
            .count();
        let churn = ci_oracle.num_versions() - 1 - merges;
        assert_eq!(ci_oracle.num_records(), ci.base_rows + churn * ci.inserts);
        let merge_frac = merges as f64 / (ci_oracle.num_versions() - 1) as f64;
        let paper_churn = ((paper.versions - 1) as f64 * (1.0 - 1.25 * merge_frac)) as usize;
        assert!(
            paper.base_rows + paper_churn * paper.inserts >= 1_000_000,
            "paper tier must reach 1M records even at 1.25x the observed merge rate \
             (observed {merge_frac:.2}); the paper-tier run itself re-asserts the exact count"
        );
    }

    #[test]
    fn tier_histories_share_a_prefix_when_truncated() {
        use crate::generator::{HistoryEvent, HistoryGen, HistoryParams};
        let full = ScaleTier::Ci.history();
        let cut = HistoryParams {
            versions: 30,
            ..full.clone()
        };
        let long: Vec<HistoryEvent> = HistoryGen::new(full).take(30).collect();
        let short: Vec<HistoryEvent> = HistoryGen::new(cut).collect();
        assert_eq!(long, short);
    }
}
