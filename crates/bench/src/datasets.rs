//! The Table 2 dataset configurations, scaled for laptop-speed runs.
//!
//! The paper's datasets range from 1M to 10M records; every cost in the
//! system is linear in record count, so the experiments preserve their
//! *shape* at 1/25 scale (the default). Set the environment variable
//! `ORPHEUS_SCALE` to a larger multiplier to approach paper scale, e.g.
//! `ORPHEUS_SCALE=5` for ~1M-record runs of the *_40K datasets.

use crate::generator::{Workload, WorkloadKind, WorkloadParams};

/// A named dataset specification (a row of Table 2, scaled).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Paper name (e.g. "SCI_1M").
    pub paper_name: &'static str,
    /// Scaled name (e.g. "SCI_40K").
    pub name: &'static str,
    pub kind: WorkloadKind,
    pub versions: usize,
    pub branches: usize,
    pub inserts: usize,
}

impl DatasetSpec {
    /// Generate the workload at the current scale.
    pub fn generate(&self) -> Workload {
        let s = scale();
        let mut params = match self.kind {
            WorkloadKind::Sci => {
                WorkloadParams::sci(self.versions, self.branches, self.inserts * s)
            }
            WorkloadKind::Cur => {
                WorkloadParams::cur(self.versions, self.branches, self.inserts * s)
            }
        };
        params.seed = 42 ^ self.name.len() as u64 ^ (self.versions as u64) << 8;
        Workload::generate(params)
    }
}

/// Global scale multiplier from `ORPHEUS_SCALE` (default 1).
pub fn scale() -> usize {
    std::env::var("ORPHEUS_SCALE")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Scaled stand-ins for the paper's SCI_* rows of Table 2. Version counts
/// and branch counts keep the paper's |V|/|B| ratios; `inserts` scales |R|.
pub const SCI: [DatasetSpec; 5] = [
    DatasetSpec {
        paper_name: "SCI_1M",
        name: "SCI_40K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 200,
    },
    DatasetSpec {
        paper_name: "SCI_2M",
        name: "SCI_80K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 400,
    },
    DatasetSpec {
        paper_name: "SCI_5M",
        name: "SCI_200K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 1000,
    },
    DatasetSpec {
        paper_name: "SCI_8M",
        name: "SCI_320K",
        kind: WorkloadKind::Sci,
        versions: 200,
        branches: 20,
        inserts: 1600,
    },
    DatasetSpec {
        paper_name: "SCI_10M",
        name: "SCI_400K",
        kind: WorkloadKind::Sci,
        versions: 1000,
        branches: 100,
        inserts: 400,
    },
];

/// Scaled stand-ins for the paper's CUR_* rows.
pub const CUR: [DatasetSpec; 3] = [
    DatasetSpec {
        paper_name: "CUR_1M",
        name: "CUR_40K",
        kind: WorkloadKind::Cur,
        versions: 220,
        branches: 20,
        inserts: 180,
    },
    DatasetSpec {
        paper_name: "CUR_5M",
        name: "CUR_200K",
        kind: WorkloadKind::Cur,
        versions: 220,
        branches: 20,
        inserts: 900,
    },
    DatasetSpec {
        paper_name: "CUR_10M",
        name: "CUR_400K",
        kind: WorkloadKind::Cur,
        versions: 1000,
        branches: 100,
        inserts: 360,
    },
];

/// The Figure 3 model-comparison datasets (SCI_1M..SCI_8M equivalents).
pub fn fig3_datasets() -> Vec<DatasetSpec> {
    SCI[..4].to_vec()
}

/// The partitioning-experiment datasets (Figures 9–13).
pub fn partitioning_datasets() -> Vec<DatasetSpec> {
    let mut v = vec![SCI[0].clone(), SCI[2].clone(), SCI[4].clone()];
    v.extend(CUR.iter().cloned());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_generate_consistent_workloads() {
        for spec in SCI.iter().take(2).chain(CUR.iter().take(1)) {
            let w = spec.generate();
            assert_eq!(w.num_versions(), spec.versions);
            assert!(w.num_records > 0);
            // |R| lands in the ballpark the name suggests (within 3×).
            let target: usize = match spec.name {
                "SCI_40K" | "CUR_40K" => 40_000,
                "SCI_80K" => 80_000,
                "SCI_200K" | "CUR_200K" => 200_000,
                _ => continue,
            };
            assert!(
                w.num_records > target / 3 && w.num_records < target * 3,
                "{}: |R| = {} vs target {target}",
                spec.name,
                w.num_records
            );
        }
    }

    #[test]
    fn cur_specs_have_merges() {
        let w = CUR[0].generate();
        assert!(w.parents.iter().any(|p| p.len() == 2));
    }
}
