//! A naive, obviously-correct reference model of OrpheusDB's versioning
//! semantics, used as the ground truth by the differential harness
//! (`crate::differential`).
//!
//! The oracle replays a [`HistoryEvent`] stream and maintains, with no
//! cleverness whatsoever:
//!
//! * the **version graph** — parent ids per version;
//! * the **rlist** of every version — a sorted `Vec<i64>` built by cloning
//!   the parent's list and applying deletes/inserts (merges take the
//!   sorted, deduplicated union of both parents);
//! * the **schema width at which each record was born**, which fully
//!   determines row contents: attribute `c` of record `r` is
//!   [`payload`]`(r, c)` for `c < width(r)` and NULL beyond (columns added
//!   after a record's birth read back as NULL).
//!
//! Rid assignment mirrors the engine's allocator — init rows get
//! `1..=n` in order, each commit's fresh rows get consecutive rids in
//! staged-row order — and the oracle *re-derives* it rather than trusting
//! the rids named in the events: [`Oracle::apply`] panics if its own
//! assignment ever disagrees with the generator's. The differential driver
//! then checks the real engine against this model version by version.
//!
//! All fields are public so tests can deliberately corrupt an oracle and
//! prove the differential gate fails non-vacuously (the mutation tests in
//! `crates/bench/tests/differential_oracle.rs`).

use crate::generator::{payload, HistoryEvent};

/// One version in the reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleVersion {
    /// 1-based version id (position in `Oracle::versions` + 1).
    pub vid: u64,
    /// Parent version ids, sorted.
    pub parents: Vec<u64>,
    /// Sorted record ids of this version.
    pub rlist: Vec<i64>,
}

/// The reference model. Build with [`Oracle::replay`] or feed events one
/// at a time with [`Oracle::apply`].
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    pub versions: Vec<OracleVersion>,
    /// `record_width[rid - 1]` = attribute count when record `rid` was
    /// born.
    pub record_width: Vec<u32>,
    /// Current CVD attribute count.
    pub width: usize,
}

impl Oracle {
    pub fn new() -> Oracle {
        Oracle::default()
    }

    /// Replay a whole event stream.
    pub fn replay(events: impl IntoIterator<Item = HistoryEvent>) -> Oracle {
        let mut oracle = Oracle::new();
        for event in events {
            oracle.apply(&event);
        }
        oracle
    }

    pub fn num_versions(&self) -> usize {
        self.versions.len()
    }

    pub fn num_records(&self) -> usize {
        self.record_width.len()
    }

    /// The version with id `vid` (1-based). Panics if out of range.
    pub fn version(&self, vid: u64) -> &OracleVersion {
        &self.versions[vid as usize - 1]
    }

    /// Attribute `col` of record `rid` — `Some(payload)` if the column
    /// existed when the record was born, `None` (NULL) otherwise.
    pub fn value(&self, rid: i64, col: usize) -> Option<i64> {
        let width = self.record_width[rid as usize - 1] as usize;
        (col < width).then(|| payload(rid, col))
    }

    /// The full expected row of record `rid`: its payload values up to its
    /// birth width. Columns beyond read back as NULL in the engine; the
    /// comparison side normalizes by trimming trailing NULLs.
    pub fn row(&self, rid: i64) -> Vec<i64> {
        let width = self.record_width[rid as usize - 1] as usize;
        (0..width).map(|c| payload(rid, c)).collect()
    }

    /// Apply one event. Panics (with the offending vid) on any internal
    /// inconsistency: wrong vid order, a delete of an absent rid, or a
    /// fresh rid that disagrees with the oracle's own allocator.
    pub fn apply(&mut self, event: &HistoryEvent) {
        match event {
            HistoryEvent::Init(init) => {
                assert!(self.versions.is_empty(), "Init must be the first event");
                self.width = init.attrs;
                let mut rlist = Vec::with_capacity(init.rows.len());
                for (i, (rid, _)) in init.rows.iter().enumerate() {
                    let expect = i as i64 + 1;
                    assert_eq!(
                        *rid, expect,
                        "oracle: init row {i} carries rid {rid}, allocator says {expect}"
                    );
                    self.record_width.push(init.attrs as u32);
                    rlist.push(expect);
                }
                self.versions.push(OracleVersion {
                    vid: 1,
                    parents: Vec::new(),
                    rlist,
                });
            }
            HistoryEvent::Commit(c) => {
                let expect_vid = self.versions.len() as u64 + 1;
                assert_eq!(
                    c.vid, expect_vid,
                    "oracle: commit carries vid {}, next version is {expect_vid}",
                    c.vid
                );
                if c.add_column.is_some() {
                    self.width += 1;
                }
                assert_eq!(c.width, self.width, "oracle: width drift at v{}", c.vid);

                // Start from the parent rlist(s): clone one parent, or take
                // the sorted deduplicated union of a merge's two parents.
                let mut rlist: Vec<i64> = c
                    .parents
                    .iter()
                    .flat_map(|&p| self.version(p).rlist.iter().copied())
                    .collect();
                rlist.sort_unstable();
                rlist.dedup();

                for &rid in &c.deletes {
                    match rlist.binary_search(&rid) {
                        Ok(i) => {
                            rlist.remove(i);
                        }
                        Err(_) => panic!(
                            "oracle: v{} deletes rid {rid} absent from its parents",
                            c.vid
                        ),
                    }
                }
                for (rid, _) in &c.inserts {
                    let expect = self.record_width.len() as i64 + 1;
                    assert_eq!(
                        *rid, expect,
                        "oracle: v{} insert carries rid {rid}, allocator says {expect}",
                        c.vid
                    );
                    self.record_width.push(self.width as u32);
                    rlist.push(expect);
                }
                rlist.sort_unstable();

                let mut parents = c.parents.clone();
                parents.sort_unstable();
                self.versions.push(OracleVersion {
                    vid: c.vid,
                    parents,
                    rlist,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{HistoryGen, HistoryParams};

    fn params() -> HistoryParams {
        HistoryParams {
            versions: 30,
            branches: 3,
            fork_every: 6,
            base_rows: 80,
            inserts: 20,
            attrs: 4,
            insert_fraction: 0.8,
            merge_prob: 0.4,
            skew: 0.5,
            evolve_every: 9,
            seed: 7,
        }
    }

    #[test]
    fn replay_accepts_generated_histories() {
        let oracle = Oracle::replay(HistoryGen::new(params()));
        assert_eq!(oracle.num_versions(), 30);
        assert!(oracle.num_records() > 80);
        assert!(oracle.width > 4, "evolution must widen the schema");
        // rlists are sorted and unique; parents are in range.
        for v in &oracle.versions {
            assert!(v.rlist.windows(2).all(|w| w[0] < w[1]));
            assert!(v.parents.iter().all(|&p| p < v.vid && p >= 1));
        }
    }

    #[test]
    fn values_respect_birth_width() {
        let oracle = Oracle::replay(HistoryGen::new(params()));
        // An init-era record never sees evolved columns...
        assert_eq!(oracle.value(1, 3), Some(payload(1, 3)));
        assert_eq!(oracle.value(1, 4), None);
        // ...while a record born after every evolution carries full width.
        let last = oracle.num_records() as i64;
        assert_eq!(
            oracle.record_width[last as usize - 1] as usize,
            oracle.width
        );
        assert_eq!(oracle.row(last).len(), oracle.width);
    }

    #[test]
    fn merge_rlists_are_parent_unions() {
        let oracle = Oracle::replay(HistoryGen::new(params()));
        let merge = oracle
            .versions
            .iter()
            .find(|v| v.parents.len() == 2)
            .expect("fixture has merges");
        let mut union: Vec<i64> = merge
            .parents
            .iter()
            .flat_map(|&p| oracle.version(p).rlist.iter().copied())
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(merge.rlist, union);
    }

    #[test]
    #[should_panic(expected = "allocator says")]
    fn apply_rejects_rid_drift() {
        let mut events: Vec<HistoryEvent> = HistoryGen::new(params()).collect();
        if let HistoryEvent::Init(init) = &mut events[0] {
            init.rows[3].0 = 999;
        }
        let _ = Oracle::replay(events);
    }
}
