//! # orpheus-bench
//!
//! The versioning benchmark of Maddox et al. \[37\] (re-implemented from its
//! description in Section 5.1 of the OrpheusDB paper) plus the experiment
//! harness that regenerates every table and figure of the paper's
//! evaluation. See EXPERIMENTS.md at the repository root for the
//! paper-vs-measured record.
//!
//! * [`generator`] — SCI (branching tree) and CUR (merging DAG) workloads,
//!   parameterized by branches `B`, record count `|R|` and per-version
//!   modification count `I` exactly as Table 2;
//! * [`datasets`] — the Table 2 configurations, scaled by
//!   `ORPHEUS_SCALE` so the full suite runs on a laptop;
//! * [`loader`] — bulk-load a generated workload into an [`orpheus_core`]
//!   CVD under any of the five data models;
//! * [`harness`] — the paper's timing protocol (repeat, drop extremes,
//!   average) and aligned table printing;
//! * [`experiments`] — one module per table/figure;
//! * [`oracle`] — a naive reference model of the versioning semantics;
//! * [`differential`] — replays one generated history through every
//!   executor (in-process, concurrent, async, remote, WAL-reopened) and
//!   gates on agreement with the oracle.

pub mod datasets;
pub mod differential;
pub mod experiments;
pub mod generator;
pub mod harness;
pub mod loader;
pub mod oracle;

pub use datasets::{DatasetSpec, ScaleTier};
pub use differential::{run_differential, Arm, ArmStats, DiffConfig};
pub use generator::{
    HistoryEvent, HistoryGen, HistoryParams, Workload, WorkloadKind, WorkloadParams,
};
pub use oracle::Oracle;
