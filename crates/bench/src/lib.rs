//! # orpheus-bench
//!
//! The versioning benchmark of Maddox et al. \[37\] (re-implemented from its
//! description in Section 5.1 of the OrpheusDB paper) plus the experiment
//! harness that regenerates every table and figure of the paper's
//! evaluation. See EXPERIMENTS.md at the repository root for the
//! paper-vs-measured record.
//!
//! * [`generator`] — SCI (branching tree) and CUR (merging DAG) workloads,
//!   parameterized by branches `B`, record count `|R|` and per-version
//!   modification count `I` exactly as Table 2;
//! * [`datasets`] — the Table 2 configurations, scaled by
//!   `ORPHEUS_SCALE` so the full suite runs on a laptop;
//! * [`loader`] — bulk-load a generated workload into an [`orpheus_core`]
//!   CVD under any of the five data models;
//! * [`harness`] — the paper's timing protocol (repeat, drop extremes,
//!   average) and aligned table printing;
//! * [`experiments`] — one module per table/figure.

pub mod datasets;
pub mod experiments;
pub mod generator;
pub mod harness;
pub mod loader;

pub use datasets::DatasetSpec;
pub use generator::{Workload, WorkloadKind, WorkloadParams};
