//! The request-batching benchmark: the `batch_storm` workload driven
//! unbatched (one `execute` per request) and batched (through
//! `Executor::batch`) on identical instances, for both the
//! single-threaded `OrpheusDB` executor and a concurrent `Session` over a
//! `SharedOrpheusDB`.
//!
//! Besides timing, this bin is the CI sanity gate for batching: it exits
//! non-zero when a batched arm's version graph diverges from its
//! unbatched arm on the same executor, when a batched arm leaks staged
//! artifacts, or when batched throughput falls below 0.9x unbatched —
//! correctness plus gross-regression only, no absolute-time assertions.
//! The throughput floor is re-measured (up to two retries) before it
//! fails the run, so one noisy trial on a slow shared runner cannot flake
//! the gate; the correctness checks are deterministic and never retried.
//!
//! Emits `BENCH_batching.json` (directory from `ORPHEUS_BENCH_OUT`,
//! default the working directory) and prints paper-style tables.
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_BATCH_CVDS` (default 3) — CVDs in the workload.
//! * `ORPHEUS_BATCH_ROUNDS` (default 4) — rounds per stream.
//! * `ORPHEUS_BATCH_CLUSTER` (default 4) — checkouts of the same version
//!   per CVD per round (the shared-scan opportunity).
//! * `ORPHEUS_BATCH_SIZE` (default 0) — requests per submitted batch;
//!   0 submits the whole stream as one batch.
//! * `ORPHEUS_STORM_RECORDS` (default 400) — records per generated CVD.
//! * `ORPHEUS_TRIALS` (default 3) — timing trials per arm.
//!
//! Run with `cargo run --release -p orpheus-bench --bin batching`.

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    batch_storm, drive, drive_batched, env_usize, ms, protocol_mean, trials, write_bench_json,
    BusStats, JsonObject, Report,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::{Executor, ModelKind, OrpheusDB, Request, Result, SharedOrpheusDB, Vid};

/// One CVD's version graph, stripped of wall-clock-dependent fields:
/// (vid, parents, record count, message) per version. Two arms running
/// the same stream must produce identical graphs.
type Graph = Vec<(String, Vec<(Vid, Vec<Vid>, u64, String)>)>;

fn graph_of(odb: &OrpheusDB) -> Graph {
    odb.ls()
        .into_iter()
        .map(|name| {
            let entries = odb
                .log_entries(&name)
                .expect("listed CVDs have histories")
                .into_iter()
                .map(|e| (e.vid, e.parents, e.num_records, e.message))
                .collect();
            (name, entries)
        })
        .collect()
}

/// Timing and outcome of one arm: protocol-averaged stream time, the
/// request count, the resulting version graph, and leftover staged names.
struct Arm {
    label: &'static str,
    total_ms: f64,
    requests: usize,
    graph: Graph,
    staged_leftovers: usize,
}

impl Arm {
    fn throughput_rps(&self) -> f64 {
        if self.total_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.requests as f64 / (self.total_ms / 1e3)
    }
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("batching bench failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<bool> {
    let cvds = env_usize("ORPHEUS_BATCH_CVDS", 3).max(1);
    let rounds = env_usize("ORPHEUS_BATCH_ROUNDS", 4).max(1);
    let cluster = env_usize("ORPHEUS_BATCH_CLUSTER", 4).max(1);
    let batch_size = env_usize("ORPHEUS_BATCH_SIZE", 0);
    let records = env_usize("ORPHEUS_STORM_RECORDS", 400).max(8);
    let trials = trials();
    let versions = 8;

    let workload = Workload::generate(WorkloadParams::sci(versions, 2, records / versions));
    let names: Vec<String> = (0..cvds).map(|c| format!("cvd{c}")).collect();
    let build = || -> Result<OrpheusDB> {
        let mut odb = OrpheusDB::new();
        for name in &names {
            load_workload(&mut odb, name, &workload, ModelKind::SplitByRlist)?;
        }
        Ok(odb)
    };
    let stream = || batch_storm(&names, rounds, cluster);

    // Each trial drives a fresh instance (the stream commits versions, so
    // re-running on the same instance would not be the same experiment);
    // the kept sample times follow the paper's drop-extremes protocol.
    let run_arm = |label: &'static str, batched: bool, concurrent: bool| -> Result<Arm> {
        let mut samples = Vec::with_capacity(trials);
        let mut outcome: Option<(usize, Graph, usize)> = None;
        for _ in 0..trials {
            let odb = build()?;
            let requests: Vec<Request> = stream();
            let drive_arm = |executor: &mut dyn DynExecutor| -> Result<BusStats> {
                if batched {
                    executor.drive_batched(requests.clone(), batch_size)
                } else {
                    executor.drive(requests.clone())
                }
            };
            let (stats, graph, leftovers) = if concurrent {
                let shared = SharedOrpheusDB::new(odb);
                let mut session = shared.session("batcher")?;
                let stats = drive_arm(&mut session)?;
                let graph = shared.read(graph_of);
                let leftovers = shared.read(|odb| odb.staged().len());
                (stats, graph, leftovers)
            } else {
                let mut odb = odb;
                let stats = drive_arm(&mut odb)?;
                let graph = graph_of(&odb);
                let leftovers = odb.staged().len();
                (stats, graph, leftovers)
            };
            samples.push(stats.total_ms);
            outcome = Some((stats.requests(), graph, leftovers));
        }
        let (requests, graph, staged_leftovers) = outcome.expect("trials >= 1");
        Ok(Arm {
            label,
            total_ms: protocol_mean(samples),
            requests,
            graph,
            staged_leftovers,
        })
    };

    let measure = || -> Result<[Arm; 4]> {
        Ok([
            run_arm("sequential/unbatched", false, false)?,
            run_arm("sequential/batched", true, false)?,
            run_arm("session/unbatched", false, true)?,
            run_arm("session/batched", true, true)?,
        ])
    };
    let throughput_ok = |arms: &[Arm; 4]| {
        arms.chunks(2)
            .all(|pair| pair[1].throughput_rps() >= 0.9 * pair[0].throughput_rps())
    };

    // The throughput floor is a *relative* gate, but one noisy trial on a
    // shared runner can still dip below it with no code regression —
    // re-measure up to twice before declaring failure. The deterministic
    // checks (graph equality, staged leaks) are never retried away: they
    // are evaluated on whatever measurement is final.
    let mut arms = measure()?;
    for retry in 1..=2 {
        if throughput_ok(&arms) {
            break;
        }
        eprintln!("throughput floor missed; re-measuring (retry {retry}/2)");
        arms = measure()?;
    }

    let mut report = Report::new(&["arm", "requests", "total_ms", "req_per_s"]);
    for arm in &arms {
        report.row(vec![
            arm.label.to_string(),
            arm.requests.to_string(),
            ms(arm.total_ms),
            format!("{:.1}", arm.throughput_rps()),
        ]);
    }
    println!(
        "batch_storm ({cvds} CVDs, {rounds} rounds, cluster {cluster}, \
         {records} records/CVD, batch size {batch_size}, {trials} trial(s))"
    );
    println!("{}", report.render());

    // -- the sanity gate ----------------------------------------------------
    let mut ok = true;
    for pair in arms.chunks(2) {
        let (unbatched, batched) = (&pair[0], &pair[1]);
        if batched.graph != unbatched.graph {
            eprintln!(
                "GATE: version graph of {} diverges from {}",
                batched.label, unbatched.label
            );
            ok = false;
        }
        for arm in pair {
            if arm.staged_leftovers != 0 {
                eprintln!(
                    "GATE: {} left {} staged artifact(s) behind",
                    arm.label, arm.staged_leftovers
                );
                ok = false;
            }
        }
        let floor = 0.9 * unbatched.throughput_rps();
        if batched.throughput_rps() < floor {
            eprintln!(
                "GATE: {} throughput {:.1} req/s fell below 0.9x {} ({:.1} req/s)",
                batched.label,
                batched.throughput_rps(),
                unbatched.label,
                unbatched.throughput_rps()
            );
            ok = false;
        }
    }
    let speedup = |unbatched: &Arm, batched: &Arm| {
        batched.throughput_rps() / unbatched.throughput_rps().max(f64::EPSILON)
    };
    println!(
        "speedup (batched vs unbatched): sequential {:.2}x, session {:.2}x",
        speedup(&arms[0], &arms[1]),
        speedup(&arms[2], &arms[3]),
    );

    let arm_json = |arm: &Arm| {
        JsonObject::new()
            .num("total_ms", arm.total_ms)
            .int("requests", arm.requests as u64)
            .num("req_per_s", arm.throughput_rps())
    };
    let json = JsonObject::new()
        .str("bench", "batch_storm")
        .int("cvds", cvds as u64)
        .int("rounds", rounds as u64)
        .int("cluster", cluster as u64)
        .int("batch_size", batch_size as u64)
        .int("records_per_cvd", records as u64)
        .int("trials", trials as u64)
        .obj("sequential_unbatched", arm_json(&arms[0]))
        .obj("sequential_batched", arm_json(&arms[1]))
        .obj("session_unbatched", arm_json(&arms[2]))
        .obj("session_batched", arm_json(&arms[3]))
        .num("speedup_sequential", speedup(&arms[0], &arms[1]))
        .num("speedup_session", speedup(&arms[2], &arms[3]))
        .int("gate_ok", ok as u64);
    let path = write_bench_json("batching", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("batching sanity gate FAILED");
    }
    Ok(ok)
}

/// Object-safe driving surface so one closure serves both executor types
/// (`Executor::batch` is generic and cannot be called through `dyn
/// Executor` directly).
trait DynExecutor {
    fn drive(&mut self, requests: Vec<Request>) -> Result<BusStats>;
    fn drive_batched(&mut self, requests: Vec<Request>, batch_size: usize) -> Result<BusStats>;
}

impl<E: Executor> DynExecutor for E {
    fn drive(&mut self, requests: Vec<Request>) -> Result<BusStats> {
        drive(self, requests)
    }

    fn drive_batched(&mut self, requests: Vec<Request>, batch_size: usize) -> Result<BusStats> {
        drive_batched(self, requests, batch_size)
    }
}
