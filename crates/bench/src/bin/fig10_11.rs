//! Regenerates the paper's Figure 10_11 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig10_11`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig10_11::run());
}
