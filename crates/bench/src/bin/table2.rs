//! Regenerates the paper's table2 output. Run with
//! `cargo run --release -p orpheus-bench --bin table2`.
fn main() {
    println!("{}", orpheus_bench::experiments::table2::run());
}
