//! The chaos gate: the full fault-tolerant service stack under
//! simultaneous packet loss, load shedding, and disk faults. The parent
//! seeds a WAL directory (one CVD per client), re-execs itself as a
//! **server** process serving that directory, puts a frame-aware
//! [`FlakyProxy`] in front of it, and re-execs N **client** processes
//! that drive checkout → commit rounds *through the proxy* while it
//! severs connections in the lost-ACK window — the exact spot where a
//! naive client double-commits and a naive server loses acked work.
//!
//! The trial matrix exercises each resilience layer:
//! * `drops` — connection cuts only: reconnect + session resume +
//!   idempotent replay carry every commit through exactly once;
//! * `overload` — a tiny queue-depth cap plus no cuts: every shed
//!   surfaces as typed retryable [`CoreError::Overloaded`] and the
//!   client backoff grinds the storm through anyway;
//! * `append-fault` — `ORPHEUS_WAL_FAULT=append:<k>` degrades the WAL
//!   mid-storm (cuts also active); clients observe typed
//!   [`CoreError::Degraded`] refusals, the parent drives the documented
//!   operator recovery (`recover` on the server's stdin → checkpoint),
//!   and the storm resumes;
//! * `fsync-fault` — the same with the failure *after* the bytes landed,
//!   so the triggering commit is legally recoverable-but-unacked.
//!
//! After each trial the parent reopens the WAL directory via
//! [`recovery::open`] and gates on the at-most-once contract:
//! **no duplicate commits** (every commit message at most once), **no
//! lost acked commits** (every acked message recovered), **no phantom
//! commits** (extras only from attempts whose ACK window was severed or
//! whose outcome a disk fault made unknowable), and **bit-for-bit graph
//! equality** (zeroed logical clocks) against an in-process replay of
//! exactly the recovered commit sequence. Client-observed refusals must
//! all be typed retryable errors; anything else fails the trial. Failing
//! WAL directories and client/proxy logs are copied to
//! `target/chaos-artifacts/` before the bin exits non-zero.
//!
//! Emits `BENCH_chaos.json` with the retry/shed/dedup counters from both
//! sides of the wire.
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_TRIALS` (default 3) — rounds over the trial matrix.
//! * `ORPHEUS_CHAOS_CLIENTS` (default 3) — client processes (= CVDs).
//! * `ORPHEUS_CHAOS_OPS` (default 6) — checkout → commit rounds each.
//! * `ORPHEUS_CHAOS_RECORDS` (default 24) — records per seeded CVD.
//!
//! Run with `cargo run --release -p orpheus-bench --bin chaos_storm`.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use orpheus_bench::harness::{env_usize, trials, write_bench_json, JsonObject};
use orpheus_bench::loader::bench_schema;
use orpheus_core::cvd::VersionMeta;
use orpheus_core::request::{Checkout, Commit, CreateUser, Executor, Init, Request};
use orpheus_core::{recovery, CoreError, ModelKind, OrpheusDB, Result, SharedOrpheusDB};
use orpheus_engine::Value;
use orpheus_net::{FlakyProxy, NetServer, RemoteExecutor, RetryPolicy, ServerConfig};

fn seed_rows(records: usize, cvd_index: usize) -> Vec<Vec<Value>> {
    (0..records)
        .map(|r| {
            vec![
                Value::Int(r as i64),
                Value::Int((r as i64) * 3),
                Value::Int((r as i64) % 5),
                Value::Int(cvd_index as i64),
            ]
        })
        .collect()
}

fn seed_requests(clients: usize, records: usize) -> Vec<Request> {
    (0..clients)
        .map(|i| {
            Init::cvd(format!("chaos_c{i}"))
                .schema(bench_schema(4))
                .rows(seed_rows(records, i))
                .model(ModelKind::SplitByRlist)
                .into()
        })
        .collect()
}

/// The comparable slice of one CVD (see `crash_storm`): version graph
/// and rlists, with the checkpoint-dependent logical clocks zeroed.
type CvdState = (Vec<VersionMeta>, Vec<Vec<i64>>);

fn cvd_state(odb: &OrpheusDB, name: &str) -> Result<CvdState> {
    let cvd = odb.cvd(name)?;
    let versions = cvd
        .versions
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.checkout_t = None;
            m.commit_t = 0;
            m
        })
        .collect();
    Ok((
        versions,
        cvd.version_rids.iter().map(|r| (**r).clone()).collect(),
    ))
}

fn main() {
    match std::env::var("ORPHEUS_CHAOS_ROLE").as_deref() {
        Ok("server") => {
            if let Err(e) = server_main() {
                eprintln!("chaos_storm server failed: {e}");
                std::process::exit(2);
            }
        }
        Ok("client") => std::process::exit(client_main()),
        _ => match run() {
            Ok(true) => {}
            Ok(false) => std::process::exit(1),
            Err(e) => {
                eprintln!("chaos_storm failed: {e}");
                std::process::exit(1);
            }
        },
    }
}

/// The served instance: opens the WAL directory (a disk fault may be
/// armed via `ORPHEUS_WAL_FAULT`, read at attach time) and serves it
/// until stdin says `exit`. `recover` runs the documented operator path
/// out of degraded mode — an explicit checkpoint — and reports the
/// outcome. Self-protection counters go to stdout on the way out.
fn server_main() -> Result<()> {
    let dir = std::env::var("ORPHEUS_CHAOS_DIR")
        .map_err(|_| CoreError::Io("ORPHEUS_CHAOS_DIR not set".to_string()))?;
    let depth = env_usize("ORPHEUS_CHAOS_QUEUE_DEPTH", 0);
    let shared = recovery::open_shared(Path::new(&dir))?;
    let mut config = ServerConfig::default();
    if depth > 0 {
        config.max_queue_depth = depth;
    }
    let server = NetServer::bind_with("127.0.0.1:0", shared.clone(), config)?;
    println!("addr {}", server.local_addr());
    std::io::stdout().flush().ok();

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| CoreError::Io(format!("server stdin: {e}")))?;
        if n == 0 {
            break;
        }
        match line.trim() {
            "exit" => break,
            "recover" => {
                match recovery::checkpoint_shared(&shared) {
                    Ok(generation) => println!("recovered {generation}"),
                    Err(e) => println!("recover-failed {e}"),
                }
                std::io::stdout().flush().ok();
            }
            _ => {}
        }
    }
    let stats = server.stats();
    server.shutdown();
    println!("stat shed {}", stats.shed);
    println!("stat deduped {}", stats.deduped);
    println!("stat deadline {}", stats.deadline_exceeded);
    println!("stat refused {}", stats.refused_connections);
    Ok(())
}

/// Block until mutations are accepted again after a degraded window, by
/// probing with uniquely-named `create_user` requests (catalog
/// mutations, so they cross the WAL but never touch a CVD's graph).
fn wait_for_recovery(remote: &mut RemoteExecutor, index: usize, seq: &mut usize) {
    for _ in 0..400 {
        *seq += 1;
        let probe: Request = CreateUser::named(format!("probe_{index}_{seq}")).into();
        match remote.execute(probe) {
            Ok(_) => return,
            Err(
                CoreError::Degraded(_)
                | CoreError::Overloaded { .. }
                | CoreError::ResponseTimeout { .. }
                | CoreError::Network(_),
            ) => std::thread::sleep(Duration::from_millis(25)),
            // Anything else (e.g. "user exists" from a replayed probe)
            // proves a mutation crossed the WAL: writes are back.
            Err(_) => return,
        }
    }
}

/// One client process: checkout → commit rounds against its own CVD,
/// classifying every outcome. Output protocol (parsed by the parent):
/// `acked <msg>` / `attempted <msg>` (outcome unknowable: the error came
/// back on a severed ACK or a degraded disk) / `gaveup <msg>` /
/// `unexpected <detail>` lines, then one
/// `done <reconnects> <replayed> <overload_retries> <shed> <unexpected>`.
fn client_main() -> i32 {
    let addr = std::env::var("ORPHEUS_CHAOS_ADDR").expect("client needs ORPHEUS_CHAOS_ADDR");
    let index = env_usize("ORPHEUS_CHAOS_CLIENT", 0);
    let ops = env_usize("ORPHEUS_CHAOS_OPS", 6).max(1);
    let cvd = format!("chaos_c{index}");
    let policy = RetryPolicy {
        max_reconnects: 64,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(200),
        jitter: 0.5,
        overload_retries: 2,
    };
    let mut remote = match RemoteExecutor::connect_with_policy(
        addr.as_str(),
        &format!("user{index}"),
        Duration::from_secs(10),
        policy,
    ) {
        Ok(remote) => remote,
        Err(e) => {
            eprintln!("chaos client {index} cannot connect: {e}");
            return 2;
        }
    };

    let mut out = String::new();
    let mut shed = 0u64;
    let mut unexpected = 0u64;
    let mut probe_seq = 0usize;
    let sleep = || std::thread::sleep(Duration::from_millis(20));
    use std::fmt::Write as _;

    'rounds: for j in 0..ops {
        let table = format!("__chaos_t{index}_{j}");
        let msg = format!("c{index} r{j}");

        // Stage the checkout. Checkouts are served even in degraded mode
        // and are deduplicated by session replay, so every failure here
        // is safely retryable; a timed-out attempt that actually landed
        // surfaces as "already staged" on the retry, which is success.
        let mut staged = false;
        for _ in 0..60 {
            let checkout: Request = Checkout::of(&cvd).version(1u64).into_table(&table).into();
            match remote.execute(checkout) {
                Ok(_) => {
                    staged = true;
                    break;
                }
                Err(CoreError::Overloaded { .. }) => {
                    shed += 1;
                    sleep();
                }
                Err(
                    CoreError::Degraded(_)
                    | CoreError::ResponseTimeout { .. }
                    | CoreError::Network(_),
                ) => sleep(),
                Err(e) if e.to_string().contains("staged") => {
                    staged = true;
                    break;
                }
                Err(e) => {
                    writeln!(out, "unexpected checkout {msg}: {e}").expect("string write");
                    unexpected += 1;
                    continue 'rounds;
                }
            }
        }
        if !staged {
            writeln!(out, "gaveup {msg}").expect("string write");
            continue;
        }

        // Commit — the at-most-once-sensitive half. A shed provably never
        // executed (safe to resend); a degraded refusal or a timeout
        // leaves the outcome unknowable (the op may be the fault trigger,
        // or acked into a dead socket), so it is recorded as `attempted`
        // and never resent — the recovery gate allows exactly these as
        // recovered-but-unacked.
        let commit: Request = Commit::table(&table).message(&msg).into();
        let mut resolved = false;
        for _ in 0..60 {
            match remote.execute(commit.clone()) {
                Ok(_) => {
                    writeln!(out, "acked {msg}").expect("string write");
                    resolved = true;
                    break;
                }
                Err(e @ CoreError::Overloaded { .. }) => {
                    if !e.is_retryable() || e.retry_after_ms().is_none() {
                        writeln!(out, "unexpected shed without retry hint: {e}")
                            .expect("string write");
                        unexpected += 1;
                    }
                    shed += 1;
                    sleep();
                }
                Err(CoreError::Degraded(_)) => {
                    writeln!(out, "attempted {msg}").expect("string write");
                    resolved = true;
                    wait_for_recovery(&mut remote, index, &mut probe_seq);
                    break;
                }
                Err(CoreError::ResponseTimeout { .. } | CoreError::Network(_)) => {
                    writeln!(out, "attempted {msg}").expect("string write");
                    resolved = true;
                    break;
                }
                Err(e) => {
                    writeln!(out, "unexpected commit {msg}: {e}").expect("string write");
                    unexpected += 1;
                    resolved = true;
                    break;
                }
            }
        }
        if !resolved {
            writeln!(out, "attempted {msg}").expect("string write");
        }
    }

    let rs = remote.retry_stats();
    writeln!(
        out,
        "done {} {} {} {shed} {unexpected}",
        rs.reconnects, rs.replayed, rs.overload_retries
    )
    .expect("string write");
    print!("{out}");
    0
}

/// Recursive copy for failure artifacts.
fn copy_dir(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let dst = to.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &dst)?;
        } else {
            std::fs::copy(entry.path(), &dst)?;
        }
    }
    Ok(())
}

/// One cell of the trial matrix.
struct Spec {
    name: &'static str,
    /// Proxy cut period in request frames (0 = transparent proxy).
    drop_every: u64,
    /// Server queue-depth cap (0 = the default, effectively uncapped
    /// at this storm's scale).
    queue_depth: usize,
    /// WAL fault to arm in the server process: `(point, countdown)`.
    fault: Option<(&'static str, u64)>,
    /// Whether the parent drives `recover` on the server's stdin.
    recover: bool,
}

fn matrix(clients: usize, ops: usize) -> Vec<Spec> {
    // Mid-storm countdown: roughly half the storm's commits have landed
    // when the disk starts failing.
    let mid = ((clients * ops) / 2).max(2) as u64;
    vec![
        Spec {
            name: "drops",
            drop_every: 5,
            queue_depth: 0,
            fault: None,
            recover: false,
        },
        Spec {
            name: "overload",
            drop_every: 0,
            queue_depth: 1,
            fault: None,
            recover: false,
        },
        Spec {
            name: "append-fault",
            drop_every: 6,
            queue_depth: 0,
            fault: Some(("append", mid)),
            recover: true,
        },
        Spec {
            name: "fsync-fault",
            drop_every: 0,
            queue_depth: 0,
            fault: Some(("fsync", mid)),
            recover: true,
        },
    ]
}

/// What one trial reported, counters aggregated across its clients.
#[derive(Default)]
struct TrialReport {
    acked: u64,
    attempted: u64,
    cuts: u64,
    reconnects: u64,
    replayed: u64,
    overload_retries: u64,
    client_shed: u64,
    unexpected: u64,
    server_shed: u64,
    server_deduped: u64,
    server_deadline: u64,
    server_refused: u64,
    failures: Vec<String>,
}

fn run_trial(
    spec: &Spec,
    round: usize,
    clients: usize,
    ops: usize,
    records: usize,
) -> Result<TrialReport> {
    let exe = std::env::current_exe()
        .map_err(|e| CoreError::Io(format!("cannot locate the bench binary: {e}")))?;
    let dir = std::env::temp_dir().join(format!(
        "orpheus-chaosstorm-{}-{}-{}",
        std::process::id(),
        round,
        spec.name
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed through the logged catalog path, then close; the server
    // process reopens the directory the way any restart would.
    let seeds = seed_requests(clients, records);
    {
        let shared = recovery::open_shared(&dir)?;
        let mut admin = shared.session("admin")?;
        for request in seeds.clone() {
            admin.execute(request)?;
        }
    }

    let mut server = Command::new(&exe)
        .env("ORPHEUS_CHAOS_ROLE", "server")
        .env("ORPHEUS_CHAOS_DIR", &dir)
        .env("ORPHEUS_CHAOS_QUEUE_DEPTH", spec.queue_depth.to_string())
        .envs(
            spec.fault
                .map(|(point, n)| ("ORPHEUS_WAL_FAULT", format!("{point}:{n}"))),
        )
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| CoreError::Io(format!("cannot spawn server: {e}")))?;
    let mut server_in = server.stdin.take().expect("stdin piped");
    let mut server_out = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    server_out
        .read_line(&mut line)
        .map_err(|e| CoreError::Io(format!("server reported no address: {e}")))?;
    let addr = line
        .strip_prefix("addr ")
        .ok_or_else(|| CoreError::Network(format!("bad server banner: {line:?}")))?
        .trim()
        .to_string();

    let proxy = FlakyProxy::start(addr.as_str(), spec.drop_every)?;
    let proxy_addr = proxy.local_addr().to_string();

    let mut children: Vec<Child> = (0..clients)
        .map(|i| {
            Command::new(&exe)
                .env("ORPHEUS_CHAOS_ROLE", "client")
                .env("ORPHEUS_CHAOS_ADDR", &proxy_addr)
                .env("ORPHEUS_CHAOS_CLIENT", i.to_string())
                .env("ORPHEUS_CHAOS_OPS", ops.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| CoreError::Io(format!("cannot spawn client: {e}")))
        })
        .collect::<Result<Vec<_>>>()?;

    // Babysit the storm: in recovery trials, periodically drive the
    // operator path (`recover` → checkpoint) so degraded windows end.
    // Checkpointing a healthy instance is harmless, so the cadence needs
    // no coordination with when the fault actually fires.
    let mut last_recover = Instant::now();
    loop {
        let all_done = children
            .iter_mut()
            .all(|c| matches!(c.try_wait(), Ok(Some(_))));
        if all_done {
            break;
        }
        if spec.recover && last_recover.elapsed() >= Duration::from_millis(300) {
            let _ = server_in.write_all(b"recover\n");
            let _ = server_in.flush();
            last_recover = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut report = TrialReport::default();
    let mut acked: Vec<BTreeSet<String>> = vec![BTreeSet::new(); clients];
    let mut attempted: Vec<BTreeSet<String>> = vec![BTreeSet::new(); clients];
    let mut client_logs = String::new();
    for (i, child) in children.into_iter().enumerate() {
        let output = child
            .wait_with_output()
            .map_err(|e| CoreError::Io(format!("client did not finish: {e}")))?;
        let stdout = String::from_utf8_lossy(&output.stdout);
        client_logs.push_str(&format!("--- client {i} ---\n{stdout}"));
        if !output.status.success() {
            report
                .failures
                .push(format!("client {i} exited with {}", output.status));
            continue;
        }
        let mut done = false;
        for line in stdout.lines() {
            if let Some(msg) = line.strip_prefix("acked ") {
                acked[i].insert(msg.to_string());
            } else if let Some(msg) = line.strip_prefix("attempted ") {
                attempted[i].insert(msg.to_string());
            } else if let Some(detail) = line.strip_prefix("unexpected ") {
                report
                    .failures
                    .push(format!("client {i} unexpected outcome: {detail}"));
            } else if let Some(rest) = line.strip_prefix("done ") {
                let mut parts = rest.split_whitespace();
                let mut next = || {
                    parts
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0)
                };
                report.reconnects += next();
                report.replayed += next();
                report.overload_retries += next();
                report.client_shed += next();
                report.unexpected += next();
                done = true;
            }
        }
        if !done {
            report
                .failures
                .push(format!("client {i} reported no result"));
        }
        report.acked += acked[i].len() as u64;
        report.attempted += attempted[i].len() as u64;
    }

    // Stop the server through its own graceful path and collect its
    // self-protection counters.
    let _ = server_in.write_all(b"exit\n");
    let _ = server_in.flush();
    let mut rest = String::new();
    let _ = server_out.read_to_string(&mut rest);
    let _ = server.wait();
    for line in rest.lines() {
        if let Some(rest) = line.strip_prefix("stat ") {
            let mut parts = rest.split_whitespace();
            let (key, value) = (parts.next().unwrap_or(""), parts.next());
            let value = value.and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            match key {
                "shed" => report.server_shed = value,
                "deduped" => report.server_deduped = value,
                "deadline" => report.server_deadline = value,
                "refused" => report.server_refused = value,
                _ => {}
            }
        }
    }
    report.cuts = proxy.cuts();
    proxy.stop();

    // -- verification -------------------------------------------------------
    // Reopen the directory the way a restart would and hold the run to
    // the at-most-once contract, per CVD.
    let recovered = recovery::open(&dir)?;
    for i in 0..clients {
        let name = format!("chaos_c{i}");
        let entries = recovered.log_entries(&name)?;
        // Skip the seed version; everything after it is storm commits.
        let messages: Vec<String> = entries.iter().skip(1).map(|e| e.message.clone()).collect();

        let unique: BTreeSet<&String> = messages.iter().collect();
        if unique.len() != messages.len() {
            report.failures.push(format!(
                "{name}: duplicate commit in the recovered graph: {messages:?}"
            ));
        }
        for msg in &acked[i] {
            if !messages.iter().any(|m| m == msg) {
                report
                    .failures
                    .push(format!("{name}: acked commit {msg:?} lost"));
            }
        }
        for msg in &messages {
            if !acked[i].contains(msg) && !attempted[i].contains(msg) {
                report.failures.push(format!(
                    "{name}: phantom commit {msg:?} (never acked or attempted)"
                ));
            }
        }

        // Graph equality: replay exactly the recovered commit sequence
        // in-process and require bit-for-bit equal state (modulo clocks).
        let reference = SharedOrpheusDB::new(OrpheusDB::new());
        {
            let mut admin = reference.session("admin")?;
            admin.execute(seeds[i].clone())?;
            let mut session = reference.session(&format!("user{i}"))?;
            for (k, msg) in messages.iter().enumerate() {
                let table = format!("__ref_{i}_{k}");
                session.execute(Checkout::of(&name).version(1u64).into_table(&table).into())?;
                session.execute(Commit::table(&table).message(msg).into())?;
            }
        }
        let got = cvd_state(&recovered, &name)?;
        let want = reference.read(|odb| cvd_state(odb, &name))?;
        if got != want {
            report.failures.push(format!(
                "{name}: recovered graph diverges from the in-process replay of its own \
                 commit sequence ({} vs {} versions)",
                got.0.len(),
                want.0.len()
            ));
        }
    }

    if report.failures.is_empty() {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        let artifacts =
            PathBuf::from("target/chaos-artifacts").join(format!("round{round}-{}", spec.name));
        if let Err(e) = copy_dir(&dir, &artifacts) {
            eprintln!("warning: could not save failure artifact: {e}");
        } else {
            let log = format!(
                "proxy: {} cuts, {} forwarded requests\n\n{client_logs}",
                report.cuts,
                proxy_forwarded_note()
            );
            let _ = std::fs::write(artifacts.join("clients.log"), log);
            eprintln!("saved failing WAL dir + logs to {}", artifacts.display());
        }
    }
    Ok(report)
}

/// The proxy is consumed by `stop()` before artifact writing; its cut
/// count is already in the report, so the log line only needs a marker.
fn proxy_forwarded_note() -> &'static str {
    "see BENCH_chaos.json"
}

fn run() -> Result<bool> {
    let rounds = trials();
    let clients = env_usize("ORPHEUS_CHAOS_CLIENTS", 3).max(1);
    let ops = env_usize("ORPHEUS_CHAOS_OPS", 6).max(1);
    let records = env_usize("ORPHEUS_CHAOS_RECORDS", 24).max(1);

    let mut ok = true;
    let mut totals = TrialReport::default();
    let mut trial_count = 0usize;
    for round in 0..rounds {
        for spec in matrix(clients, ops) {
            trial_count += 1;
            let report = run_trial(&spec, round, clients, ops, records)?;
            if report.failures.is_empty() {
                println!(
                    "trial {} (round {round}): ok ({} acked, {} attempted, {} cuts, \
                     {} replayed, {} shed)",
                    spec.name,
                    report.acked,
                    report.attempted,
                    report.cuts,
                    report.replayed,
                    report.server_shed
                );
            } else {
                ok = false;
                for f in &report.failures {
                    eprintln!("trial {} (round {round}): GATE: {f}", spec.name);
                }
            }
            totals.acked += report.acked;
            totals.attempted += report.attempted;
            totals.cuts += report.cuts;
            totals.reconnects += report.reconnects;
            totals.replayed += report.replayed;
            totals.overload_retries += report.overload_retries;
            totals.client_shed += report.client_shed;
            totals.unexpected += report.unexpected;
            totals.server_shed += report.server_shed;
            totals.server_deduped += report.server_deduped;
            totals.server_deadline += report.server_deadline;
            totals.server_refused += report.server_refused;
        }
    }
    if totals.unexpected > 0 {
        eprintln!(
            "GATE: {} refusal(s) were not typed retryable errors",
            totals.unexpected
        );
        ok = false;
    }
    println!(
        "chaos_storm: {trial_count} trial(s), {clients} client(s) x {ops} rounds, {records} \
         records/CVD"
    );

    let json = JsonObject::new()
        .str("bench", "chaos_storm")
        .int("trials", trial_count as u64)
        .int("clients", clients as u64)
        .int("ops_per_client", ops as u64)
        .int("records_per_cvd", records as u64)
        .int("acked_commits", totals.acked)
        .int("attempted_unacked", totals.attempted)
        .int("proxy_cuts", totals.cuts)
        .int("client_reconnects", totals.reconnects)
        .int("client_replayed", totals.replayed)
        .int("client_overload_retries", totals.overload_retries)
        .int("client_shed_surfaced", totals.client_shed)
        .int("server_shed", totals.server_shed)
        .int("server_deduped", totals.server_deduped)
        .int("server_deadline_exceeded", totals.server_deadline)
        .int("server_refused_connections", totals.server_refused)
        .int("untyped_refusals", totals.unexpected)
        .int("gate_ok", ok as u64);
    let path = write_bench_json("chaos", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("chaos_storm at-most-once gate FAILED");
    }
    Ok(ok)
}
