//! Regenerates the paper's Figure 20_23 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig20_23`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig9::run_appendix());
}
