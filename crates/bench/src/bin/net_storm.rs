//! The network benchmark: a real multi-process client/server run. The
//! parent process loads the SCI workload into a shared instance, binds a
//! `NetServer` on an ephemeral port, and re-execs **itself** N times as
//! client processes (`ORPHEUS_NET_ROLE=client`); every client opens a
//! `RemoteExecutor` connection and drives its own `clustered_storm`
//! stream over TCP — separate address spaces, a real socket, the full
//! handshake/frame/codec path.
//!
//! Two arms, identical streams:
//! * `net/request` — one round trip per request (`execute`), which is
//!   also where the per-request latency samples (p50/p99) come from;
//! * `net/pipelined` — each client ships its whole stream as **one**
//!   batch frame and the server pipelines it through the async executor,
//!   the wire amortization `--batch` users get.
//!
//! Besides timing, this bin is the CI sanity gate for the service stack:
//! it exits non-zero when either arm's committed version graph diverges
//! from a sequential in-process reference of the same streams
//! (order-insensitive, as in `async_storm`) or leaves different staged
//! artifacts behind — i.e. running OrpheusDB over the wire must be
//! *indistinguishable in outcome* from running it in-process.
//!
//! Emits `BENCH_net.json` (directory from `ORPHEUS_BENCH_OUT`, default
//! the working directory) with req/s per arm and latency percentiles.
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_NET_CLIENTS` (default 4) — client processes.
//! * `ORPHEUS_STORM_CVDS` (default 2) — CVDs; client `i` targets CVD
//!   `i % M`.
//! * `ORPHEUS_STORM_OPS` (default 5) — rounds per client.
//! * `ORPHEUS_STORM_CLUSTER` (default 4) — checkouts per round.
//! * `ORPHEUS_STORM_RECORDS` (default 400) — records per generated CVD.
//! * `ORPHEUS_TRIALS` (default 3) — timing trials per arm.
//!
//! Run with `cargo run --release -p orpheus-bench --bin net_storm`.

use std::fmt::Write as _;
use std::process::{Command, Stdio};
use std::time::Instant;

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    clustered_storm, drive, env_usize, ms, protocol_mean, storm_json, trials, write_bench_json,
    JsonObject, Report, StormStats,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::{CoreError, Executor, ModelKind, OrpheusDB, Result, SharedOrpheusDB, Vid};
use orpheus_net::{NetServer, RemoteExecutor};

/// One CVD's committed history, order-insensitive (see `async_storm`):
/// concurrent clients may permute commit arrival, so version *ids* are
/// free while the multiset of (parents, record count, message) is not.
type Graph = Vec<(String, Vec<(Vec<Vid>, u64, String)>)>;

fn graph_of(odb: &OrpheusDB) -> Graph {
    odb.ls()
        .into_iter()
        .map(|name| {
            let mut entries: Vec<(Vec<Vid>, u64, String)> = odb
                .log_entries(&name)
                .expect("listed CVDs have histories")
                .into_iter()
                .map(|e| (e.parents, e.num_records, e.message))
                .collect();
            entries.sort();
            (name, entries)
        })
        .collect()
}

fn main() {
    // Child processes re-enter here with the role variable set.
    if let Ok(addr) = std::env::var("ORPHEUS_NET_ADDR") {
        if std::env::var("ORPHEUS_NET_ROLE").as_deref() == Ok("client") {
            let index = env_usize("ORPHEUS_NET_CLIENT", 0);
            let pipelined = std::env::var("ORPHEUS_NET_MODE").as_deref() == Ok("pipelined");
            match client_main(&addr, index, pipelined) {
                Ok(()) => return,
                Err(e) => {
                    eprintln!("net_storm client {index} failed: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("net_storm bench failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The child: connect, drive the stream, report samples on stdout.
/// Output protocol (parsed by the parent): zero or more `lat_us <v>`
/// lines, one `retry <reconnects> <replayed> <overload_retries>` line,
/// then one `done <requests> <wall_ms>` line.
fn client_main(addr: &str, index: usize, pipelined: bool) -> Result<()> {
    let cvds = env_usize("ORPHEUS_STORM_CVDS", 2).max(1);
    let ops = env_usize("ORPHEUS_STORM_OPS", 5).max(1);
    let cluster = env_usize("ORPHEUS_STORM_CLUSTER", 4);
    let stream = clustered_storm(&format!("cvd{}", index % cvds), index, ops, cluster);
    let requests = stream.len();

    let mut remote = RemoteExecutor::connect(addr, &format!("user{index}"))?;
    let mut report = String::new();
    let start = Instant::now();
    if pipelined {
        for (i, result) in remote.batch(stream).into_iter().enumerate() {
            result.map_err(|e| CoreError::Network(format!("batched request {i}: {e}")))?;
        }
    } else {
        for request in stream {
            let t0 = Instant::now();
            remote.execute(request)?;
            let us = t0.elapsed().as_secs_f64() * 1e6;
            writeln!(report, "lat_us {us:.1}").expect("string write");
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let rs = remote.retry_stats();
    writeln!(
        report,
        "retry {} {} {}",
        rs.reconnects, rs.replayed, rs.overload_retries
    )
    .expect("string write");
    writeln!(report, "done {requests} {wall_ms:.3}").expect("string write");
    print!("{report}");
    Ok(())
}

/// What one fleet of client processes reported back.
struct FleetRun {
    requests: usize,
    /// Max client wall (the storm convention: run ends when the last
    /// client finishes).
    wall_ms: f64,
    latencies_us: Vec<f64>,
    graph: Graph,
    staged: usize,
    resilience: ResilienceCounters,
}

/// Retry/shed counters from both ends of the wire — the healthy-path
/// baseline for the chaos-tier numbers (all zeros on a clean run).
#[derive(Default, Clone, Copy)]
struct ResilienceCounters {
    reconnects: u64,
    replayed: u64,
    overload_retries: u64,
    server_shed: u64,
    server_deduped: u64,
}

impl ResilienceCounters {
    fn add(&mut self, other: ResilienceCounters) {
        self.reconnects += other.reconnects;
        self.replayed += other.replayed;
        self.overload_retries += other.overload_retries;
        self.server_shed += other.server_shed;
        self.server_deduped += other.server_deduped;
    }
}

/// One measured arm across trials.
struct Arm {
    label: &'static str,
    wall_ms: f64,
    requests: usize,
    latencies_us: Vec<f64>,
    graph: Graph,
    staged: usize,
    resilience: ResilienceCounters,
}

impl Arm {
    fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ms / 1e3)
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run() -> Result<bool> {
    let clients = env_usize("ORPHEUS_NET_CLIENTS", 4).max(1);
    let cvds = env_usize("ORPHEUS_STORM_CVDS", 2).max(1);
    let ops = env_usize("ORPHEUS_STORM_OPS", 5).max(1);
    let cluster = env_usize("ORPHEUS_STORM_CLUSTER", 4);
    let records = env_usize("ORPHEUS_STORM_RECORDS", 400).max(1);
    let trials = trials();
    let versions = 8;
    let exe = std::env::current_exe()
        .map_err(|e| CoreError::Io(format!("cannot locate the bench binary: {e}")))?;

    let workload = Workload::generate(WorkloadParams::sci(versions, 2, records / versions));
    let build = || -> Result<OrpheusDB> {
        let mut odb = OrpheusDB::new();
        for c in 0..cvds {
            load_workload(
                &mut odb,
                &format!("cvd{c}"),
                &workload,
                ModelKind::SplitByRlist,
            )?;
        }
        Ok(odb)
    };

    // The reference outcome: the same streams, concatenated in client
    // order, through a plain in-process sequential executor. Running over
    // the network must commit exactly this version set and stage exactly
    // these artifacts.
    let (reference, reference_staged) = {
        let mut odb = build()?;
        for i in 0..clients {
            drive(
                &mut odb,
                clustered_storm(&format!("cvd{}", i % cvds), i, ops, cluster),
            )?;
        }
        let staged = odb.staged().len();
        (graph_of(&odb), staged)
    };

    // One fleet: fresh instance, fresh server, N fresh client processes.
    let fleet = |mode: &str| -> Result<FleetRun> {
        let shared = SharedOrpheusDB::new(build()?);
        let server = NetServer::bind("127.0.0.1:0", shared.clone())?;
        let addr = server.local_addr().to_string();
        let spawn_err = |e: std::io::Error| CoreError::Io(format!("cannot spawn client: {e}"));
        let children = (0..clients)
            .map(|i| {
                Command::new(&exe)
                    .env("ORPHEUS_NET_ROLE", "client")
                    .env("ORPHEUS_NET_ADDR", &addr)
                    .env("ORPHEUS_NET_CLIENT", i.to_string())
                    .env("ORPHEUS_NET_MODE", mode)
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()
                    .map_err(spawn_err)
            })
            .collect::<Result<Vec<_>>>()?;
        let mut requests = 0usize;
        let mut wall_ms = 0f64;
        let mut latencies_us = Vec::new();
        let mut resilience = ResilienceCounters::default();
        for child in children {
            let output = child
                .wait_with_output()
                .map_err(|e| CoreError::Io(format!("client did not finish: {e}")))?;
            if !output.status.success() {
                return Err(CoreError::Network(format!(
                    "a client process exited with {}",
                    output.status
                )));
            }
            let stdout = String::from_utf8_lossy(&output.stdout);
            let mut done = false;
            for line in stdout.lines() {
                if let Some(v) = line.strip_prefix("lat_us ") {
                    latencies_us.push(v.parse::<f64>().unwrap_or(0.0));
                } else if let Some(rest) = line.strip_prefix("retry ") {
                    let mut parts = rest.split_whitespace();
                    let mut next = || {
                        parts
                            .next()
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(0)
                    };
                    resilience.reconnects += next();
                    resilience.replayed += next();
                    resilience.overload_retries += next();
                } else if let Some(rest) = line.strip_prefix("done ") {
                    let mut parts = rest.split_whitespace();
                    let n: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                    let w: f64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
                    requests += n;
                    wall_ms = wall_ms.max(w);
                    done = true;
                }
            }
            if !done {
                return Err(CoreError::Network(
                    "a client process reported no result".to_string(),
                ));
            }
        }
        let stats = server.stats();
        resilience.server_shed = stats.shed;
        resilience.server_deduped = stats.deduped;
        server.shutdown();
        let graph = shared.read(graph_of);
        let staged = shared.read(|odb| odb.staged().len());
        Ok(FleetRun {
            requests,
            wall_ms,
            latencies_us,
            graph,
            staged,
            resilience,
        })
    };

    let run_arm = |label: &'static str, mode: &str| -> Result<Arm> {
        let mut samples = Vec::with_capacity(trials);
        let mut latencies_us = Vec::new();
        let mut resilience = ResilienceCounters::default();
        let mut outcome: Option<FleetRun> = None;
        for _ in 0..trials {
            let run = fleet(mode)?;
            samples.push(run.wall_ms);
            latencies_us.extend_from_slice(&run.latencies_us);
            resilience.add(run.resilience);
            outcome = Some(run);
        }
        let last = outcome.expect("trials >= 1");
        Ok(Arm {
            label,
            wall_ms: protocol_mean(samples),
            requests: last.requests,
            latencies_us,
            graph: last.graph,
            staged: last.staged,
            resilience,
        })
    };

    let arms = [
        run_arm("net/request", "request")?,
        run_arm("net/pipelined", "pipelined")?,
    ];

    let mut lat = arms[0].latencies_us.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);

    let mut report = Report::new(&["arm", "clients", "requests", "wall_ms", "req_per_s"]);
    for arm in &arms {
        report.row(vec![
            arm.label.to_string(),
            clients.to_string(),
            arm.requests.to_string(),
            ms(arm.wall_ms),
            format!("{:.1}", arm.throughput_rps()),
        ]);
    }
    println!(
        "net_storm ({clients} client processes x {ops} rounds x {cluster} checkouts, {cvds} \
         CVDs, {records} records/CVD, {trials} trial(s))"
    );
    println!("{}", report.render());
    println!(
        "round-trip latency: p50 {p50:.0}us, p99 {p99:.0}us over {} samples",
        lat.len()
    );

    // -- the sanity gate ----------------------------------------------------
    let mut ok = true;
    for arm in &arms {
        if arm.graph != reference {
            eprintln!(
                "GATE: version graph of {} diverges from the in-process reference",
                arm.label
            );
            ok = false;
        }
        if arm.staged != reference_staged {
            eprintln!(
                "GATE: {} left {} staged artifact(s) (in-process reference: {})",
                arm.label, arm.staged, reference_staged
            );
            ok = false;
        }
    }

    let stats = |arm: &Arm| StormStats {
        wall_ms: arm.wall_ms,
        requests: arm.requests,
        cores: orpheus_bench::harness::detected_parallelism(),
        per_thread: Vec::new(),
    };
    let json = JsonObject::new()
        .str("bench", "net_storm")
        .int("clients", clients as u64)
        .int("cvds", cvds as u64)
        .int("ops_per_client", ops as u64)
        .int("cluster", cluster as u64)
        .int("records_per_cvd", records as u64)
        .int("trials", trials as u64)
        .obj("net_request", storm_json(&stats(&arms[0])))
        .obj("net_pipelined", storm_json(&stats(&arms[1])))
        .num("lat_us_p50", p50)
        .num("lat_us_p99", p99)
        .num(
            "speedup_pipelined",
            arms[1].throughput_rps() / arms[0].throughput_rps().max(f64::EPSILON),
        )
        .int(
            "client_reconnects",
            arms.iter().map(|a| a.resilience.reconnects).sum(),
        )
        .int(
            "client_replayed",
            arms.iter().map(|a| a.resilience.replayed).sum(),
        )
        .int(
            "client_overload_retries",
            arms.iter().map(|a| a.resilience.overload_retries).sum(),
        )
        .int(
            "server_shed",
            arms.iter().map(|a| a.resilience.server_shed).sum(),
        )
        .int(
            "server_deduped",
            arms.iter().map(|a| a.resilience.server_deduped).sum(),
        )
        .int("gate_ok", ok as u64);
    let path = write_bench_json("net", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("net_storm sanity gate FAILED");
    }
    Ok(ok)
}
