//! The checkout/commit latency benchmark behind the record-access fast
//! path (OrpheusDB §6's central claim: version materialization latency —
//! not storage — is what makes bolt-on versioning usable).
//!
//! Three phases:
//!
//! 1. **Equality** (deterministic, never retried): for every model and
//!    every version, the fast path's rows must equal the retained Table 1
//!    SQL formulation row-for-row — checked *before* anything is timed.
//! 2. **The gated arm**: `version_rows` via the rid-index fast path vs the
//!    SQL formulation over every version of a split-by-rlist CVD. CI fails
//!    below a 1.5x speedup floor; the floor is re-measured (up to two
//!    retries) before failing so one noisy trial cannot flake the job.
//! 3. **Checkout/commit latency** across version counts and all models on
//!    both executors (direct `OrpheusDB` and a concurrent `Session`) — the
//!    end-to-end numbers the fast path feeds.
//!
//! Emits `BENCH_checkout_commit.json` via the shared emitter (directory
//! from `ORPHEUS_BENCH_OUT`, default the working directory).
//!
//! Knobs (environment variables):
//! * `ORPHEUS_CC_VERSIONS` (default 12) — versions in the generated CVDs.
//! * `ORPHEUS_CC_RECORDS` (default 600) — records per CVD.
//! * `ORPHEUS_CC_OPS` (default 4) — checkout→commit rounds per latency arm.
//! * `ORPHEUS_TRIALS` (default 3) — timing trials per arm.
//!
//! Run with `cargo run --release -p orpheus-bench --bin checkout_commit`.

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    drive, env_usize, ms, protocol_mean, time_op, trials, write_bench_json, JsonObject, Report,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::model::{self, ModelKind};
use orpheus_core::{Checkout, Commit, OrpheusDB, Request, Result, SharedOrpheusDB, Vid};
use orpheus_engine::Value;

const SPEEDUP_FLOOR: f64 = 1.5;

fn build(workload: &Workload, model: ModelKind) -> Result<OrpheusDB> {
    let mut odb = OrpheusDB::new();
    load_workload(&mut odb, "bench", workload, model)?;
    Ok(odb)
}

fn sorted(mut rows: Vec<(i64, Vec<Value>)>) -> Vec<(i64, Vec<Value>)> {
    rows.sort_by_key(|(rid, _)| *rid);
    rows
}

/// Row-for-row equality of fast path vs SQL formulation, every model,
/// every version. Returns the number of (model, version) pairs checked.
fn check_equality(workload: &Workload) -> Result<usize> {
    let mut checked = 0;
    for model in ModelKind::ALL {
        let mut odb = build(workload, model)?;
        let cvd = odb.cvd("bench")?.clone();
        for v in 1..=cvd.num_versions() as u64 {
            let fast = model::version_row_refs(&odb.engine, &cvd, Vid(v))?
                .unwrap_or_else(|| panic!("fast path not ready: {} v{v}", model.name()));
            // Both sides rid-sorted: heap order (a-table-per-version
            // returns insertion order) is not part of the contract.
            let fast = sorted(
                fast.into_iter()
                    .map(|(rid, values)| (rid, values.to_vec()))
                    .collect(),
            );
            let sql = sorted(model::version_rows_sql(&mut odb.engine, &cvd, Vid(v))?);
            if fast != sql {
                eprintln!(
                    "EQUALITY: {} v{v}: fast path returned {} row(s), SQL {} — contents diverge",
                    model.name(),
                    fast.len(),
                    sql.len()
                );
                return Err(orpheus_core::CoreError::Invalid(format!(
                    "fast path diverges from SQL formulation on {} v{v}",
                    model.name()
                )));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// The gated arm: total time to materialize every version of the
/// split-by-rlist CVD, fast path vs SQL formulation.
fn measure_version_rows(workload: &Workload, trials: usize) -> Result<(f64, f64)> {
    let mut odb = build(workload, ModelKind::SplitByRlist)?;
    let cvd = odb.cvd("bench")?.clone();
    let versions = cvd.num_versions() as u64;
    let engine = &mut odb.engine;
    let fast_ms = time_op(trials, || {
        for v in 1..=versions {
            let rows = model::version_rows(engine, &cvd, Vid(v)).expect("fast read");
            std::hint::black_box(rows.len());
        }
    });
    let sql_ms = time_op(trials, || {
        for v in 1..=versions {
            let rows = model::version_rows_sql(engine, &cvd, Vid(v)).expect("sql read");
            std::hint::black_box(rows.len());
        }
    });
    Ok((fast_ms, sql_ms))
}

/// `ops` rounds of checkout-latest → commit, through the request bus.
fn cycle_stream(latest: u64, ops: usize) -> Vec<Request> {
    let mut requests = Vec::with_capacity(ops * 2);
    for i in 0..ops {
        let table = format!("__cc_{i}");
        requests.push(
            Checkout::of("bench")
                .version(latest + i as u64)
                .into_table(&table)
                .into(),
        );
        requests.push(Commit::table(&table).message(format!("cycle {i}")).into());
    }
    requests
}

struct LatencyArm {
    checkout_ms: f64,
    commit_ms: f64,
    session_checkout_ms: f64,
    session_commit_ms: f64,
}

fn per_op(stats: &orpheus_bench::harness::BusStats, kind: orpheus_core::CommandKind) -> f64 {
    stats
        .per_command
        .iter()
        .find(|(k, _, _)| *k == kind)
        .map(|(_, count, total)| total / *count as f64)
        .unwrap_or(0.0)
}

fn measure_latency(
    workload: &Workload,
    model: ModelKind,
    ops: usize,
    trials: usize,
) -> Result<LatencyArm> {
    use orpheus_core::CommandKind;
    let latest = workload.num_versions() as u64;
    let mut direct_co = Vec::with_capacity(trials);
    let mut direct_cm = Vec::with_capacity(trials);
    let mut session_co = Vec::with_capacity(trials);
    let mut session_cm = Vec::with_capacity(trials);
    for _ in 0..trials {
        // Fresh instances per trial: commits grow the version graph, so
        // re-running in place would not repeat the same experiment.
        let mut odb = build(workload, model)?;
        let stats = drive(&mut odb, cycle_stream(latest, ops))?;
        direct_co.push(per_op(&stats, CommandKind::Checkout));
        direct_cm.push(per_op(&stats, CommandKind::Commit));

        let shared = SharedOrpheusDB::new(build(workload, model)?);
        let mut session = shared.session("bench_user")?;
        let stats = drive(&mut session, cycle_stream(latest, ops))?;
        session_co.push(per_op(&stats, CommandKind::Checkout));
        session_cm.push(per_op(&stats, CommandKind::Commit));
    }
    Ok(LatencyArm {
        checkout_ms: protocol_mean(direct_co),
        commit_ms: protocol_mean(direct_cm),
        session_checkout_ms: protocol_mean(session_co),
        session_commit_ms: protocol_mean(session_cm),
    })
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("checkout_commit bench failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<bool> {
    let versions = env_usize("ORPHEUS_CC_VERSIONS", 12).max(2);
    let records = env_usize("ORPHEUS_CC_RECORDS", 600).max(versions * 4);
    let ops = env_usize("ORPHEUS_CC_OPS", 4).max(1);
    let trials = trials();
    let workload = Workload::generate(WorkloadParams::sci(versions, 3, records / versions));

    // Phase 1: row-for-row equality before any timing. Deterministic —
    // a divergence is a correctness bug, never retried away.
    let checked = check_equality(&workload)?;
    println!(
        "equality: fast path == SQL formulation on {checked} (model, version) pairs \
         ({versions} versions, ~{records} records)"
    );

    // Phase 2: the CI-gated version_rows arm, re-measured before failing.
    let (mut fast_ms, mut sql_ms) = measure_version_rows(&workload, trials)?;
    for retry in 1..=2 {
        if sql_ms >= SPEEDUP_FLOOR * fast_ms {
            break;
        }
        eprintln!(
            "speedup floor missed ({:.2}x); re-measuring (retry {retry}/2)",
            sql_ms / fast_ms.max(f64::EPSILON)
        );
        (fast_ms, sql_ms) = measure_version_rows(&workload, trials)?;
    }
    let speedup = sql_ms / fast_ms.max(f64::EPSILON);
    let gate_ok = speedup >= SPEEDUP_FLOOR;
    println!(
        "version_rows (split-by-rlist, all {versions} versions): fast {} ms, sql {} ms — {:.2}x \
         (floor {SPEEDUP_FLOOR}x)",
        ms(fast_ms),
        ms(sql_ms),
        speedup
    );

    // Phase 3: end-to-end checkout/commit latency per model and executor.
    let mut report = Report::new(&[
        "model",
        "checkout_ms",
        "commit_ms",
        "session_checkout_ms",
        "session_commit_ms",
    ]);
    let mut model_json = Vec::new();
    for model in ModelKind::ALL {
        let arm = measure_latency(&workload, model, ops, trials)?;
        report.row(vec![
            model.name().to_string(),
            ms(arm.checkout_ms),
            ms(arm.commit_ms),
            ms(arm.session_checkout_ms),
            ms(arm.session_commit_ms),
        ]);
        model_json.push((
            model.name().replace('-', "_"),
            JsonObject::new()
                .num("checkout_ms", arm.checkout_ms)
                .num("commit_ms", arm.commit_ms)
                .num("session_checkout_ms", arm.session_checkout_ms)
                .num("session_commit_ms", arm.session_commit_ms),
        ));
    }
    println!("\ncheckout/commit latency ({ops} rounds per arm, {trials} trial(s), both executors)");
    println!("{}", report.render());

    let mut json = JsonObject::new()
        .str("bench", "checkout_commit")
        .int("versions", versions as u64)
        .int("records", records as u64)
        .int("ops", ops as u64)
        .int("trials", trials as u64)
        .int("equality_pairs", checked as u64)
        .obj(
            "version_rows",
            JsonObject::new()
                .num("fast_ms", fast_ms)
                .num("sql_ms", sql_ms)
                .num("speedup", speedup)
                .num("floor", SPEEDUP_FLOOR),
        );
    for (name, obj) in model_json {
        json = json.obj(&name, obj);
    }
    let json = json.int("gate_ok", gate_ok as u64);
    let path = write_bench_json("checkout_commit", json)?;
    println!("wrote {path}");

    if !gate_ok {
        eprintln!(
            "GATE: fast-path version_rows speedup {speedup:.2}x fell below the \
             {SPEEDUP_FLOOR}x floor"
        );
    }
    Ok(gate_ok)
}
