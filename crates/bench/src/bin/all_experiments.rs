//! Runs every experiment in sequence (Table 2 and all figures), printing
//! each paper-style report as it completes. `ORPHEUS_SCALE` scales dataset
//! sizes; `ORPHEUS_TRIALS` sets the timing repetition count.
use std::io::Write;

fn section(name: &str, f: fn() -> String) {
    println!("==================== {name} ====================");
    let out = f();
    println!("{out}");
    std::io::stdout().flush().expect("flush stdout");
}

fn main() {
    use orpheus_bench::experiments as e;
    section("table2", e::table2::run);
    section("fig10_11", e::fig10_11::run);
    section("fig14_15", e::fig14_15::run);
    section("fig19", e::fig19::run);
    section("fig12_13", e::fig12_13::run);
    section("fig3", e::fig3::run);
    section("fig9", e::fig9::run);
    section("fig20_23", e::fig9::run_appendix);
    section("compression", e::compression::run);
}
