//! Runs the differential oracle gate and every experiment in sequence
//! (Table 2 and all figures), printing each paper-style report as it
//! completes and writing a machine-readable `BENCH_experiments.json`.
//!
//! Knobs:
//! * `ORPHEUS_SCALE={smoke,ci,paper}` (or a numeric figure-dataset
//!   multiplier) — picks the differential history tier and scales the
//!   figure datasets;
//! * `ORPHEUS_EXPERIMENTS=differential,table2,…` — run only the named
//!   sections (default: all);
//! * `ORPHEUS_DIFF_ARMS=inproc,concurrent,async,remote,wal_reopen` —
//!   override the executor arms (default: all five; `paper` defaults to
//!   `inproc,concurrent` to bound the stress job's time and WAL volume);
//! * `ORPHEUS_TRIALS` — timing repetition count for the figure sections.
//!
//! The differential gate runs first and a divergence exits non-zero with
//! a seed-bearing reproduction line, so CI fails before any timing noise
//! is even measured.
use std::io::Write;
use std::time::Instant;

use orpheus_bench::datasets::{self, ScaleTier};
use orpheus_bench::differential::{run_differential, Arm, DiffConfig};
use orpheus_bench::harness::{self, JsonObject};
use orpheus_core::ModelKind;

fn main() {
    let tier = datasets::tier();
    let filter: Option<Vec<String>> = std::env::var("ORPHEUS_EXPERIMENTS")
        .ok()
        .map(|s| s.split(',').map(|n| n.trim().to_string()).collect());
    let enabled = |name: &str| filter.as_ref().is_none_or(|f| f.iter().any(|n| n == name));

    let mut json = JsonObject::new()
        .str("scale", tier.name())
        .int("scale_multiplier", datasets::scale() as u64)
        .int("trials", harness::trials() as u64);

    if enabled("differential") {
        println!("==================== differential ====================");
        let params = tier.history();
        let arms = match std::env::var("ORPHEUS_DIFF_ARMS") {
            Ok(s) => Arm::parse_list(&s).unwrap_or_else(|e| {
                eprintln!("ORPHEUS_DIFF_ARMS: {e}");
                std::process::exit(2);
            }),
            // The paper tier bounds stress-job time and WAL volume by
            // default; the smaller tiers run every arm.
            Err(_) if tier == ScaleTier::Paper => vec![Arm::InProcess, Arm::Concurrent],
            Err(_) => Arm::ALL.to_vec(),
        };
        let cfg = DiffConfig {
            params: params.clone(),
            model: ModelKind::SplitByRlist,
            arms,
            checkout_samples: tier.checkout_samples(),
            label: tier.name().to_string(),
        };
        let stats = run_differential(&cfg).unwrap_or_else(|e| {
            eprintln!("DIFFERENTIAL GATE FAILED\n{e}");
            std::process::exit(1);
        });
        let mut arms_json = JsonObject::new();
        for s in &stats {
            println!(
                "{:<12} {:>8} req  {:>10.0} req/s  p50 {:>9.1}us  p99 {:>10.1}us",
                s.arm, s.requests, s.req_per_s, s.p50_us, s.p99_us
            );
            arms_json = arms_json.obj(
                s.arm,
                JsonObject::new()
                    .int("requests", s.requests as u64)
                    .num("elapsed_s", s.elapsed_s)
                    .num("req_per_s", s.req_per_s)
                    .num("p50_us", s.p50_us)
                    .num("p99_us", s.p99_us),
            );
        }
        let (versions, records) = stats
            .first()
            .map(|s| (s.versions, s.records))
            .unwrap_or((params.versions, 0));
        println!(
            "history: {versions} versions, {records} records, seed {}",
            params.seed
        );
        if tier == ScaleTier::Paper && (records < 1_000_000 || versions < 500) {
            eprintln!(
                "paper tier must replay a >=1M-record, >=500-version history; \
                 got {records} records over {versions} versions"
            );
            std::process::exit(1);
        }
        json = json.obj(
            "differential",
            JsonObject::new()
                .str("model", "SplitByRlist")
                .int("seed", params.seed)
                .int("versions", versions as u64)
                .int("records", records as u64)
                .obj("arms", arms_json),
        );
        std::io::stdout().flush().expect("flush stdout");
    }

    use orpheus_bench::experiments as e;
    type Section = (&'static str, fn() -> String);
    let figures: [Section; 9] = [
        ("table2", e::table2::run),
        ("fig10_11", e::fig10_11::run),
        ("fig14_15", e::fig14_15::run),
        ("fig19", e::fig19::run),
        ("fig12_13", e::fig12_13::run),
        ("fig3", e::fig3::run),
        ("fig9", e::fig9::run),
        ("fig20_23", e::fig9::run_appendix),
        ("compression", e::compression::run),
    ];
    let mut sections = JsonObject::new();
    for (name, f) in figures {
        if !enabled(name) {
            continue;
        }
        println!("==================== {name} ====================");
        let t = Instant::now();
        let out = f();
        let elapsed = t.elapsed().as_secs_f64();
        println!("{out}");
        std::io::stdout().flush().expect("flush stdout");
        sections = sections.num(name, elapsed);
    }
    json = json.obj("sections_elapsed_s", sections);

    match harness::write_bench_json("experiments", json) {
        Ok(path) => println!("wrote {path}"),
        Err(err) => {
            eprintln!("cannot write BENCH_experiments.json: {err}");
            std::process::exit(1);
        }
    }
}
