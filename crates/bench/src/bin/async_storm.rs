//! The async-executor benchmark: the contention-storm workload (its
//! checkout-heavy `clustered_storm` form) driven
//! through (a) synchronous per-CVD sessions (`ConcurrentExecutor`, the
//! PR-2 treatment arm and the baseline here), (b) async handles one
//! request at a time (`execute` = submit + wait), and (c) async handles
//! pipelined (each thread submits its whole stream before awaiting the
//! first response) — all on identical instances and identical streams.
//!
//! Besides timing, this bin is the CI sanity gate for the async executor:
//! it exits non-zero when any arm's version graph diverges from a
//! sequential reference run of the same streams (order-insensitive
//! comparison — concurrent arms may interleave commits, so version *ids*
//! differ while the set of committed versions must not), when an arm
//! leaks staged artifacts, or when the best async arm's throughput falls
//! below the floor (default 1.0x the synchronous session arm — the async
//! layer must not lose to the executor it wraps, even on one core). The
//! floor is re-measured (up to two retries) before it fails the run;
//! graph checks are deterministic and never retried.
//!
//! Emits `BENCH_async.json` (directory from `ORPHEUS_BENCH_OUT`, default
//! the working directory), every storm arm rendered through the shared
//! `harness::storm_json` path so the recorded core count is the one the
//! run observed.
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_STORM_THREADS` (default 4) — concurrent clients.
//! * `ORPHEUS_STORM_CVDS` (default 2) — CVDs; client `i` targets CVD
//!   `i % M`, so the default contends two clients per CVD.
//! * `ORPHEUS_STORM_OPS` (default 6) — rounds per client.
//! * `ORPHEUS_STORM_CLUSTER` (default 4) — checkouts of the same version
//!   per round (see `harness::clustered_storm`; reads dominate writes,
//!   as in the paper's workloads — and the cross-client shared-scan
//!   opportunity only an executor that coalesces requests can take).
//! * `ORPHEUS_STORM_RECORDS` (default 400) — records per generated CVD.
//! * `ORPHEUS_ASYNC_WORKERS` (default: hardware-sized) — worker pool size.
//! * `ORPHEUS_ASYNC_FLOOR` (default 1.0) — required best-async/session
//!   throughput ratio.
//! * `ORPHEUS_TRIALS` (default 3) — timing trials per arm.
//!
//! Run with `cargo run --release -p orpheus-bench --bin async_storm`.

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    clustered_storm, drive, drive_parallel_batched, drive_parallel_overlapped, env_f64, env_usize,
    ms, overlap, protocol_mean, storm_json, trials, write_bench_json, JsonObject, Report,
    StormStats,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::{AsyncExecutor, ModelKind, OrpheusDB, Request, Result, SharedOrpheusDB, Vid};

/// One CVD's committed history, order-insensitive: version ids are
/// assigned in commit-arrival order (which concurrent arms are free to
/// permute), so versions compare as a sorted multiset of
/// (parents, record count, message) — messages are unique per
/// (thread, op) in `contention_storm`, making this exact.
type Graph = Vec<(String, Vec<(Vec<Vid>, u64, String)>)>;

fn graph_of(odb: &OrpheusDB) -> Graph {
    odb.ls()
        .into_iter()
        .map(|name| {
            let mut entries: Vec<(Vec<Vid>, u64, String)> = odb
                .log_entries(&name)
                .expect("listed CVDs have histories")
                .into_iter()
                .map(|e| (e.parents, e.num_records, e.message))
                .collect();
            entries.sort();
            (name, entries)
        })
        .collect()
}

/// One trial's raw outcome: stats, version graph, staged leftovers, and
/// the optional `(reads, overlapped)` overlap-meter counters.
type TrialOutcome = (StormStats, Graph, usize, Option<(u64, u64)>);

/// Timing and outcome of one arm: protocol-averaged storm stats, the
/// resulting (order-insensitive) version graph, and staged leftovers.
struct Arm {
    label: &'static str,
    wall_ms: f64,
    stats: StormStats,
    graph: Graph,
    staged_leftovers: usize,
    /// `(reads, overlapped)` from the [`overlap`] meter — reads that
    /// completed while a commit was in flight. `None` for the pipelined
    /// arm (whole-stream submission has no per-request completion hook).
    overlap: Option<(u64, u64)>,
}

impl Arm {
    fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.stats.requests as f64 / (self.wall_ms / 1e3)
    }
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("async_storm bench failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<bool> {
    let threads = env_usize("ORPHEUS_STORM_THREADS", 4).max(1);
    let cvds = env_usize("ORPHEUS_STORM_CVDS", 2).max(1);
    let ops = env_usize("ORPHEUS_STORM_OPS", 6).max(1);
    let cluster = env_usize("ORPHEUS_STORM_CLUSTER", 4);
    let records = env_usize("ORPHEUS_STORM_RECORDS", 400).max(1);
    // Explicit 0 selects coordinator-only (inline) mode; unset means the
    // hardware-sized default.
    let workers = std::env::var("ORPHEUS_ASYNC_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let floor = env_f64("ORPHEUS_ASYNC_FLOOR", 1.0);
    let trials = trials();
    let versions = 8;

    let workload = Workload::generate(WorkloadParams::sci(versions, 2, records / versions));
    let build = || -> Result<OrpheusDB> {
        let mut odb = OrpheusDB::new();
        for c in 0..cvds {
            load_workload(
                &mut odb,
                &format!("cvd{c}"),
                &workload,
                ModelKind::SplitByRlist,
            )?;
        }
        Ok(odb)
    };
    let streams = || -> Vec<Vec<Request>> {
        (0..threads)
            .map(|t| clustered_storm(&format!("cvd{}", t % cvds), t, ops, cluster))
            .collect()
    };
    let make_pool = |shared: &SharedOrpheusDB| -> AsyncExecutor {
        match workers {
            Some(n) => AsyncExecutor::with_workers(shared.clone(), n),
            None => AsyncExecutor::new(shared.clone()),
        }
    };

    // The reference outcome: the same streams, concatenated in thread
    // order, through a plain sequential executor. Concurrent arms must
    // commit exactly this set of versions (order-insensitively) and
    // leave exactly the same staged artifacts (the CSV exports stay
    // registered; everything else must be consumed).
    let (reference, reference_staged) = {
        let mut odb = build()?;
        for stream in streams() {
            drive(&mut odb, stream)?;
        }
        let staged = odb.staged().len();
        (graph_of(&odb), staged)
    };

    // Each trial drives a fresh instance; kept samples follow the
    // paper's drop-extremes protocol.
    let run_arm = |label: &'static str, mode: usize| -> Result<Arm> {
        let mut samples = Vec::with_capacity(trials);
        let mut outcome: Option<TrialOutcome> = None;
        for _ in 0..trials {
            let shared = SharedOrpheusDB::new(build()?);
            overlap::reset();
            let stats = match mode {
                0 => drive_parallel_overlapped(
                    |t| shared.session(&format!("user{t}")).expect("session"),
                    streams(),
                )?,
                1 => {
                    let pool = make_pool(&shared);
                    let stats = drive_parallel_overlapped(
                        |t| pool.handle(&format!("user{t}")).expect("handle"),
                        streams(),
                    )?;
                    drop(pool);
                    stats
                }
                _ => {
                    let pool = make_pool(&shared);
                    let stats = drive_parallel_batched(
                        |t| pool.handle(&format!("user{t}")).expect("handle"),
                        streams(),
                    )?;
                    drop(pool);
                    stats
                }
            };
            samples.push(stats.wall_ms);
            let graph = shared.read(graph_of);
            let leftovers = shared.read(|odb| odb.staged().len());
            let measured = (mode != 2).then(|| (overlap::reads(), overlap::overlapped()));
            outcome = Some((stats, graph, leftovers, measured));
        }
        let (stats, graph, staged_leftovers, measured) = outcome.expect("trials >= 1");
        Ok(Arm {
            label,
            wall_ms: protocol_mean(samples),
            stats,
            graph,
            staged_leftovers,
            overlap: measured,
        })
    };

    let measure = || -> Result<[Arm; 3]> {
        Ok([
            run_arm("session", 0)?,
            run_arm("async/request", 1)?,
            run_arm("async/pipelined", 2)?,
        ])
    };
    let best_async_ratio = |arms: &[Arm; 3]| {
        let session = arms[0].throughput_rps().max(f64::EPSILON);
        (arms[1].throughput_rps() / session).max(arms[2].throughput_rps() / session)
    };

    // The throughput floor is relative, but one noisy trial on a shared
    // runner can still dip below it with no code regression — re-measure
    // up to twice before declaring failure. The deterministic checks
    // (graph equality, staged leaks) are evaluated on the final
    // measurement and never retried away.
    let mut arms = measure()?;
    for retry in 1..=2 {
        if best_async_ratio(&arms) >= floor {
            break;
        }
        eprintln!("async throughput floor missed; re-measuring (retry {retry}/2)");
        arms = measure()?;
    }

    let pool_workers = {
        let probe = make_pool(&SharedOrpheusDB::default());
        probe.workers()
    };
    let mut report = Report::new(&[
        "arm",
        "threads",
        "requests",
        "wall_ms",
        "req_per_s",
        "reads_overlapped",
    ]);
    for arm in &arms {
        report.row(vec![
            arm.label.to_string(),
            threads.to_string(),
            arm.stats.requests.to_string(),
            ms(arm.wall_ms),
            format!("{:.1}", arm.throughput_rps()),
            match arm.overlap {
                Some((reads, overlapped)) => format!("{overlapped}/{reads}"),
                None => "-".to_string(),
            },
        ]);
    }
    println!(
        "async_storm ({threads} clients x {ops} rounds x {cluster} checkouts, {cvds} CVDs, \
         {records} records/CVD, {pool_workers} workers, {} cores, {trials} trial(s))",
        arms[0].stats.cores
    );
    println!("{}", report.render());

    // -- the sanity gate ----------------------------------------------------
    let mut ok = true;
    for arm in &arms {
        if arm.graph != reference {
            eprintln!(
                "GATE: version graph of {} diverges from the sequential reference",
                arm.label
            );
            ok = false;
        }
        if arm.staged_leftovers != reference_staged {
            eprintln!(
                "GATE: {} left {} staged artifact(s) behind (sequential reference: {})",
                arm.label, arm.staged_leftovers, reference_staged
            );
            ok = false;
        }
    }
    let ratio = best_async_ratio(&arms);
    if ratio < floor {
        eprintln!(
            "GATE: best async arm reached {:.2}x the session arm, below the {floor:.2}x floor",
            ratio
        );
        ok = false;
    }
    println!(
        "async vs session: request-at-a-time {:.2}x, pipelined {:.2}x (floor {floor:.2}x on \
         best arm)",
        arms[1].throughput_rps() / arms[0].throughput_rps().max(f64::EPSILON),
        arms[2].throughput_rps() / arms[0].throughput_rps().max(f64::EPSILON),
    );

    // Per-arm objects carry the protocol-mean wall time, so the req_per_s
    // inside each object is the same number the speedups and the gate
    // were computed from — one consistent figure per arm, not a last-trial
    // one next to a mean one.
    let mean_stats = |arm: &Arm| StormStats {
        wall_ms: arm.wall_ms,
        requests: arm.stats.requests,
        cores: arm.stats.cores,
        per_thread: Vec::new(),
    };
    // The overlap counters ride inside each arm's object (last trial's
    // figures — counts, not timings, so no protocol mean applies).
    let arm_json = |arm: &Arm, stats: &StormStats| {
        let json = storm_json(stats);
        match arm.overlap {
            Some((reads, overlapped)) => {
                json.int("reads", reads).int("reads_overlapped", overlapped)
            }
            None => json,
        }
    };
    let json = JsonObject::new()
        .str("bench", "async_storm")
        .int("threads", threads as u64)
        .int("cvds", cvds as u64)
        .int("ops_per_thread", ops as u64)
        .int("cluster", cluster as u64)
        .int("records_per_cvd", records as u64)
        .int("workers", pool_workers as u64)
        .int("trials", trials as u64)
        .obj("session", arm_json(&arms[0], &mean_stats(&arms[0])))
        .obj("async_request", arm_json(&arms[1], &mean_stats(&arms[1])))
        .obj("async_pipelined", arm_json(&arms[2], &mean_stats(&arms[2])))
        .num(
            "speedup_request",
            arms[1].throughput_rps() / arms[0].throughput_rps().max(f64::EPSILON),
        )
        .num(
            "speedup_pipelined",
            arms[2].throughput_rps() / arms[0].throughput_rps().max(f64::EPSILON),
        )
        .num("floor", floor)
        .int("gate_ok", ok as u64);
    let path = write_bench_json("async", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("async_storm sanity gate FAILED");
    }
    Ok(ok)
}
