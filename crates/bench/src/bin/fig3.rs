//! Regenerates the paper's Figure 3 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig3`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig3::run());
}
