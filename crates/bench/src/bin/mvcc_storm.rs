//! The MVCC snapshot-read benchmark: proves that checkouts and reads
//! complete **while a commit is in flight on the same CVD**, and measures
//! how much reader throughput survives a streaming writer.
//!
//! Two parts, both against one generated CVD:
//!
//! 1. **Gated round** (deterministic, machine-independent): a commit is
//!    parked *inside* the shard write lock via the test-only commit gate
//!    (`orpheus_core::concurrent::arm_commit_gate`). While the writer
//!    provably holds the lock, a reader session completes checkouts,
//!    versioned SELECTs, `log`, `diff`, and `version_rows` — every one of
//!    them counts as overlapped on the `harness::overlap` meter. Under
//!    per-CVD locking without MVCC snapshots these operations would block
//!    until the commit finished; any of them completing is direct
//!    evidence of snapshot reads. The round **hard-gates** on
//!    `overlapped > 0` (and in fact requires every gated read to
//!    overlap), then releases the writer and checks the resulting version
//!    graph against a sequential reference — the overlap must not have
//!    cost correctness. This part works identically on a 1-core
//!    container: the writer is parked on a condition variable, not a
//!    scheduler race.
//!
//! 2. **Throughput arms** (reported, floor-gated with re-measures): the
//!    same pure-read streams (versioned SELECTs + `log` + `diff`) run (a)
//!    on a quiet instance and (b) under a streaming checkout→commit
//!    writer hammering the same CVD. The reader throughput ratio
//!    storm/quiet must clear `ORPHEUS_MVCC_FLOOR` (default 0.25 — on one
//!    core the writer legitimately takes CPU, but readers must never be
//!    *excluded*, which is what a sub-floor collapse would show). Noisy
//!    misses re-measure up to twice, the repo's convention for relative
//!    floors; the graph-equality check against a sequential replay of the
//!    writer's rounds is deterministic and never retried.
//!
//! Emits `BENCH_mvcc.json` (directory from `ORPHEUS_BENCH_OUT`, default
//! the working directory).
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_STORM_READERS` (default 3) — reader threads in part 2.
//! * `ORPHEUS_STORM_OPS` (default 20) — read rounds per reader thread.
//! * `ORPHEUS_STORM_RECORDS` (default 400) — records in the generated CVD.
//! * `ORPHEUS_MVCC_FLOOR` (default 0.25) — required storm/quiet reader
//!   throughput ratio.
//! * `ORPHEUS_TRIALS` (default 3) — timing trials per throughput arm.
//!
//! Run with `cargo run --release -p orpheus-bench --bin mvcc_storm`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    drive, drive_parallel_overlapped, env_f64, env_usize, ms, overlap, protocol_mean, storm_json,
    trials, write_bench_json, JsonObject, Report, StormStats,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::concurrent::arm_commit_gate;
use orpheus_core::{
    Checkout, Commit, Diff, Executor, Log, ModelKind, OrpheusDB, Request, Response, Result, Run,
    SharedOrpheusDB, Vid,
};

const CVD: &str = "data";
const VERSIONS: usize = 8;

/// Order-insensitive committed history (same scheme as `async_storm`):
/// versions as a sorted multiset of (parents, record count, message).
fn graph_of(odb: &OrpheusDB) -> Vec<(Vec<Vid>, u64, String)> {
    let mut entries: Vec<(Vec<Vid>, u64, String)> = odb
        .log_entries(CVD)
        .expect("the benchmark CVD has a history")
        .into_iter()
        .map(|e| (e.parents, e.num_records, e.message))
        .collect();
    entries.sort();
    entries
}

/// One reader thread's pure-read stream: versioned SELECTs cycling over
/// the CVD's versions, plus `log` and `diff` — all MVCC-snapshot-served,
/// none of them ever takes the shard lock.
fn reader_stream(ops: usize) -> Vec<Request> {
    let mut requests = Vec::with_capacity(ops * 3);
    for i in 0..ops {
        let v = (i % VERSIONS) + 1;
        requests.push(Run::sql(format!("SELECT count(*) FROM VERSION {v} OF CVD {CVD}")).into());
        requests.push(Log::of(CVD).into());
        requests.push(Diff::of(CVD).between(1u64, (v as u64).max(2)).into());
    }
    requests
}

/// The writer's stream for `rounds` checkout→commit rounds — also the
/// sequential replay used for the graph-equality gate.
fn writer_stream(rounds: usize) -> Vec<Request> {
    let mut requests = Vec::with_capacity(rounds * 2);
    for i in 0..rounds {
        let table = format!("__mvcc_w_{i}");
        requests.push(Checkout::of(CVD).version(1u64).into_table(&table).into());
        requests.push(
            Commit::table(&table)
                .message(format!("mvcc writer round {i}"))
                .into(),
        );
    }
    requests
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("mvcc_storm bench failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Part 1: the commit gate holds a writer mid-commit inside the shard
/// write lock; a reader completes `gated_reads` operations against the
/// same CVD before the writer is released. Returns
/// `(reads, overlapped, graph_matches)`.
fn gated_round(build: impl Fn() -> Result<OrpheusDB>) -> Result<(u64, u64, bool)> {
    let shared = SharedOrpheusDB::new(build()?);
    let writer = shared.session("writer")?;
    writer.checkout(CVD, &[Vid(1)], "__mvcc_gate")?;

    overlap::reset();
    let gate = arm_commit_gate("__mvcc_gate");
    let committed = std::thread::scope(|scope| -> Result<Vid> {
        let handle = scope.spawn(|| -> Result<Vid> {
            // The meter's commit guard wraps the gated commit, so every
            // read below counts as overlapped — and genuinely is: the
            // commit holds the shard's write lock the whole time.
            let _in_flight = overlap::commit_guard();
            writer.commit("__mvcc_gate", "gated commit")
        });
        gate.wait_entered();

        // The writer now provably holds the CVD's write lock. Everything
        // below completes anyway, served from the MVCC snapshot.
        let mut reader = shared.session("reader")?;
        for i in 0..4 {
            reader.checkout(CVD, &[Vid(1)], &format!("__mvcc_gated_r{i}"))?;
            overlap::note_read();
        }
        for v in 1..=VERSIONS {
            let rows = reader.run(&format!("SELECT count(*) FROM VERSION {v} OF CVD {CVD}"))?;
            assert!(rows.scalar().is_some(), "versioned SELECT returned rows");
            overlap::note_read();
        }
        match reader.execute(Log::of(CVD).into())? {
            Response::Log { entries, .. } => {
                assert_eq!(entries.len(), VERSIONS, "snapshot log sees the graph");
            }
            other => panic!("log returned {other:?}"),
        }
        overlap::note_read();
        reader.diff(CVD, Vid(1), Vid(2))?;
        overlap::note_read();
        let rows = reader.version_rows(CVD, Vid(1))?;
        assert!(!rows.is_empty(), "version_rows resolves on the snapshot");
        overlap::note_read();

        // A parked checkout is readable by its owner mid-commit:
        // read-your-writes across the snapshot overlay.
        let staged = reader.sql("SELECT count(*) FROM __mvcc_gated_r0")?;
        assert!(staged.scalar().is_some());
        overlap::note_read();

        gate.release();
        handle.join().expect("gated writer panicked")
    })?;

    let (reads, overlapped) = (overlap::reads(), overlap::overlapped());
    assert_eq!(committed, Vid(VERSIONS as u64 + 1), "gated commit landed");

    // Clean up the parked reader checkouts, then compare against a
    // sequential reference: one checkout+commit on a fresh instance.
    let reader = shared.session("reader")?;
    for i in 0..4 {
        reader.discard(&format!("__mvcc_gated_r{i}"))?;
    }
    let storm_graph = shared.read(graph_of);
    let staged_left = shared.read(|odb| odb.staged().len());
    let reference = {
        let mut odb = build()?;
        odb.checkout(CVD, &[Vid(1)], "__mvcc_gate")?;
        odb.commit("__mvcc_gate", "gated commit")?;
        graph_of(&odb)
    };
    Ok((
        reads,
        overlapped,
        storm_graph == reference && staged_left == 0,
    ))
}

/// One throughput arm: readers drive their streams; with `with_writer`, a
/// writer thread streams checkout→commit rounds against the same CVD
/// until the readers finish. Returns the reader stats, the writer's round
/// count, and whether the final graph matches a sequential replay.
fn throughput_arm(
    build: impl Fn() -> Result<OrpheusDB>,
    readers: usize,
    ops: usize,
    with_writer: bool,
) -> Result<(StormStats, usize, bool)> {
    let shared = SharedOrpheusDB::new(build()?);
    let stop = Arc::new(AtomicBool::new(false));
    let streams: Vec<Vec<Request>> = (0..readers).map(|_| reader_stream(ops)).collect();

    overlap::reset();
    let (stats, rounds) = std::thread::scope(|scope| -> Result<(StormStats, usize)> {
        let writer_handle = with_writer.then(|| {
            let shared = shared.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || -> Result<usize> {
                let session = shared.session("writer")?;
                let mut i = 0;
                while !stop.load(Ordering::SeqCst) {
                    let table = format!("__mvcc_w_{i}");
                    session.checkout(CVD, &[Vid(1)], &table)?;
                    let _in_flight = overlap::commit_guard();
                    session.commit(&table, &format!("mvcc writer round {i}"))?;
                    i += 1;
                }
                Ok(i)
            })
        });
        let stats = drive_parallel_overlapped(
            |t| shared.session(&format!("reader{t}")).expect("session"),
            streams,
        );
        stop.store(true, Ordering::SeqCst);
        let rounds = match writer_handle {
            Some(handle) => handle.join().expect("writer thread panicked")?,
            None => 0,
        };
        Ok((stats?, rounds))
    })?;

    // Graph equality: the storm instance must hold exactly the graph a
    // sequential replay of the writer's rounds produces — readers change
    // nothing, and concurrent reads must not corrupt the writer.
    let storm_graph = shared.read(graph_of);
    let reference = {
        let mut odb = build()?;
        drive(&mut odb, writer_stream(rounds))?;
        graph_of(&odb)
    };
    let staged_left = shared.read(|odb| odb.staged().len());
    Ok((stats, rounds, storm_graph == reference && staged_left == 0))
}

fn run() -> Result<bool> {
    let readers = env_usize("ORPHEUS_STORM_READERS", 3).max(1);
    let ops = env_usize("ORPHEUS_STORM_OPS", 20).max(1);
    let records = env_usize("ORPHEUS_STORM_RECORDS", 400).max(1);
    let floor = env_f64("ORPHEUS_MVCC_FLOOR", 0.25);
    let trials = trials();

    let workload = Workload::generate(WorkloadParams::sci(VERSIONS, 2, records / VERSIONS));
    let build = || -> Result<OrpheusDB> {
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, CVD, &workload, ModelKind::SplitByRlist)?;
        Ok(odb)
    };

    // -- part 1: the gated round --------------------------------------------
    let (gated_reads, gated_overlapped, gated_graph_ok) = gated_round(build)?;
    let gated_ok = gated_overlapped > 0 && gated_overlapped == gated_reads && gated_graph_ok;
    println!(
        "gated round: {gated_overlapped}/{gated_reads} reads completed while the commit held \
         the shard lock (graph check: {})",
        if gated_graph_ok { "ok" } else { "DIVERGED" }
    );
    if !gated_ok {
        eprintln!("GATE: reads blocked behind (or corrupted) a held commit — MVCC reads broken");
    }

    // -- part 2: quiet vs under-writer reader throughput --------------------
    // Timing follows the paper's drop-extremes protocol per arm; the
    // relative floor re-measures up to twice (noise on shared runners),
    // while graph checks are deterministic and never retried away.
    let measure = |with_writer: bool| -> Result<(StormStats, usize, bool, u64, u64)> {
        let mut samples = Vec::with_capacity(trials);
        let mut last: Option<(StormStats, usize, bool)> = None;
        for _ in 0..trials {
            let outcome = throughput_arm(build, readers, ops, with_writer)?;
            samples.push(outcome.0.wall_ms);
            last = Some(outcome);
        }
        let (mut stats, rounds, graph_ok) = last.expect("trials >= 1");
        let (reads, overlapped) = (overlap::reads(), overlap::overlapped());
        stats.wall_ms = protocol_mean(samples);
        Ok((stats, rounds, graph_ok, reads, overlapped))
    };

    let mut quiet = measure(false)?;
    let mut storm = measure(true)?;
    let ratio = |quiet: &StormStats, storm: &StormStats| {
        storm.throughput_rps() / quiet.throughput_rps().max(f64::EPSILON)
    };
    for retry in 1..=2 {
        if ratio(&quiet.0, &storm.0) >= floor {
            break;
        }
        eprintln!("reader throughput floor missed; re-measuring (retry {retry}/2)");
        quiet = measure(false)?;
        storm = measure(true)?;
    }
    let reader_ratio = ratio(&quiet.0, &storm.0);
    let graphs_ok = quiet.2 && storm.2;
    let floor_ok = reader_ratio >= floor;

    let mut report = Report::new(&[
        "arm",
        "readers",
        "requests",
        "wall_ms",
        "req_per_s",
        "writer_rounds",
        "reads_overlapped",
    ]);
    for (label, (stats, rounds, _, reads, overlapped)) in
        [("quiet", &quiet), ("under-writer", &storm)]
    {
        report.row(vec![
            label.to_string(),
            readers.to_string(),
            stats.requests.to_string(),
            ms(stats.wall_ms),
            format!("{:.1}", stats.throughput_rps()),
            rounds.to_string(),
            format!("{overlapped}/{reads}"),
        ]);
    }
    println!(
        "\nmvcc_storm ({readers} readers x {ops} rounds, {records} records, {} cores, \
         {trials} trial(s))",
        storm.0.cores
    );
    println!("{}", report.render());
    println!("reader throughput under writer: {reader_ratio:.2}x of quiet (floor {floor:.2}x)");

    let ok = gated_ok && graphs_ok && floor_ok;
    if !graphs_ok {
        eprintln!("GATE: version graph diverged from the sequential replay");
    }
    if !floor_ok {
        eprintln!("GATE: reader throughput collapsed under the writer (below {floor:.2}x)");
    }

    let json = JsonObject::new()
        .str("bench", "mvcc_storm")
        .int("readers", readers as u64)
        .int("ops_per_reader", ops as u64)
        .int("records", records as u64)
        .int("trials", trials as u64)
        .obj(
            "gated",
            JsonObject::new()
                .int("reads", gated_reads)
                .int("reads_overlapped", gated_overlapped)
                .int("graph_ok", gated_graph_ok as u64),
        )
        .obj(
            "quiet",
            storm_json(&quiet.0).int("writer_rounds", quiet.1 as u64),
        )
        .obj(
            "under_writer",
            storm_json(&storm.0)
                .int("writer_rounds", storm.1 as u64)
                .int("reads", storm.3)
                .int("reads_overlapped", storm.4),
        )
        .num("reader_ratio", reader_ratio)
        .num("floor", floor)
        .int("gate_ok", ok as u64);
    let path = write_bench_json("mvcc", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("mvcc_storm gate FAILED");
    }
    Ok(ok)
}
