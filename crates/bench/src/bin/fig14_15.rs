//! Regenerates the paper's Figure 14_15 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig14_15`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig14_15::run());
}
