//! Regenerates the paper's Figure 19 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig19`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig19::run());
}
