//! The durability benchmark: what does the write-ahead log cost? Two
//! arms drive the *same* `clustered_storm` stream — the read-dominant
//! profile of Section 6's workloads (a cluster of version exports per
//! checkout → commit round) — against the SCI workload:
//!
//! * `wal/off` — a plain in-memory instance, the PR-4 fast path with no
//!   durability at all;
//! * `wal/on`  — an instance opened through [`orpheus_core::recovery`]
//!   with a WAL directory, so every commit is encoded, appended, and
//!   **fsync'd** before it is acknowledged.
//!
//! Per-commit latencies (p50/p99) come from timing each `Commit` request
//! individually — expect roughly 2x WAL-on, since a durable commit pays
//! an encode of the committed rows plus an `fdatasync`; that number is
//! reported, not gated. The **gate** is end-to-end: WAL-on throughput
//! over the whole stream must stay within `ORPHEUS_WAL_FLOOR` (default
//! 0.8) of WAL-off, because reads are unlogged and commits are the
//! minority of a realistic stream — if the WAL path leaks cost into
//! checkouts (lock contention, sink overhead) or commit cost blows past
//! encode+fsync, the ratio collapses and CI fails. fsync latency is
//! noisy on shared disks, so a failing gate re-measures up to two times
//! before the bin gives up and exits non-zero.
//!
//! Emits `BENCH_wal.json` (directory from `ORPHEUS_BENCH_OUT`, default
//! the working directory).
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_STORM_OPS` (default 20) — checkout → commit rounds.
//! * `ORPHEUS_STORM_CLUSTER` (default 10) — version exports per round.
//! * `ORPHEUS_STORM_RECORDS` (default 400) — records in the CVD.
//! * `ORPHEUS_WAL_FLOOR` (default 0.8) — throughput-ratio gate.
//! * `ORPHEUS_TRIALS` (default 3) — timing trials per arm.
//!
//! Run with `cargo run --release -p orpheus-bench --bin wal_storm`.

use std::time::Instant;

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    clustered_storm, env_f64, env_usize, ms, protocol_mean, trials, write_bench_json, JsonObject,
    Report,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::request::{CommandKind, Executor};
use orpheus_core::{recovery, ModelKind, OrpheusDB, Result};

/// One arm's measurement: total wall over the stream plus every
/// individual commit latency.
struct Arm {
    label: &'static str,
    wall_ms: f64,
    requests: usize,
    commits: usize,
    commit_lat_us: Vec<f64>,
}

impl Arm {
    fn throughput_rps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.wall_ms / 1e3)
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drive the stream, timing each `Commit` request individually. Returns
/// (wall_ms over the whole stream, requests driven, per-commit
/// latencies in µs).
fn drive_timed(
    odb: &mut OrpheusDB,
    cvd: &str,
    ops: usize,
    cluster: usize,
) -> Result<(f64, usize, Vec<f64>)> {
    let stream = clustered_storm(cvd, 0, ops, cluster);
    let requests = stream.len();
    let mut commit_lat_us = Vec::with_capacity(ops);
    let start = Instant::now();
    for request in stream {
        let is_commit = request.kind() == CommandKind::Commit;
        let t0 = Instant::now();
        odb.execute(request)?;
        if is_commit {
            commit_lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    Ok((start.elapsed().as_secs_f64() * 1e3, requests, commit_lat_us))
}

fn measure(
    label: &'static str,
    wal: bool,
    ops: usize,
    cluster: usize,
    workload: &Workload,
) -> Result<Arm> {
    let trials = trials();
    let mut samples = Vec::with_capacity(trials);
    let mut commit_lat_us = Vec::new();
    let mut requests = 0;
    let mut commits = 0;
    for t in 0..trials {
        let dir = std::env::temp_dir().join(format!(
            "orpheus-walstorm-{}-{label}-{t}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut odb = if wal {
            recovery::open(&dir)?
        } else {
            OrpheusDB::new()
        };
        load_workload(&mut odb, "cvd0", workload, ModelKind::SplitByRlist)?;
        let (wall, reqs, lat) = drive_timed(&mut odb, "cvd0", ops, cluster)?;
        samples.push(wall);
        requests = reqs;
        commits = lat.len();
        commit_lat_us.extend(lat);
        drop(odb);
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(Arm {
        label,
        wall_ms: protocol_mean(samples),
        requests,
        commits,
        commit_lat_us,
    })
}

fn main() {
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("wal_storm bench failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> Result<bool> {
    let ops = env_usize("ORPHEUS_STORM_OPS", 20).max(1);
    let cluster = env_usize("ORPHEUS_STORM_CLUSTER", 10);
    let records = env_usize("ORPHEUS_STORM_RECORDS", 400).max(1);
    let floor = env_f64("ORPHEUS_WAL_FLOOR", 0.8);
    let versions = 8;
    let workload = Workload::generate(WorkloadParams::sci(versions, 2, records / versions));

    // fsync latency on shared CI disks has heavy tails; re-measure a
    // failing gate before concluding the WAL path itself regressed.
    let mut arms = None;
    let mut ratio = 0.0;
    for attempt in 0..3 {
        let off = measure("wal/off", false, ops, cluster, &workload)?;
        let on = measure("wal/on", true, ops, cluster, &workload)?;
        ratio = on.throughput_rps() / off.throughput_rps().max(f64::EPSILON);
        let pass = ratio >= floor;
        arms = Some([off, on]);
        if pass {
            break;
        }
        if attempt < 2 {
            eprintln!(
                "wal_storm: throughput ratio {ratio:.3} below floor {floor}; re-measuring \
                 (attempt {})",
                attempt + 2
            );
        }
    }
    let arms = arms.expect("at least one measurement attempt");
    let ok = ratio >= floor;

    let mut report = Report::new(&[
        "arm",
        "requests",
        "commits",
        "wall_ms",
        "req_per_s",
        "commit_p50_us",
        "commit_p99_us",
    ]);
    let mut percentiles = Vec::new();
    for arm in &arms {
        let mut lat = arm.commit_lat_us.clone();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let p50 = percentile(&lat, 0.50);
        let p99 = percentile(&lat, 0.99);
        percentiles.push((p50, p99));
        report.row(vec![
            arm.label.to_string(),
            arm.requests.to_string(),
            arm.commits.to_string(),
            ms(arm.wall_ms),
            format!("{:.1}", arm.throughput_rps()),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
    }
    println!(
        "wal_storm ({ops} rounds x {cluster} exports + checkout->commit, {records} records, {} \
         trial(s))",
        trials()
    );
    println!("{}", report.render());
    println!("throughput ratio wal_on/wal_off: {ratio:.3} (floor {floor})");

    let arm_json = |arm: &Arm, (p50, p99): (f64, f64)| {
        JsonObject::new()
            .int("requests", arm.requests as u64)
            .int("commits", arm.commits as u64)
            .num("wall_ms", arm.wall_ms)
            .num("req_per_s", arm.throughput_rps())
            .num("commit_us_p50", p50)
            .num("commit_us_p99", p99)
    };
    let json = JsonObject::new()
        .str("bench", "wal_storm")
        .int("ops", ops as u64)
        .int("cluster", cluster as u64)
        .int("records", records as u64)
        .int("trials", trials() as u64)
        .obj("wal_off", arm_json(&arms[0], percentiles[0]))
        .obj("wal_on", arm_json(&arms[1], percentiles[1]))
        .num("throughput_ratio", ratio)
        .num("floor", floor)
        .int("gate_ok", ok as u64);
    let path = write_bench_json("wal", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("wal_storm throughput gate FAILED: ratio {ratio:.3} < floor {floor}");
    }
    Ok(ok)
}
