//! Regenerates the paper's Figure 12_13 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig12_13`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig12_13::run());
}
