//! The per-CVD locking concurrency benchmark: N threads × M CVDs driving
//! `contention_storm` request streams through (a) per-CVD-locked sessions
//! on a [`SharedOrpheusDB`] and (b) the single-global-lock baseline, on
//! identical instances and identical streams. Also runs the existing
//! single-threaded `checkout_storm` as a smoke workload.
//!
//! Emits machine-readable results as `BENCH_concurrency.json` and
//! `BENCH_checkout_storm.json` (directory from `ORPHEUS_BENCH_OUT`,
//! default the working directory), and prints paper-style tables.
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_STORM_THREADS` (default 4) — concurrent sessions.
//! * `ORPHEUS_STORM_CVDS` (default 4) — CVDs; thread `i` targets CVD
//!   `i % M`, so threads ≤ CVDs means fully disjoint targets.
//! * `ORPHEUS_STORM_OPS` (default 6) — checkout+commit rounds per thread.
//! * `ORPHEUS_STORM_RECORDS` (default 400) — records per generated CVD.
//!
//! Run with `cargo run --release -p orpheus-bench --bin concurrency`.

use std::sync::{Arc, Mutex};

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::harness::{
    checkout_storm, contention_storm, detected_parallelism, drive, drive_parallel, env_usize, ms,
    storm_json, write_bench_json, GlobalLockSession, JsonObject, Report, StormStats,
};
use orpheus_bench::loader::load_workload;
use orpheus_core::{ModelKind, OrpheusDB, Request, Result, SharedOrpheusDB};

fn main() {
    if let Err(e) = run() {
        eprintln!("concurrency bench failed: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let threads = env_usize("ORPHEUS_STORM_THREADS", 4).max(1);
    let cvds = env_usize("ORPHEUS_STORM_CVDS", 4).max(1);
    let ops = env_usize("ORPHEUS_STORM_OPS", 6).max(1);
    let records = env_usize("ORPHEUS_STORM_RECORDS", 400).max(1);
    let versions = 8;

    let workload = Workload::generate(WorkloadParams::sci(versions, 2, records / versions));
    let build = || -> Result<OrpheusDB> {
        let mut odb = OrpheusDB::new();
        for c in 0..cvds {
            load_workload(
                &mut odb,
                &format!("cvd{c}"),
                &workload,
                ModelKind::SplitByRlist,
            )?;
        }
        Ok(odb)
    };
    let streams = || -> Vec<Vec<Request>> {
        (0..threads)
            .map(|t| contention_storm(&format!("cvd{}", t % cvds), t, ops))
            .collect()
    };

    // Control arm: the whole instance behind one lock.
    let baseline_db = Arc::new(Mutex::new(build()?));
    let baseline = drive_parallel(
        |t| GlobalLockSession::new(Arc::clone(&baseline_db), format!("user{t}")),
        streams(),
    )?;

    // Treatment arm: per-CVD locking through shared sessions.
    let shared = SharedOrpheusDB::new(build()?);
    let per_cvd = drive_parallel(
        |t| shared.session(&format!("user{t}")).expect("session"),
        streams(),
    )?;

    let speedup = per_cvd.throughput_rps() / baseline.throughput_rps().max(f64::EPSILON);

    let mut report = Report::new(&[
        "executor",
        "threads",
        "cvds",
        "requests",
        "wall_ms",
        "req_per_s",
    ]);
    let row = |name: &str, stats: &StormStats| {
        vec![
            name.to_string(),
            threads.to_string(),
            cvds.to_string(),
            stats.requests.to_string(),
            ms(stats.wall_ms),
            format!("{:.1}", stats.throughput_rps()),
        ]
    };
    report.row(row("single-lock", &baseline));
    report.row(row("per-cvd", &per_cvd));
    println!(
        "contention_storm ({ops} checkout+commit rounds/thread, {records} records/CVD, {} cores)",
        per_cvd.cores
    );
    println!("{}", report.render());
    println!("speedup (per-cvd vs single-lock): {speedup:.2}x");

    // Smoke: the existing single-threaded checkout storm on a session.
    let sample: Vec<u64> = (1..=versions as u64).collect();
    let mut session = shared.session("smoke")?;
    let smoke = drive(&mut session, checkout_storm("cvd0", &sample))?;
    println!("\ncheckout_storm (smoke, {} requests)", smoke.requests());
    println!("{}", smoke.report().render());

    // Machine-readable artifacts. Every storm arm — including the
    // GlobalLockSession baseline — renders through the shared
    // `harness::storm_json`, so the per-arm core counts come from the
    // runs themselves; the top-level stamp from `write_bench_json` must
    // agree with both, or the artifact would claim two different
    // machines.
    for (label, stats) in [("single_lock", &baseline), ("per_cvd", &per_cvd)] {
        if stats.cores != detected_parallelism() {
            eprintln!(
                "cores drifted mid-run: {label} recorded {} but {} detected now",
                stats.cores,
                detected_parallelism()
            );
            std::process::exit(1);
        }
    }
    let json = JsonObject::new()
        .str("bench", "contention_storm")
        .int("threads", threads as u64)
        .int("cvds", cvds as u64)
        .int("ops_per_thread", ops as u64)
        .int("records_per_cvd", records as u64)
        .obj("single_lock", storm_json(&baseline))
        .obj("per_cvd", storm_json(&per_cvd))
        .num("speedup", speedup);
    let path = write_bench_json("concurrency", json)?;
    println!("\nwrote {path}");

    let json = JsonObject::new()
        .str("bench", "checkout_storm")
        .int("requests", smoke.requests() as u64)
        .num("total_ms", smoke.total_ms);
    let path = write_bench_json("checkout_storm", json)?;
    println!("wrote {path}");

    // Consistency check between the two arms — a lost update would show up
    // as diverging version counts; fail the bench loudly.
    let baseline_db = baseline_db.lock().unwrap_or_else(|e| e.into_inner());
    for c in 0..cvds {
        let name = format!("cvd{c}");
        let base = baseline_db.cvd(&name)?.num_versions();
        let ours = shared.read(|odb| odb.cvd(&name).map(|c| c.num_versions()))?;
        if base != ours {
            return Err(orpheus_core::CoreError::Invalid(format!(
                "version graphs diverge on {name}: single-lock {base} vs per-cvd {ours}"
            )));
        }
    }
    Ok(())
}
