//! Regenerates the paper's Figure 9 output. Run with
//! `cargo run --release -p orpheus-bench --bin fig9`.
fn main() {
    println!("{}", orpheus_bench::experiments::fig9::run());
}
