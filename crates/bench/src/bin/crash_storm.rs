//! The crash-recovery gate: a real multi-process fault-injection run.
//! The parent seeds a WAL directory (one CVD per client, created through
//! the logged catalog path), re-execs itself as a **server** process
//! serving that directory over TCP, and as N **client** processes each
//! driving a deterministic checkout → commit stream against its own CVD.
//! Then it kills the server — either externally (`SIGKILL` after a
//! trial-dependent delay) or from the inside, by arming one of the WAL's
//! `ORPHEUS_WAL_KILL` hook points (`pre-append`, `torn-append`,
//! `post-append`, `pre-snapshot`, `pre-current`, `post-current`), which
//! abort the process at the exact boundary they name. A tiny
//! `ORPHEUS_CHECKPOINT_BYTES` plus an aggressive in-server checkpoint
//! ticker makes log rotation happen *during* the storm, so the
//! checkpoint-side kill points actually fire.
//!
//! After the kill the parent reopens the WAL directory in-process via
//! [`orpheus_core::recovery::open`] and verifies, per CVD, that the
//! recovered version graph and rlists are **bit-for-bit** equal
//! (`VersionMeta` and rid lists compare with `==`, modulo the logical
//! clock fields — see `cvd_state`) to a reference built by replaying
//! that client's acknowledged request prefix through a fresh instance.
//! Each client runs one synchronous connection, so at
//! most one request per client was in flight at the kill; the recovered
//! state may legally contain that one extra (logged-but-unacked)
//! request, and nothing else. Any other divergence fails the trial, and
//! the failing WAL directory is copied to `target/crash-artifacts/` for
//! postmortem before the bin exits non-zero.
//!
//! Staged checkouts are deliberately *not* compared: the WAL logs
//! version-graph mutations, and staging areas are snapshot-durable only
//! (see the `wal` module docs).
//!
//! Knobs (all environment variables):
//! * `ORPHEUS_CRASH_ROUNDS` (default 1) — rounds over the kill matrix.
//! * `ORPHEUS_CRASH_CLIENTS` (default 3) — client processes (= CVDs).
//! * `ORPHEUS_CRASH_OPS` (default 12) — checkout → commit rounds each.
//! * `ORPHEUS_CRASH_RECORDS` (default 40) — records per seeded CVD.
//!
//! Run with `cargo run --release -p orpheus-bench --bin crash_storm`.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use orpheus_bench::harness::{contention_storm, env_usize, write_bench_json, JsonObject};
use orpheus_bench::loader::bench_schema;
use orpheus_core::cvd::VersionMeta;
use orpheus_core::request::{Executor, Init, Request};
use orpheus_core::{recovery, CoreError, ModelKind, OrpheusDB, Result, SharedOrpheusDB};
use orpheus_engine::Value;
use orpheus_net::{NetServer, RemoteExecutor};

/// The kill matrix: how the server dies in each trial of a round.
/// `external` is a parent-side `SIGKILL` at an arbitrary delay; the rest
/// arm the named in-process hook point (see `orpheus_core::wal`).
const KILL_POINTS: &[&str] = &[
    "external",
    "pre-append",
    "torn-append",
    "post-append",
    "pre-snapshot",
    "pre-current",
    "post-current",
];

fn seed_rows(records: usize, cvd_index: usize) -> Vec<Vec<Value>> {
    (0..records)
        .map(|r| {
            vec![
                Value::Int(r as i64),
                Value::Int((r as i64) * 2),
                Value::Int((r as i64) % 7),
                Value::Int(cvd_index as i64),
            ]
        })
        .collect()
}

fn seed_requests(clients: usize, records: usize) -> Vec<Request> {
    (0..clients)
        .map(|i| {
            Init::cvd(format!("cvd{i}"))
                .schema(bench_schema(4))
                .rows(seed_rows(records, i))
                .model(ModelKind::SplitByRlist)
                .into()
        })
        .collect()
}

/// The comparable slice of one CVD: its version graph and its rlists.
///
/// `checkout_t`/`commit_t` are zeroed before comparing: those logical
/// clock values legitimately depend on when checkpoints quiesced the
/// instance (a quiesce merges per-shard clocks to the global max), which
/// the reference cannot predict. Exact-clock replay fidelity is covered
/// by the in-process recovery tests, where the live pre-kill instance is
/// observable; this gate checks the durable contract — structure,
/// parents, messages, record counts, and rid lists, bit for bit.
type CvdState = (Vec<VersionMeta>, Vec<Vec<i64>>);

fn cvd_state(odb: &OrpheusDB, name: &str) -> Result<CvdState> {
    let cvd = odb.cvd(name)?;
    let versions = cvd
        .versions
        .iter()
        .map(|m| {
            let mut m = m.clone();
            m.checkout_t = None;
            m.commit_t = 0;
            m
        })
        .collect();
    Ok((
        versions,
        cvd.version_rids.iter().map(|r| (**r).clone()).collect(),
    ))
}

fn main() {
    if std::env::var("ORPHEUS_CRASH_ROLE").as_deref() == Ok("server") {
        if let Err(e) = server_main() {
            eprintln!("crash_storm server failed: {e}");
            std::process::exit(2);
        }
        return;
    }
    if std::env::var("ORPHEUS_CRASH_ROLE").as_deref() == Ok("client") {
        client_main();
        return;
    }
    match run() {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("crash_storm failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The victim: serve the WAL directory until killed. A fast checkpoint
/// ticker (the threshold comes from `ORPHEUS_CHECKPOINT_BYTES`, set tiny
/// by the parent) keeps log rotation happening mid-storm so the
/// checkpoint kill points get crossed.
fn server_main() -> Result<()> {
    let dir = std::env::var("ORPHEUS_CRASH_DIR")
        .map_err(|_| CoreError::Io("ORPHEUS_CRASH_DIR not set".to_string()))?;
    let shared = recovery::open_shared(Path::new(&dir))?;
    let server = NetServer::bind("127.0.0.1:0", shared.clone())?;
    println!("addr {}", server.local_addr());
    {
        use std::io::Write as _;
        std::io::stdout().flush().ok();
    }
    let ticker = shared.clone();
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_millis(15));
        let _ = recovery::maybe_checkpoint_shared(&ticker);
    });
    // Killed by the parent (or by an armed hook point); never exits.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One synchronous connection driving one CVD. Reports how many requests
/// were **acknowledged** before the server died; at most one more can be
/// in flight. Output protocol: an optional
/// `retry <reconnects> <replayed> <overload_retries>` line, then a single
/// `acked <n>` line.
fn client_main() {
    let addr = std::env::var("ORPHEUS_CRASH_ADDR").expect("client needs ORPHEUS_CRASH_ADDR");
    let index = env_usize("ORPHEUS_CRASH_CLIENT", 0);
    let ops = env_usize("ORPHEUS_CRASH_OPS", 12).max(1);
    let mut acked = 0usize;
    if let Ok(mut remote) = RemoteExecutor::connect(addr.as_str(), &format!("user{index}")) {
        for request in contention_storm(&format!("cvd{index}"), index, ops) {
            match remote.execute(request) {
                Ok(_) => acked += 1,
                // The expected death: the server was killed under us (the
                // retry policy already burned through its reconnect budget
                // against a permanently-dead address).
                Err(_) => break,
            }
        }
        let rs = remote.retry_stats();
        println!(
            "retry {} {} {}",
            rs.reconnects, rs.replayed, rs.overload_retries
        );
    }
    println!("acked {acked}");
}

/// Recursive copy for failure artifacts.
fn copy_dir(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let dst = to.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &dst)?;
        } else {
            std::fs::copy(entry.path(), &dst)?;
        }
    }
    Ok(())
}

/// Counters one trial reports back, aggregated into `BENCH_crash.json` —
/// mostly evidence of how hard the clients fought the dying server.
#[derive(Default)]
struct TrialCounters {
    acked: u64,
    reconnects: u64,
    replayed: u64,
    overload_retries: u64,
}

struct Trial {
    round: usize,
    kill: &'static str,
    /// Hook countdown (`ORPHEUS_WAL_KILL=<point>:<n>`), hook trials only.
    countdown: usize,
    /// External-kill delay, external trials only.
    delay_ms: u64,
}

/// Wait for the server to die on its own (hook trials), then reap it —
/// killing it if the hook never fired, which is still a valid trial:
/// recovery must then reproduce the *entire* acknowledged stream.
fn reap_server(mut server: Child, grace: Duration) -> Result<()> {
    let t0 = Instant::now();
    loop {
        match server.try_wait() {
            Ok(Some(_)) => return Ok(()),
            Ok(None) if t0.elapsed() >= grace => {
                let _ = server.kill();
                let _ = server.wait();
                return Ok(());
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => return Err(CoreError::Io(format!("cannot reap server: {e}"))),
        }
    }
}

fn run_trial(
    trial: &Trial,
    clients: usize,
    ops: usize,
    records: usize,
) -> Result<(Vec<String>, TrialCounters)> {
    let exe = std::env::current_exe()
        .map_err(|e| CoreError::Io(format!("cannot locate the bench binary: {e}")))?;
    let dir = std::env::temp_dir().join(format!(
        "orpheus-crashstorm-{}-{}-{}",
        std::process::id(),
        trial.round,
        trial.kill
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Seed through the logged catalog path, then close: the server
    // process reopens the directory the way any restart would.
    let seeds = seed_requests(clients, records);
    {
        let shared = recovery::open_shared(&dir)?;
        let mut admin = shared.session("admin")?;
        for request in seeds.clone() {
            admin.execute(request)?;
        }
    }

    let mut server = Command::new(&exe)
        .env("ORPHEUS_CRASH_ROLE", "server")
        .env("ORPHEUS_CRASH_DIR", &dir)
        // Tiny threshold: every few commits outgrow it, so the ticker
        // rotates the log repeatedly while the storm runs.
        .env("ORPHEUS_CHECKPOINT_BYTES", "2048")
        .envs((trial.kill != "external").then(|| {
            (
                "ORPHEUS_WAL_KILL",
                format!("{}:{}", trial.kill, trial.countdown),
            )
        }))
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| CoreError::Io(format!("cannot spawn server: {e}")))?;
    let mut server_out = BufReader::new(server.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    server_out
        .read_line(&mut line)
        .map_err(|e| CoreError::Io(format!("server reported no address: {e}")))?;
    let addr = line
        .strip_prefix("addr ")
        .ok_or_else(|| CoreError::Network(format!("bad server banner: {line:?}")))?
        .trim()
        .to_string();

    let children = (0..clients)
        .map(|i| {
            Command::new(&exe)
                .env("ORPHEUS_CRASH_ROLE", "client")
                .env("ORPHEUS_CRASH_ADDR", &addr)
                .env("ORPHEUS_CRASH_CLIENT", i.to_string())
                .env("ORPHEUS_CRASH_OPS", ops.to_string())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| CoreError::Io(format!("cannot spawn client: {e}")))
        })
        .collect::<Result<Vec<_>>>()?;

    if trial.kill == "external" {
        std::thread::sleep(Duration::from_millis(trial.delay_ms));
        let _ = server.kill();
        let _ = server.wait();
    }

    let mut acked = vec![0usize; clients];
    let mut counters = TrialCounters::default();
    for (i, child) in children.into_iter().enumerate() {
        let output = child
            .wait_with_output()
            .map_err(|e| CoreError::Io(format!("client did not finish: {e}")))?;
        let stdout = String::from_utf8_lossy(&output.stdout);
        let n = stdout
            .lines()
            .find_map(|l| l.strip_prefix("acked "))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .ok_or_else(|| CoreError::Network(format!("client {i} reported no ack count")))?;
        acked[i] = n;
        counters.acked += n as u64;
        if let Some(rest) = stdout.lines().find_map(|l| l.strip_prefix("retry ")) {
            let mut parts = rest.split_whitespace();
            let mut next = || {
                parts
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
            };
            counters.reconnects += next();
            counters.replayed += next();
            counters.overload_retries += next();
        }
    }
    if trial.kill != "external" {
        reap_server(server, Duration::from_secs(3))?;
    }

    // -- verification -------------------------------------------------------
    // Reopen the WAL directory the way a restart would, then check each
    // CVD against a reference built from that client's acked prefix
    // (plus, optionally, the single op that may have been in flight).
    let recovered = recovery::open(&dir)?;
    let reference = SharedOrpheusDB::new(OrpheusDB::new());
    {
        let mut admin = reference.session("admin")?;
        for request in seeds {
            admin.execute(request)?;
        }
    }
    let mut failures = Vec::new();
    for (i, &k) in acked.iter().enumerate() {
        let name = format!("cvd{i}");
        let stream = contention_storm(&name, i, ops);
        let mut session = reference.session(&format!("user{i}"))?;
        for request in stream.iter().take(k).cloned() {
            session.execute(request)?;
        }
        let got = cvd_state(&recovered, &name)?;
        let at_prefix = reference.read(|odb| cvd_state(odb, &name))?;
        if got == at_prefix {
            continue;
        }
        // The one legal divergence: the in-flight request was logged
        // (fsync'd) but its ack never reached the client.
        if let Some(in_flight) = stream.get(k) {
            session.execute(in_flight.clone())?;
            let with_in_flight = reference.read(|odb| cvd_state(odb, &name))?;
            if got == with_in_flight {
                continue;
            }
        }
        let first_diff = got
            .0
            .iter()
            .zip(at_prefix.0.iter())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(v, (a, b))| format!("first differing version v{}: {a:?} vs {b:?}", v + 1))
            .or_else(|| {
                got.1
                    .iter()
                    .zip(at_prefix.1.iter())
                    .enumerate()
                    .find(|(_, (a, b))| a != b)
                    .map(|(v, _)| format!("rlists differ at v{}", v + 1))
            })
            .unwrap_or_else(|| "version count differs".to_string());
        failures.push(format!(
            "{name}: recovered state diverges from the acked prefix ({k} acked): \
             {} recovered version(s) vs {} reference version(s); {first_diff}",
            got.0.len(),
            at_prefix.0.len(),
        ));
    }

    if failures.is_empty() {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        let artifacts = PathBuf::from("target/crash-artifacts")
            .join(format!("round{}-{}", trial.round, trial.kill));
        if let Err(e) = copy_dir(&dir, &artifacts) {
            eprintln!("warning: could not save failure artifact: {e}");
        } else {
            eprintln!("saved failing WAL dir to {}", artifacts.display());
        }
    }
    Ok((failures, counters))
}

fn run() -> Result<bool> {
    let rounds = env_usize("ORPHEUS_CRASH_ROUNDS", 1).max(1);
    let clients = env_usize("ORPHEUS_CRASH_CLIENTS", 3).max(1);
    let ops = env_usize("ORPHEUS_CRASH_OPS", 12).max(1);
    let records = env_usize("ORPHEUS_CRASH_RECORDS", 40).max(1);

    let mut ok = true;
    let mut trials = 0usize;
    let mut totals = TrialCounters::default();
    for round in 0..rounds {
        for (p, &kill) in KILL_POINTS.iter().enumerate() {
            // Spread the kill across the storm: vary the hook countdown
            // and the external delay per (round, point) without needing a
            // random source — determinism here means a failing matrix
            // cell reproduces.
            let trial = Trial {
                round,
                kill,
                countdown: 1 + (round * KILL_POINTS.len() + p * 5) % (clients * ops),
                delay_ms: 20 + ((round * 7 + p * 13) % 10) as u64 * 15,
            };
            trials += 1;
            let (failures, counters) = run_trial(&trial, clients, ops, records)?;
            if failures.is_empty() {
                println!(
                    "trial {kill} (round {round}): ok ({} acked)",
                    counters.acked
                );
            } else {
                ok = false;
                for f in &failures {
                    eprintln!("trial {kill} (round {round}): GATE: {f}");
                }
            }
            totals.acked += counters.acked;
            totals.reconnects += counters.reconnects;
            totals.replayed += counters.replayed;
            totals.overload_retries += counters.overload_retries;
        }
    }
    println!(
        "crash_storm: {trials} trial(s), {clients} client(s) x {ops} rounds, {records} \
         records/CVD"
    );

    let json = JsonObject::new()
        .str("bench", "crash_storm")
        .int("trials", trials as u64)
        .int("clients", clients as u64)
        .int("ops_per_client", ops as u64)
        .int("records_per_cvd", records as u64)
        .int("acked_commits", totals.acked)
        .int("client_reconnects", totals.reconnects)
        .int("client_replayed", totals.replayed)
        .int("client_overload_retries", totals.overload_retries)
        .int("gate_ok", ok as u64);
    let path = write_bench_json("crash", json)?;
    println!("wrote {path}");

    if !ok {
        eprintln!("crash_storm recovery gate FAILED");
    }
    Ok(ok)
}
