//! Range-encoding ablation for the versioning table (Section 3.2 remark).
//! Run with `cargo run --release -p orpheus-bench --bin compression`.
fn main() {
    println!("{}", orpheus_bench::experiments::compression::run());
}
