//! Figures 12 and 13: the benefit of partitioning — average checkout time
//! and storage size without partitioning vs. LyreSplit partitionings under
//! γ = 1.5|R| and γ = 2|R|, for SCI_* (Fig. 12) and CUR_* (Fig. 13).

use orpheus_core::{ModelKind, OrpheusDB, Vid};

use crate::datasets::partitioning_datasets;
use crate::experiments::sample_versions;
use crate::harness::{mb, ms, time_op, trials, Report};
use crate::loader::load_workload;

/// Average checkout time over sampled versions (discards each staged
/// table afterwards).
fn avg_checkout_ms(odb: &mut OrpheusDB, samples: &[u64]) -> f64 {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    time_op(trials().min(3), || {
        for &v in samples {
            let t = format!("co{}", COUNTER.fetch_add(1, Ordering::Relaxed));
            odb.checkout("bench", &[Vid(v)], &t).expect("checkout");
            odb.discard(&t).expect("discard");
        }
    }) / samples.len() as f64
}

pub fn run() -> String {
    let mut report = Report::new(&[
        "dataset",
        "layout",
        "checkout_ms",
        "storage_MB",
        "partitions",
        "speedup",
    ]);
    for spec in partitioning_datasets() {
        let workload = spec.generate();
        let samples = sample_versions(workload.num_versions(), 10);

        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &workload, ModelKind::SplitByRlist).expect("load");
        let base_ms = avg_checkout_ms(&mut odb, &samples);
        let base_mb = odb.storage_bytes("bench").expect("storage");
        report.row(vec![
            spec.name.into(),
            "no-partitioning".into(),
            ms(base_ms),
            mb(base_mb),
            "1".into(),
            "1.0x".into(),
        ]);

        for gamma in [1.5f64, 2.0] {
            let r = odb.optimize_with("bench", gamma, 1.5).expect("optimize");
            let t = avg_checkout_ms(&mut odb, &samples);
            let storage = odb.partitioned_storage_bytes("bench").expect("pstorage");
            report.row(vec![
                spec.name.into(),
                format!("LyreSplit γ={gamma}|R|"),
                ms(t),
                mb(storage),
                r.num_partitions.to_string(),
                format!("{:.1}x", base_ms / t.max(1e-9)),
            ]);
        }
    }
    format!(
        "Figures 12/13: checkout time and storage, with vs without partitioning\n{}",
        report.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::generator::WorkloadKind;

    #[test]
    fn partitioning_reduces_checkout_on_branchy_data() {
        let spec = DatasetSpec {
            paper_name: "SCI_TINY",
            name: "SCI_TINY",
            kind: WorkloadKind::Sci,
            versions: 60,
            branches: 10,
            inserts: 80,
        };
        let workload = spec.generate();
        let samples = sample_versions(workload.num_versions(), 8);
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &workload, ModelKind::SplitByRlist).unwrap();
        let base = avg_checkout_ms(&mut odb, &samples);
        let r = odb.optimize_with("bench", 2.0, 1.5).unwrap();
        let parted = avg_checkout_ms(&mut odb, &samples);
        assert!(r.num_partitions > 1, "expected a real split");
        // With multiple partitions each checkout touches fewer records; the
        // wall-clock ratio is noisy on tiny data, so only require
        // no-regression by a wide margin.
        assert!(
            parted <= base * 1.5,
            "partitioned checkout {parted}ms vs base {base}ms"
        );
    }
}
