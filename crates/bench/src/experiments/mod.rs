//! One module per table/figure of the paper's evaluation (Section 5 and
//! appendices). Each exposes a `run()` returning the printed report; the
//! `src/bin/*` entry points call these.

pub mod compression;
pub mod fig10_11;
pub mod fig12_13;
pub mod fig14_15;
pub mod fig19;
pub mod fig3;
pub mod fig9;
pub mod table2;

/// Shared helper: sample `n` version ids (1-based) evenly across a CVD.
/// An empty CVD yields an empty sample — version ids are never fabricated.
pub fn sample_versions(num_versions: usize, n: usize) -> Vec<u64> {
    if num_versions == 0 {
        return Vec::new();
    }
    let n = n.min(num_versions).max(1);
    (0..n).map(|i| (i * num_versions / n) as u64 + 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_in_range_and_even() {
        let s = sample_versions(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&v| (1..=100).contains(&v)));
        assert_eq!(s[0], 1);
        let s = sample_versions(3, 10);
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn sampling_an_empty_cvd_fabricates_nothing() {
        assert!(sample_versions(0, 10).is_empty());
        assert!(sample_versions(0, 0).is_empty());
        // The degenerate-but-nonempty case still clamps n up to 1.
        assert_eq!(sample_versions(1, 0), vec![1]);
    }
}
