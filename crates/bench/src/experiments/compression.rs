//! Range-encoding ablation (Section 3.2's compression remark): how much
//! smaller does the versioning table get when `vlist`/`rlist` arrays are
//! range-encoded (Buneman et al. \[14\])?
//!
//! The paper states the array-based models' storage "can be further reduced
//! by applying compression techniques like range-encoding" but does not
//! evaluate it; this experiment quantifies the claim — and its limits — on
//! the benchmark datasets for every array-based model:
//!
//! * `rlist` arrays compress (commits allocate rids contiguously, so each
//!   version is a few long runs punched by update/delete holes);
//! * `vlist` arrays on *branchy* workloads can expand under naive range
//!   encoding: global version numbering interleaves branches, so the
//!   versions a record belongs to are rarely consecutive. On a linear
//!   history (B = 1) the same encoding is a large win — Buneman et al.'s
//!   setting is exactly this linear-archive case;
//! * adaptive encoding (keep whichever form is smaller per array) never
//!   loses, which is what a production format would ship.

use orpheus_core::compress::compression_report;
use orpheus_core::{ModelKind, OrpheusDB};

use crate::datasets::fig3_datasets;
use crate::generator::{Workload, WorkloadParams};
use crate::harness::{mb, Report};
use crate::loader::load_workload;

/// Array-based models with a versioning-table array column.
const MODELS: [ModelKind; 3] = [
    ModelKind::CombinedTable,
    ModelKind::SplitByVlist,
    ModelKind::SplitByRlist,
];

fn measure(report: &mut Report, dataset: &str, w: &Workload) {
    for model in MODELS {
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "d", w, model).expect("load");
        let cvd = odb.cvd("d").expect("cvd");
        let r = compression_report(&odb.engine, cvd)
            .expect("report")
            .expect("array-based model");
        report.row(vec![
            dataset.to_string(),
            model.name().to_string(),
            r.arrays.to_string(),
            r.elements.to_string(),
            mb(r.raw_bytes as u64),
            mb(r.encoded_bytes as u64),
            format!("{:.1}x", r.ratio()),
            mb(r.adaptive_bytes as u64),
            format!("{:.1}x", r.adaptive_ratio()),
        ]);
    }
}

pub fn run() -> String {
    let mut report = Report::new(&[
        "dataset", "model", "arrays", "elements", "raw", "ranges", "ratio", "adaptive", "ratio",
    ]);
    for spec in fig3_datasets() {
        let w = spec.generate();
        measure(&mut report, spec.name, &w);
    }
    // The linear-history contrast: one branch, same volume as the smallest
    // SCI dataset. This is the archive setting of Buneman et al., where
    // every surviving record spans a contiguous version range.
    let linear = Workload::generate(WorkloadParams::sci(200, 1, 200));
    measure(&mut report, "LINEAR_B1", &linear);
    format!(
        "Range-encoding ablation: versioning-table array storage (raw vs range-encoded \
         vs adaptive)\nShape: rlist > 1x everywhere; vlist < 1x on branchy SCI but \u{2265} \
         raw never under adaptive; vlist \u{226b} 1x on the linear history\n{}",
        report.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rlist_compresses_better_than_vlist() {
        // Small deterministic workload; rlists are runs of contiguous rids.
        let w = Workload::generate(WorkloadParams::sci(80, 8, 50));
        let mut ratios = std::collections::HashMap::new();
        for model in MODELS {
            let mut odb = OrpheusDB::new();
            load_workload(&mut odb, "d", &w, model).unwrap();
            let r = compression_report(&odb.engine, odb.cvd("d").unwrap())
                .unwrap()
                .unwrap();
            assert!(r.arrays > 0);
            assert_eq!(
                r.raw_bytes > r.encoded_bytes,
                r.ratio() > 1.0,
                "{}",
                model.name()
            );
            // Adaptive encoding never loses more than the per-array tag.
            assert!(r.adaptive_bytes <= r.raw_bytes + r.arrays);
            ratios.insert(model, r.ratio());
        }
        // The headline claim: range-encoding pays off most for rlist.
        assert!(
            ratios[&ModelKind::SplitByRlist] > 1.0,
            "rlist must compress: {ratios:?}"
        );
        assert!(
            ratios[&ModelKind::SplitByRlist] >= ratios[&ModelKind::SplitByVlist],
            "{ratios:?}"
        );
    }

    #[test]
    fn linear_history_vlists_compress_dramatically() {
        let w = Workload::generate(WorkloadParams::sci(60, 1, 40));
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "d", &w, ModelKind::SplitByVlist).unwrap();
        let r = compression_report(&odb.engine, odb.cvd("d").unwrap())
            .unwrap()
            .unwrap();
        // With one branch every record's vlist is a single contiguous run
        // (no cross-version re-adds under the no-cross-version-diff rule).
        assert!(r.ratio() > 2.0, "linear vlist ratio: {}", r.ratio());
    }

    #[test]
    fn non_array_models_report_none() {
        let w = Workload::generate(WorkloadParams::sci(6, 2, 10));
        for model in [ModelKind::TablePerVersion, ModelKind::DeltaBased] {
            let mut odb = OrpheusDB::new();
            load_workload(&mut odb, "d", &w, model).unwrap();
            assert!(compression_report(&odb.engine, odb.cvd("d").unwrap())
                .unwrap()
                .is_none());
        }
    }
}
