//! Figures 14 and 15: online maintenance and migration over a long stream
//! of commits (the paper uses SCI_10M with 10K versions; we stream the
//! scaled SCI_400K).
//!
//! (a) The online checkout cost `Cavg` drifts away from LyreSplit's best
//!     `C*avg`; migration triggers when the ratio exceeds µ.
//! (b) Migration cost (record modifications) of the intelligent engine vs.
//!     the naive rebuild, across tolerance factors µ.

use orpheus_partition::migration::{plan_migration, plan_naive};
use orpheus_partition::online::{OnlineConfig, OnlineMaintainer};
use orpheus_partition::BipartiteGraph;

use crate::datasets::SCI;
use crate::generator::Workload;
use crate::harness::Report;

/// One migration event in the stream.
#[derive(Debug, Clone)]
pub struct MigrationEvent {
    pub at_commit: usize,
    pub intelligent_mods: u64,
    pub naive_mods: u64,
}

/// Result of streaming a workload through the online maintainer.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// (commit index, Cavg, C*avg) sampled along the stream.
    pub series: Vec<(usize, f64, f64)>,
    pub migrations: Vec<MigrationEvent>,
}

/// Stream the workload's version tree through online maintenance.
pub fn stream(workload: &Workload, gamma_factor: f64, mu: f64, check_every: usize) -> StreamResult {
    let tree = workload.version_graph().to_tree();
    let n = tree.num_versions();
    let mut maintainer = OnlineMaintainer::new(
        OnlineConfig {
            gamma_factor,
            mu,
            check_every,
            ..OnlineConfig::default()
        },
        tree.records[0],
    );
    let mut series = Vec::new();
    let mut migrations = Vec::new();
    let sample_every = (n / 40).max(1);

    for v in 1..n {
        let parent = tree.parent[v].expect("non-root");
        let out = maintainer.commit(parent, tree.weight_to_parent[v], tree.records[v]);
        if let Some(target) = &out.migration_target {
            // Cost the migration both ways on the prefix bipartite graph.
            let bip = BipartiteGraph::new(
                workload.version_rids[..=v]
                    .iter()
                    .map(|r| r.to_vec())
                    .collect(),
            );
            let old = maintainer.partitioning();
            let prefix_tree = prefix_tree(&tree, v + 1);
            let smart = plan_migration(&bip, Some(&prefix_tree), &old, &target.partitioning);
            let naive = plan_naive(&bip, &old, &target.partitioning);
            migrations.push(MigrationEvent {
                at_commit: v,
                intelligent_mods: smart.total_modifications(),
                naive_mods: naive.total_modifications(),
            });
            maintainer.apply_migration(target);
        }
        if v % sample_every == 0 || v == n - 1 {
            series.push((v, out.cavg, out.cavg_star));
        }
    }
    StreamResult { series, migrations }
}

fn prefix_tree(
    tree: &orpheus_partition::VersionTree,
    len: usize,
) -> orpheus_partition::VersionTree {
    orpheus_partition::VersionTree {
        parent: tree.parent[..len].to_vec(),
        weight_to_parent: tree.weight_to_parent[..len].to_vec(),
        records: tree.records[..len].to_vec(),
    }
}

pub fn run() -> String {
    let spec = &SCI[4]; // the many-versions dataset (paper: SCI_10M)
    let workload = spec.generate();
    let mut text = format!(
        "Figures 14/15: online maintenance and migration on {} ({} versions)\n",
        spec.name,
        workload.num_versions()
    );

    for gamma in [1.5f64, 2.0] {
        text.push_str(&format!("\n-- γ = {gamma}|R| --\n"));
        // (a) Divergence of Cavg from C*avg for µ ∈ {1.5, 2}.
        for mu in [1.5f64, 2.0] {
            let r = stream(&workload, gamma, mu, 5);
            let worst = r
                .series
                .iter()
                .map(|(_, c, s)| c / s.max(1.0))
                .fold(0.0f64, f64::max);
            text.push_str(&format!(
                "µ={mu}: {} migrations across {} commits; max Cavg/C*avg observed {:.2}\n",
                r.migrations.len(),
                workload.num_versions(),
                worst
            ));
        }
        // (b) Migration cost across µ: intelligent vs naive.
        let mut report = Report::new(&[
            "mu",
            "migrations",
            "avg_intelligent_mods",
            "avg_naive_mods",
            "naive/intelligent",
        ]);
        for mu in [1.05f64, 1.2, 1.5, 2.0, 2.5] {
            let r = stream(&workload, gamma, mu, 5);
            if r.migrations.is_empty() {
                report.row(vec![
                    format!("{mu}"),
                    "0".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let smart: u64 = r.migrations.iter().map(|m| m.intelligent_mods).sum::<u64>()
                / r.migrations.len() as u64;
            let naive: u64 =
                r.migrations.iter().map(|m| m.naive_mods).sum::<u64>() / r.migrations.len() as u64;
            report.row(vec![
                format!("{mu}"),
                r.migrations.len().to_string(),
                smart.to_string(),
                naive.to_string(),
                format!("{:.1}x", naive as f64 / smart.max(1) as f64),
            ]);
        }
        text.push_str(&report.render());
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadParams;

    #[test]
    fn stream_tracks_divergence_and_migrates() {
        let w = Workload::generate(WorkloadParams::sci(150, 15, 60));
        let r = stream(&w, 2.0, 1.2, 2);
        assert!(!r.series.is_empty());
        // Cavg never falls below the optimum estimate.
        for (_, cavg, star) in &r.series {
            assert!(*cavg + 1e-6 >= *star * 0.5, "cavg {cavg} vs star {star}");
        }
        // A tight tolerance on a branchy stream triggers migrations, and
        // the intelligent plan beats the naive rebuild.
        if !r.migrations.is_empty() {
            for m in &r.migrations {
                assert!(m.intelligent_mods <= m.naive_mods);
            }
        }
    }

    #[test]
    fn looser_mu_migrates_less() {
        let w = Workload::generate(WorkloadParams::sci(150, 15, 60));
        let tight = stream(&w, 2.0, 1.05, 2);
        let loose = stream(&w, 2.0, 2.5, 2);
        assert!(
            tight.migrations.len() >= loose.migrations.len(),
            "µ=1.05 gave {} migrations, µ=2.5 gave {}",
            tight.migrations.len(),
            loose.migrations.len()
        );
    }
}
