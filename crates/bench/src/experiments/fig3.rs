//! Figure 3: comparison of the five data models on storage size (a),
//! commit time (b), and checkout time (c).
//!
//! Protocol (Section 3.2): load a dataset, check out the latest version
//! into a materialized table, and commit it straight back as a new version.

use orpheus_core::{ModelKind, OrpheusDB, Vid};

use crate::datasets::{fig3_datasets, DatasetSpec};
use crate::harness::{mb, ms, time_op, trials, Report};
use crate::loader::load_workload;

/// One measured cell of Figure 3.
#[derive(Debug, Clone)]
pub struct ModelMeasurement {
    pub dataset: String,
    pub model: ModelKind,
    pub storage_bytes: u64,
    pub commit_ms: f64,
    pub checkout_ms: f64,
}

/// Measure one (dataset, model) cell.
pub fn measure(spec: &DatasetSpec, model: ModelKind) -> ModelMeasurement {
    let workload = spec.generate();
    let mut odb = OrpheusDB::new();
    load_workload(&mut odb, "bench", &workload, model).expect("load");
    let storage_bytes = odb.storage_bytes("bench").expect("storage");
    let latest = Vid(workload.num_versions() as u64);

    // Checkout time: materialize the latest version, repeatedly.
    let mut i = 0;
    let checkout_ms = time_op(trials(), || {
        let t = format!("co{i}");
        odb.checkout("bench", &[latest], &t).expect("checkout");
        // Committing here would change the dataset; discard the staged copy
        // instead (O(1) relative to the checkout's scan+join).
        odb.discard(&t).expect("discard");
        i += 1;
    });

    // Commit time: check out (untimed), then time the commit-back.
    let mut samples = Vec::new();
    for j in 0..trials() {
        let t = format!("cm{j}");
        odb.checkout("bench", &[latest], &t).expect("checkout");
        let commit_ms = time_op(1, || {
            odb.commit(&t, "fig3 commit-back").expect("commit");
        });
        samples.push(commit_ms);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let commit_ms = samples[samples.len() / 2];

    ModelMeasurement {
        dataset: spec.name.to_string(),
        model,
        storage_bytes,
        commit_ms,
        checkout_ms,
    }
}

pub fn run() -> String {
    let mut report = Report::new(&["dataset", "model", "storage_MB", "commit_ms", "checkout_ms"]);
    for spec in fig3_datasets() {
        for model in ModelKind::ALL {
            let m = measure(&spec, model);
            report.row(vec![
                m.dataset,
                m.model.name().to_string(),
                mb(m.storage_bytes),
                ms(m.commit_ms),
                ms(m.checkout_ms),
            ]);
        }
    }
    format!(
        "Figure 3: data model comparison (storage / commit / checkout)\n{}",
        report.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadKind;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            paper_name: "SCI_TINY",
            name: "SCI_TINY",
            kind: WorkloadKind::Sci,
            versions: 12,
            branches: 3,
            inserts: 30,
        }
    }

    #[test]
    fn figure3_shapes_hold_on_tiny_data() {
        let spec = tiny_spec();
        let mut by_model = std::collections::HashMap::new();
        for model in ModelKind::ALL {
            by_model.insert(model, measure(&spec, model));
        }
        // Storage: a-table-per-version is by far the largest (paper: ~10×).
        let tpv = by_model[&ModelKind::TablePerVersion].storage_bytes;
        let rlist = by_model[&ModelKind::SplitByRlist].storage_bytes;
        assert!(
            tpv > 2 * rlist,
            "TPV storage should dwarf split-by-rlist ({tpv} vs {rlist})"
        );
        // Commit: split-by-rlist is cheaper than combined-table (paper:
        // orders of magnitude at scale).
        let combined = by_model[&ModelKind::CombinedTable].commit_ms;
        let rlist_c = by_model[&ModelKind::SplitByRlist].commit_ms;
        assert!(
            rlist_c <= combined * 3.0,
            "rlist commit ({rlist_c}ms) should not exceed combined ({combined}ms) materially"
        );
    }
}
