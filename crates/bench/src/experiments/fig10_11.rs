//! Figures 10 and 11: running time of the partitioning algorithms when
//! solving Problem 1 under the budget γ = 2|R| — total binary-search time
//! and time per binary-search iteration. The paper's headline: LyreSplit
//! is ~10³× faster than AGGLO and >10⁵× faster than KMEANS because it only
//! touches the version tree.

use orpheus_partition::agglo::agglo_for_budget;
use orpheus_partition::kmeans::kmeans_for_budget;
use orpheus_partition::lyresplit::{lyresplit_for_budget, EdgePick};

use crate::datasets::partitioning_datasets;
use crate::harness::{ms, time_once, Report};

/// Cap for the slow baselines, mirroring the paper's 10-hour timeout
/// (records above this size skip KMEANS entirely).
const KMEANS_RECORD_CAP: usize = 300_000;

pub fn run() -> String {
    let mut report = Report::new(&[
        "dataset",
        "algo",
        "total_ms",
        "iters",
        "ms_per_iter",
        "S_records",
    ]);
    for spec in partitioning_datasets() {
        let w = spec.generate();
        let tree = w.version_graph().to_tree();
        let bip = w.bipartite();
        let gamma = 2 * bip.num_records() as u64;

        let ((_, search), t) =
            time_once(|| lyresplit_for_budget(&tree, gamma, EdgePick::BalancedVersions));
        report.row(vec![
            spec.name.into(),
            "LyreSplit".into(),
            ms(t),
            search.iterations.to_string(),
            ms(t / search.iterations.max(1) as f64),
            search.storage.to_string(),
        ]);

        let ((_, search), t) = time_once(|| agglo_for_budget(&bip, gamma));
        report.row(vec![
            spec.name.into(),
            "AGGLO".into(),
            ms(t),
            search.iterations.to_string(),
            ms(t / search.iterations.max(1) as f64),
            search.storage.to_string(),
        ]);

        if w.num_records <= KMEANS_RECORD_CAP {
            let ((_, search), t) = time_once(|| kmeans_for_budget(&bip, gamma, 7));
            report.row(vec![
                spec.name.into(),
                "KMEANS".into(),
                ms(t),
                search.iterations.to_string(),
                ms(t / search.iterations.max(1) as f64),
                search.storage.to_string(),
            ]);
        } else {
            report.row(vec![
                spec.name.into(),
                "KMEANS".into(),
                "(capped)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    format!(
        "Figures 10/11: partitioning algorithm running time, γ = 2|R|\n{}",
        report.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Workload, WorkloadParams};

    #[test]
    fn lyresplit_is_fastest_on_small_data() {
        let w = Workload::generate(WorkloadParams::sci(60, 8, 60));
        let tree = w.version_graph().to_tree();
        let bip = w.bipartite();
        let gamma = 2 * bip.num_records() as u64;
        let (_, t_lyre) =
            time_once(|| lyresplit_for_budget(&tree, gamma, EdgePick::BalancedVersions));
        let (_, t_agglo) = time_once(|| agglo_for_budget(&bip, gamma));
        let (_, t_kmeans) = time_once(|| kmeans_for_budget(&bip, gamma, 7));
        // The speed gap grows with data size; on tiny data we only require
        // LyreSplit to win.
        assert!(
            t_lyre < t_agglo && t_lyre < t_kmeans,
            "LyreSplit {t_lyre}ms vs AGGLO {t_agglo}ms vs KMEANS {t_kmeans}ms"
        );
    }
}
