//! Figure 9: the storage-size vs. checkout-time trade-off of LYRESPLIT,
//! AGGLO and KMEANS, swept over their respective knobs (δ, BC, K).
//!
//! Also produces the Appendix D.2 data: Figures 20/21 (estimated storage
//! vs. estimated checkout cost) and 22/23 (estimated checkout cost vs.
//! real checkout time), which validate the `Ci = |Rk|` cost model.

use std::collections::HashSet;

use orpheus_engine::{Column, DataType, Database, Schema, Value};
use orpheus_partition::agglo::{agglo, DEFAULT_WINDOW};
use orpheus_partition::kmeans::kmeans;
use orpheus_partition::lyresplit::{lyresplit, EdgePick};
use orpheus_partition::Partitioning;

use crate::datasets::{partitioning_datasets, DatasetSpec};
use crate::experiments::sample_versions;
use crate::generator::Workload;
use crate::harness::{ms, time_op, trials, Report};

/// One point of the trade-off sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub dataset: String,
    pub algo: &'static str,
    pub param: String,
    pub partitions: usize,
    /// Exact storage cost S = Σ|Rk| in records.
    pub storage_records: u64,
    /// Estimated checkout cost Cavg = Σ|Vk||Rk|/n in records.
    pub est_cavg: f64,
    /// Measured average checkout time over sampled versions.
    pub measured_ms: f64,
}

/// Build the physical partition tables for an arbitrary partitioning and
/// measure real checkout latency via the Table 1 SQL.
fn measure_partitioning(w: &Workload, part: &Partitioning) -> f64 {
    let mut db = Database::new();
    let attrs = w.params.attrs;
    let mut cols = vec![Column::new("rid", DataType::Int).not_null()];
    cols.extend((0..attrs).map(|i| Column::new(format!("a{i}"), DataType::Int)));
    let mut schema = Schema::new(cols);
    schema.primary_key = vec![0];

    let parts = part.partitions();
    for (k, versions) in parts.iter().enumerate() {
        let data = format!("p{k}_data");
        let rlist = format!("p{k}_rlist");
        db.create_table(&data, schema.clone()).expect("create");
        db.execute(&format!(
            "CREATE TABLE {rlist} (vid INT PRIMARY KEY, rlist INT[])"
        ))
        .expect("create rlist");
        let mut rids: HashSet<usize> = HashSet::new();
        for &v in versions {
            rids.extend(w.version_rids[v].iter().copied());
        }
        let mut sorted: Vec<usize> = rids.into_iter().collect();
        sorted.sort_unstable();
        let rows: Vec<Vec<Value>> = sorted
            .iter()
            .map(|&r| {
                let mut row = Vec::with_capacity(attrs + 1);
                row.push(Value::Int(r as i64));
                row.extend(w.record_values(r).into_iter().map(Value::Int));
                row
            })
            .collect();
        db.table_mut(&data)
            .expect("table")
            .insert_many(rows)
            .expect("fill");
        let t = db.table_mut(&rlist).expect("rlist table");
        for &v in versions {
            t.insert(vec![
                Value::Int(v as i64 + 1),
                Value::IntArray(w.version_rids[v].iter().map(|&r| r as i64).collect()),
            ])
            .expect("rlist row");
        }
    }

    // Checkout each sampled version from its partition.
    let samples = sample_versions(w.num_versions(), 10);
    let mut i = 0usize;
    time_op(trials().min(3), || {
        for &vid in &samples {
            let k = part.partition_of(vid as usize - 1);
            let sql = format!(
                "SELECT d.* INTO co{i} FROM p{k}_data AS d, \
                 (SELECT unnest(rlist) AS rid_tmp FROM p{k}_rlist WHERE vid = {vid}) AS tmp \
                 WHERE rid = rid_tmp"
            );
            db.execute(&sql).expect("checkout");
            db.drop_table(&format!("co{i}")).expect("drop");
            i += 1;
        }
    }) / samples.len() as f64
}

/// Sweep all three algorithms on one dataset.
pub fn sweep_dataset(spec: &DatasetSpec) -> Vec<SweepPoint> {
    let w = spec.generate();
    let bip = w.bipartite();
    let tree = w.version_graph().to_tree();
    let heavy = w.num_records > 250_000;
    let mut out = Vec::new();

    let mut push = |algo: &'static str, param: String, part: Partitioning| {
        let storage = part.storage_cost(&bip);
        let est = part.checkout_cost(&bip);
        let measured = measure_partitioning(&w, &part);
        out.push(SweepPoint {
            dataset: spec.name.to_string(),
            algo,
            param,
            partitions: part.num_partitions,
            storage_records: storage,
            est_cavg: est,
            measured_ms: measured,
        });
    };

    // LyreSplit: sweep δ from near the floor to 1.
    let floor = tree.total_edges() as f64
        / (tree.total_records().max(1) as f64 * tree.num_versions().max(1) as f64);
    for &mult in &[1.5f64, 3.0, 8.0, 20.0, 60.0] {
        let delta = (floor * mult).min(1.0);
        let r = lyresplit(&tree, delta, EdgePick::BalancedVersions);
        push("LyreSplit", format!("δ={delta:.3}"), r.partitioning);
        if delta >= 1.0 {
            break;
        }
    }

    // AGGLO: sweep the capacity BC downward from unbounded.
    let max_version = (0..bip.num_versions())
        .map(|v| bip.version_size(v))
        .max()
        .unwrap_or(1);
    let bcs: Vec<usize> = if heavy {
        vec![max_version * 2, usize::MAX]
    } else {
        vec![
            max_version + max_version / 4,
            max_version * 2,
            max_version * 4,
            max_version * 16,
            usize::MAX,
        ]
    };
    for bc in bcs {
        let p = agglo(&bip, bc, DEFAULT_WINDOW);
        let label = if bc == usize::MAX {
            "BC=∞".to_string()
        } else {
            format!("BC={bc}")
        };
        push("AGGLO", label, p);
    }

    // KMEANS: sweep K (the paper could only finish small K on big data).
    let ks: Vec<usize> = if heavy {
        vec![5, 10]
    } else {
        vec![2, 4, 8, 16, 32]
    };
    for k in ks {
        let p = kmeans(&bip, k, usize::MAX, 7);
        push("KMEANS", format!("K={k}"), p);
    }

    out
}

pub fn run() -> String {
    let mut text =
        String::from("Figure 9: storage size vs checkout time (LyreSplit / AGGLO / KMEANS)\n");
    for spec in partitioning_datasets() {
        let points = sweep_dataset(&spec);
        let mut report = Report::new(&[
            "dataset",
            "algo",
            "param",
            "parts",
            "S_records",
            "est_Cavg",
            "checkout_ms",
        ]);
        for p in &points {
            report.row(vec![
                p.dataset.clone(),
                p.algo.to_string(),
                p.param.clone(),
                p.partitions.to_string(),
                p.storage_records.to_string(),
                format!("{:.0}", p.est_cavg),
                ms(p.measured_ms),
            ]);
        }
        text.push_str(&report.render());
        text.push('\n');
    }
    text
}

/// Appendix D.2 (Figures 20–23): cost-model validation from the same sweep.
pub fn run_appendix() -> String {
    let mut text = String::from(
        "Figures 20/21 (estimated storage vs estimated checkout cost) and \
         22/23 (estimated checkout cost vs real time)\n",
    );
    // A subset of datasets suffices for the correlation plots.
    for spec in [&partitioning_datasets()[0], &partitioning_datasets()[3]] {
        let points = sweep_dataset(spec);
        let mut report = Report::new(&[
            "dataset",
            "algo",
            "est_S_records",
            "est_Cavg",
            "measured_ms",
            "ms_per_1k_records",
        ]);
        for p in &points {
            let per_k = if p.est_cavg > 0.0 {
                p.measured_ms / (p.est_cavg / 1000.0)
            } else {
                0.0
            };
            report.row(vec![
                p.dataset.clone(),
                p.algo.to_string(),
                p.storage_records.to_string(),
                format!("{:.0}", p.est_cavg),
                ms(p.measured_ms),
                format!("{per_k:.3}"),
            ]);
        }
        text.push_str(&report.render());
        text.push('\n');
    }
    text.push_str(
        "Linearity check: ms_per_1k_records should be roughly constant per dataset \
         (checkout time ∝ estimated cost, Appendix D.2).\n",
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadKind, WorkloadParams};

    #[test]
    fn sweep_produces_tradeoff_on_tiny_data() {
        let spec = DatasetSpec {
            paper_name: "SCI_TINY",
            name: "SCI_TINY",
            kind: WorkloadKind::Sci,
            versions: 30,
            branches: 5,
            inserts: 40,
        };
        let points = sweep_dataset(&spec);
        assert!(points.iter().any(|p| p.algo == "LyreSplit"));
        assert!(points.iter().any(|p| p.algo == "AGGLO"));
        assert!(points.iter().any(|p| p.algo == "KMEANS"));
        // Within LyreSplit, more storage should buy equal-or-lower cost.
        let mut lyre: Vec<&SweepPoint> = points.iter().filter(|p| p.algo == "LyreSplit").collect();
        lyre.sort_by_key(|p| p.storage_records);
        for pair in lyre.windows(2) {
            assert!(
                pair[1].est_cavg <= pair[0].est_cavg * 1.3 + 1.0,
                "checkout cost should trend down as storage grows"
            );
        }
    }

    #[test]
    fn measured_time_is_positive() {
        let w = Workload::generate(WorkloadParams::sci(10, 2, 20));
        let part = Partitioning::single(10);
        let t = measure_partitioning(&w, &part);
        assert!(t > 0.0);
    }
}
