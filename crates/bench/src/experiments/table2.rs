//! Table 2: dataset statistics — |V|, |R|, |E|, B, I, and |R̂| (duplicated
//! records after the DAG→tree transformation) for the CUR datasets.

use crate::datasets::{scale, CUR, SCI};
use crate::harness::Report;

pub fn run() -> String {
    let mut report = Report::new(&[
        "dataset", "paper", "|V|", "|R|", "|E|", "|B|", "|I|", "|R^|", "R^/R",
    ]);
    for spec in SCI.iter().chain(CUR.iter()) {
        let w = spec.generate();
        let (dup, frac) = if w.parents.iter().any(|p| p.len() > 1) {
            let d = w.version_graph().duplicated_records(&w.bipartite());
            (
                d.to_string(),
                format!("{:.1}%", 100.0 * d as f64 / w.num_records as f64),
            )
        } else {
            ("-".into(), "-".into())
        };
        report.row(vec![
            spec.name.to_string(),
            spec.paper_name.to_string(),
            w.num_versions().to_string(),
            w.num_records.to_string(),
            w.num_edges().to_string(),
            spec.branches.to_string(),
            (spec.inserts * scale()).to_string(),
            dup,
            frac,
        ]);
    }
    format!(
        "Table 2: benchmark dataset statistics (scale = {}x)\n{}",
        scale(),
        report.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_and_reports_all_rows() {
        let out = super::run();
        assert!(out.contains("SCI_40K"));
        assert!(out.contains("CUR_400K"));
        // CUR rows report a duplicated-record percentage.
        assert!(out.contains('%'));
    }
}
