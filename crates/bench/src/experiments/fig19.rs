//! Figure 19 (Appendix D.1): validation of the checkout cost model —
//! checkout time vs. partition size |Rk| for hash, merge, and
//! index-nested-loop joins, under data tables clustered on `rid` vs. on
//! the relation primary key.
//!
//! Alongside wall-clock time we report the engine's modeled I/O cost,
//! which deterministically reproduces the clustered/unclustered asymmetry
//! the paper observed on spinning disks.

use orpheus_engine::{Database, Value};

use crate::harness::{ms, time_op, Report};

/// Build a data table of `n` records (rid, pk TEXT, 3 int attrs) plus an
/// rlist table of `k` sampled rids.
fn setup(n: usize, k: usize, cluster_on_rid: bool) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE data (rid INT PRIMARY KEY, pk TEXT, x INT, y INT, z INT)")
        .expect("create data");
    db.execute("CREATE TABLE rl (rid_tmp INT)")
        .expect("create rl");
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            // A PK that orders differently from rid.
            let pk = format!("k{:08}", (i.wrapping_mul(2654435761)) % n);
            vec![
                Value::Int(i as i64),
                Value::Text(pk),
                Value::Int((i % 97) as i64),
                Value::Int((i % 31) as i64),
                Value::Int((i % 7) as i64),
            ]
        })
        .collect();
    db.table_mut("data")
        .expect("data")
        .insert_many(rows)
        .expect("fill");
    if cluster_on_rid {
        db.execute("CLUSTER data USING (rid)").expect("cluster");
    } else {
        db.execute("CLUSTER data USING (pk)").expect("cluster");
    }
    let step = (n / k).max(1);
    let rl_rows: Vec<Vec<Value>> = (0..k)
        .map(|i| vec![Value::Int(((i * step) % n) as i64)])
        .collect();
    db.table_mut("rl")
        .expect("rl")
        .insert_many(rl_rows)
        .expect("fill rl");
    db
}

/// Measure one cell: (wall ms, modeled io cost).
fn measure(db: &mut Database, strategy: &str) -> (f64, f64) {
    db.execute(&format!("SET join_strategy = '{strategy}'"))
        .expect("set");
    db.stats.reset();
    let mut i = 0;
    let wall = time_op(3, || {
        db.execute(&format!(
            "SELECT d.* INTO co{i} FROM data AS d, rl WHERE d.rid = rl.rid_tmp"
        ))
        .expect("join");
        db.drop_table(&format!("co{i}")).expect("drop");
        i += 1;
    });
    let io = db.stats.snapshot().io_cost / i as f64;
    (wall, io)
}

pub fn run() -> String {
    let scale = crate::datasets::scale();
    let sizes: Vec<usize> = [20_000usize, 50_000, 100_000, 200_000]
        .iter()
        .map(|s| s * scale)
        .collect();
    let rlists = [1_000usize, 10_000];
    let mut report = Report::new(&[
        "layout",
        "join",
        "|rlist|",
        "|Rk|",
        "wall_ms",
        "model_io_cost",
    ]);
    for cluster_on_rid in [true, false] {
        let layout = if cluster_on_rid {
            "clustered-rid"
        } else {
            "clustered-PK"
        };
        for strategy in ["hash", "merge", "inl"] {
            for &k in &rlists {
                for &n in &sizes {
                    if k > n {
                        continue;
                    }
                    let mut db = setup(n, k, cluster_on_rid);
                    let (wall, io) = measure(&mut db, strategy);
                    report.row(vec![
                        layout.into(),
                        strategy.into(),
                        k.to_string(),
                        n.to_string(),
                        ms(wall),
                        format!("{io:.0}"),
                    ]);
                }
            }
        }
    }
    format!(
        "Figure 19: checkout cost model validation (join strategy × physical layout)\n{}",
        report.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_join_cost_scales_linearly_with_table_size() {
        let mut small = setup(5_000, 500, true);
        let mut large = setup(20_000, 500, true);
        let (_, io_small) = measure(&mut small, "hash");
        let (_, io_large) = measure(&mut large, "hash");
        let ratio = io_large / io_small;
        assert!(
            ratio > 2.0 && ratio < 8.0,
            "hash-join io should grow ~linearly with |Rk| (ratio {ratio})"
        );
    }

    #[test]
    fn inl_on_unclustered_heap_pays_random_io() {
        let mut clustered = setup(20_000, 2_000, true);
        let mut unclustered = setup(20_000, 2_000, false);
        let (_, io_c) = measure(&mut clustered, "inl");
        let (_, io_u) = measure(&mut unclustered, "inl");
        assert!(
            io_u > io_c,
            "unclustered INL should cost more ({io_u} vs {io_c})"
        );
    }

    #[test]
    fn strategies_return_identical_results() {
        for strategy in ["hash", "merge", "inl"] {
            let mut db = setup(2_000, 100, true);
            db.execute(&format!("SET join_strategy = '{strategy}'"))
                .unwrap();
            let r = db
                .query("SELECT count(*) FROM data AS d, rl WHERE d.rid = rl.rid_tmp")
                .unwrap();
            assert_eq!(r.scalar(), Some(&Value::Int(100)), "strategy {strategy}");
        }
    }
}
