//! Bulk-load a generated workload into an OrpheusDB CVD under any data
//! model, bypassing the commit-time diff (the generator already knows
//! which rids are new) but writing through the same persistence paths the
//! production commit uses.

use orpheus_core::cvd::{Cvd, VersionMeta};
use orpheus_core::model::{self, CommitData, ModelKind};
use orpheus_core::{OrpheusDB, Result, Vid};
use orpheus_engine::{Column, DataType, Schema, Value};

use crate::generator::Workload;

/// Schema used for benchmark CVDs: `attrs` integer columns `a0..aN`, no
/// primary key (the benchmark's records are identified by rid alone).
pub fn bench_schema(attrs: usize) -> Schema {
    Schema::new(
        (0..attrs)
            .map(|i| Column::new(format!("a{i}"), DataType::Int))
            .collect(),
    )
}

/// Load a workload as a CVD named `name` into the database.
pub fn load_workload(
    odb: &mut OrpheusDB,
    name: &str,
    workload: &Workload,
    model: ModelKind,
) -> Result<()> {
    let schema = bench_schema(workload.params.attrs);
    let mut cvd = Cvd::new(name, schema, model);
    model::init_storage(&mut odb.engine, &cvd)?;
    cvd.create_meta_tables(&mut odb.engine)?;

    for v in 0..workload.num_versions() {
        let vid = Vid(v as u64 + 1);
        let rlist: Vec<i64> = workload.version_rids[v]
            .iter()
            .map(|&r| r as i64 + 1)
            .collect();
        let new_rids = workload.new_rids_of(v);
        let new_set: std::collections::HashSet<usize> = new_rids.iter().copied().collect();
        let new_records: Vec<(i64, Vec<Value>)> = new_rids
            .iter()
            .map(|&r| (r as i64 + 1, values_of(workload, r)))
            .collect();
        let kept: Vec<i64> = workload.version_rids[v]
            .iter()
            .filter(|r| !new_set.contains(r))
            .map(|&r| r as i64 + 1)
            .collect();
        // Only the table-per-version and delta models read all_records
        // (TPV copies everything; delta diffs against the base parent);
        // skip materializing it otherwise to keep loading fast.
        let all_records: Vec<(i64, Vec<Value>)> =
            if model == ModelKind::TablePerVersion || model == ModelKind::DeltaBased {
                workload.version_rids[v]
                    .iter()
                    .map(|&r| (r as i64 + 1, values_of(workload, r)))
                    .collect()
            } else {
                new_records.clone()
            };
        let parents: Vec<Vid> = workload.parents[v]
            .iter()
            .map(|&p| Vid(p as u64 + 1))
            .collect();
        // One sorted-merge overlap pass per parent feeds both the base
        // choice and the stored weights (same as the production commit).
        let parent_weights = cvd.parent_overlaps(&rlist, &parents);
        let base = parents
            .iter()
            .copied()
            .zip(parent_weights.iter().copied())
            .max_by_key(|&(_, w)| w)
            .map(|(p, _)| p);
        let deleted_from_base = match base {
            Some(b) => orpheus_core::cvd::sorted_difference(cvd.rids_of(b)?, &rlist),
            None => Vec::new(),
        };
        let data = CommitData {
            vid,
            rlist: rlist.clone(),
            kept,
            new_records,
            all_records,
            base,
            deleted_from_base,
        };
        model::persist_commit(&mut odb.engine, &cvd, &data, true)?;
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid,
            parents,
            parent_weights,
            checkout_t: None,
            commit_t: vid.0,
            message: String::new(),
            attributes,
            num_records: rlist.len() as u64,
            base,
        });
        cvd.version_rids.push(std::sync::Arc::new(rlist));
        cvd.next_rid = cvd.next_rid.max(workload.num_records as u64 + 1);
    }
    odb.import_cvd(cvd)?;
    Ok(())
}

fn values_of(workload: &Workload, rid: usize) -> Vec<Value> {
    workload
        .record_values(rid)
        .into_iter()
        .map(Value::Int)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadParams;

    #[test]
    fn loads_under_every_model_and_versions_agree() {
        let w = Workload::generate(WorkloadParams::sci(20, 4, 25));
        let mut counts: Vec<Vec<usize>> = Vec::new();
        for model in ModelKind::ALL {
            let mut odb = OrpheusDB::new();
            load_workload(&mut odb, "bench", &w, model).unwrap();
            let cvd = odb.cvd("bench").unwrap();
            assert_eq!(cvd.num_versions(), 20);
            let per_version: Vec<usize> = (1..=20u64)
                .map(|v| odb.version_rows("bench", Vid(v)).unwrap().len())
                .collect();
            counts.push(per_version);
        }
        // All five models materialize identical version contents.
        for c in &counts[1..] {
            assert_eq!(c, &counts[0]);
        }
        // And they match the generator's ground truth.
        for (v, &n) in counts[0].iter().enumerate() {
            assert_eq!(n, w.version_rids[v].len());
        }
    }

    #[test]
    fn checkout_commit_work_after_bulk_load() {
        let w = Workload::generate(WorkloadParams::sci(10, 3, 15));
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &w, ModelKind::SplitByRlist).unwrap();
        odb.checkout("bench", &[Vid(10)], "work").unwrap();
        odb.engine
            .execute("INSERT INTO work VALUES (NULL, 1, 2, 3, 4, 5, 6, 7, 8)")
            .unwrap();
        let v11 = odb.commit("work", "post-load commit").unwrap();
        assert_eq!(v11, Vid(11));
        assert_eq!(
            odb.version_rows("bench", v11).unwrap().len(),
            w.version_rids[9].len() + 1
        );
    }
}
