//! Criterion microbenchmarks for Figure 3: per-model commit and checkout
//! latency, plus the SQL-vs-bulk loading ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::loader::load_workload;
use orpheus_core::{ModelKind, OrpheusDB, Vid};

fn workload() -> Workload {
    Workload::generate(WorkloadParams::sci(40, 6, 60))
}

fn bench_checkout(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("fig3_checkout");
    group.sample_size(10);
    for model in ModelKind::ALL {
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &w, model).expect("load");
        let latest = Vid(w.num_versions() as u64);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(model.name()), |b| {
            b.iter(|| {
                let t = format!("co{i}");
                odb.checkout("bench", &[latest], &t).expect("checkout");
                odb.discard(&t).expect("discard");
                i += 1;
            })
        });
    }
    group.finish();
}

fn bench_commit(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("fig3_commit");
    group.sample_size(10);
    for model in ModelKind::ALL {
        let mut odb = OrpheusDB::new();
        load_workload(&mut odb, "bench", &w, model).expect("load");
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(model.name()), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    // Check out the current latest version (untimed setup).
                    let latest = Vid(odb.cvd("bench").expect("cvd").num_versions() as u64);
                    let t = format!("cm{i}");
                    i += 1;
                    odb.checkout("bench", &[latest], &t).expect("checkout");
                    let start = std::time::Instant::now();
                    odb.commit(&t, "bench commit").expect("commit");
                    total += start.elapsed();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_load_paths(c: &mut Criterion) {
    // Ablation: bulk (table API) loading vs SQL INSERT loading of the same
    // initial version.
    let w = Workload::generate(WorkloadParams::sci(2, 1, 200));
    let rows: Vec<Vec<orpheus_engine::Value>> = w.version_rids[0]
        .iter()
        .map(|&r| {
            w.record_values(r)
                .into_iter()
                .map(orpheus_engine::Value::Int)
                .collect()
        })
        .collect();
    let schema = orpheus_bench::loader::bench_schema(w.params.attrs);

    let mut group = c.benchmark_group("load_path");
    group.sample_size(10);
    group.bench_function("init_cvd (bulk)", |b| {
        b.iter(|| {
            let mut odb = OrpheusDB::new();
            odb.init_cvd("d", schema.clone(), rows.clone(), None)
                .expect("init");
        })
    });
    group.bench_function("sql_inserts", |b| {
        b.iter(|| {
            let mut db = orpheus_engine::Database::new();
            db.execute(
                "CREATE TABLE t (a0 INT, a1 INT, a2 INT, a3 INT, a4 INT, a5 INT, a6 INT, a7 INT)",
            )
            .expect("create");
            orpheus_core::model::insert_rows_sql(&mut db, "t", &rows).expect("insert");
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checkout, bench_commit, bench_load_paths);
criterion_main!(benches);
