//! Criterion benches for the persistence layer and the range-encoding
//! codec: snapshot serialize/deserialize throughput (the cost the CLI pays
//! per durable command) and RangeSet operations on version/record lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::loader::load_workload;
use orpheus_core::compress::RangeSet;
use orpheus_core::persist;
use orpheus_core::{ModelKind, OrpheusDB};

fn workload_instance(versions: usize) -> OrpheusDB {
    let w = Workload::generate(WorkloadParams::sci(versions, 4, 50));
    let mut odb = OrpheusDB::new();
    load_workload(&mut odb, "d", &w, ModelKind::SplitByRlist).expect("load");
    odb
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");
    for versions in [20usize, 80] {
        let odb = workload_instance(versions);
        let bytes = persist::serialize(&odb);
        group.bench_with_input(BenchmarkId::new("serialize", versions), &odb, |b, odb| {
            b.iter(|| persist::serialize(odb))
        });
        group.bench_with_input(
            BenchmarkId::new("deserialize", versions),
            &bytes,
            |b, bytes| b.iter(|| persist::deserialize(bytes).expect("load")),
        );
    }
    group.finish();
}

fn bench_range_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_codec");
    // A versioning-table-shaped list: long runs with periodic holes.
    let values: Vec<i64> = (0..100_000).filter(|v| v % 97 != 0).collect();
    group.bench_function("encode_100k", |b| {
        b.iter(|| RangeSet::from_sorted_unique(&values))
    });
    let set = RangeSet::from_sorted_unique(&values);
    group.bench_function("contains_100k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for v in (0..100_000).step_by(101) {
                if set.contains(v) {
                    hits += 1;
                }
            }
            hits
        })
    });
    let other = RangeSet::from_values((50_000..150_000).filter(|v| v % 89 != 0));
    group.bench_function("union_100k", |b| b.iter(|| set.union(&other)));
    group.bench_function("decode_100k", |b| b.iter(|| set.to_values()));
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_range_codec);
criterion_main!(benches);
