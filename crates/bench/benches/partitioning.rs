//! Criterion benchmarks for the partitioning algorithms (Figures 10/11),
//! the LyreSplit edge-pick ablation, and migration planning (Figures
//! 14b/15b).

use criterion::{criterion_group, criterion_main, Criterion};

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_partition::agglo::agglo_for_budget;
use orpheus_partition::kmeans::kmeans_for_budget;
use orpheus_partition::lyresplit::{lyresplit, lyresplit_for_budget, EdgePick};
use orpheus_partition::migration::{plan_migration, plan_naive};

fn workload() -> Workload {
    Workload::generate(WorkloadParams::sci(200, 20, 100))
}

fn bench_partitioners(c: &mut Criterion) {
    let w = workload();
    let tree = w.version_graph().to_tree();
    let bip = w.bipartite();
    let gamma = 2 * bip.num_records() as u64;

    let mut group = c.benchmark_group("fig10_partitioners");
    group.sample_size(10);
    group.bench_function("lyresplit_for_budget", |b| {
        b.iter(|| lyresplit_for_budget(&tree, gamma, EdgePick::BalancedVersions))
    });
    group.bench_function("agglo_for_budget", |b| {
        b.iter(|| agglo_for_budget(&bip, gamma))
    });
    group.bench_function("kmeans_for_budget", |b| {
        b.iter(|| kmeans_for_budget(&bip, gamma, 7))
    });
    group.finish();
}

fn bench_edge_pick_ablation(c: &mut Criterion) {
    let w = workload();
    let tree = w.version_graph().to_tree();
    let mut group = c.benchmark_group("lyresplit_edge_pick");
    group.sample_size(20);
    group.bench_function("smallest_weight", |b| {
        b.iter(|| lyresplit(&tree, 0.5, EdgePick::SmallestWeight))
    });
    group.bench_function("balanced_versions", |b| {
        b.iter(|| lyresplit(&tree, 0.5, EdgePick::BalancedVersions))
    });
    group.finish();
}

fn bench_migration(c: &mut Criterion) {
    let w = workload();
    let tree = w.version_graph().to_tree();
    let bip = w.bipartite();
    let old = lyresplit(&tree, 0.3, EdgePick::BalancedVersions).partitioning;
    let new = lyresplit(&tree, 0.5, EdgePick::BalancedVersions).partitioning;

    let mut group = c.benchmark_group("fig14_migration_planning");
    group.sample_size(10);
    group.bench_function("intelligent", |b| {
        b.iter(|| plan_migration(&bip, Some(&tree), &old, &new))
    });
    group.bench_function("naive", |b| b.iter(|| plan_naive(&bip, &old, &new)));
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioners,
    bench_edge_pick_ablation,
    bench_migration
);
criterion_main!(benches);
