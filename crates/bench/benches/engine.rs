//! Criterion benchmarks for the engine substrate: the three join
//! strategies of Figure 19, array-containment scans, and partitioned vs.
//! unpartitioned checkout (Figures 12/13 in miniature).

use criterion::{criterion_group, criterion_main, Criterion};

use orpheus_bench::generator::{Workload, WorkloadParams};
use orpheus_bench::loader::load_workload;
use orpheus_core::{ModelKind, OrpheusDB, Vid};
use orpheus_engine::{Database, Value};

fn join_db(n: usize, k: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE data (rid INT PRIMARY KEY, x INT, y INT)")
        .expect("create");
    db.execute("CREATE TABLE rl (rid_tmp INT)").expect("create");
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int((i % 13) as i64),
                Value::Int((i % 7) as i64),
            ]
        })
        .collect();
    db.table_mut("data")
        .expect("t")
        .insert_many(rows)
        .expect("fill");
    let rl: Vec<Vec<Value>> = (0..k)
        .map(|i| vec![Value::Int(((i * 7) % n) as i64)])
        .collect();
    db.table_mut("rl")
        .expect("t")
        .insert_many(rl)
        .expect("fill");
    db.execute("CLUSTER data USING (rid)").expect("cluster");
    db
}

fn bench_join_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_joins");
    group.sample_size(10);
    for strategy in ["hash", "merge", "inl"] {
        let mut db = join_db(50_000, 5_000);
        db.execute(&format!("SET join_strategy = '{strategy}'"))
            .expect("set");
        group.bench_function(strategy, |b| {
            b.iter(|| {
                db.query("SELECT count(*) FROM data AS d, rl WHERE d.rid = rl.rid_tmp")
                    .expect("join")
            })
        });
    }
    group.finish();
}

fn bench_containment_scan(c: &mut Criterion) {
    // The combined-table checkout primitive: ARRAY[v] <@ vlist over a scan.
    let mut db = Database::new();
    db.execute("CREATE TABLE t (rid INT PRIMARY KEY, vlist INT[])")
        .expect("create");
    let rows: Vec<Vec<Value>> = (0..20_000)
        .map(|i| {
            let vl: Vec<i64> = (0..(i % 10 + 1)).map(|v| v as i64 + 1).collect();
            vec![Value::Int(i as i64), Value::IntArray(vl)]
        })
        .collect();
    db.table_mut("t")
        .expect("t")
        .insert_many(rows)
        .expect("fill");
    let mut group = c.benchmark_group("engine_scans");
    group.sample_size(10);
    group.bench_function("array_containment", |b| {
        b.iter(|| {
            db.query("SELECT count(*) FROM t WHERE ARRAY[5] <@ vlist")
                .expect("scan")
        })
    });
    group.bench_function("index_point_lookup", |b| {
        b.iter(|| {
            db.query("SELECT vlist FROM t WHERE rid = 17777")
                .expect("lookup")
        })
    });
    group.finish();
}

fn bench_partitioned_checkout(c: &mut Criterion) {
    let w = Workload::generate(WorkloadParams::sci(80, 12, 100));
    let latest = Vid(w.num_versions() as u64);

    let mut group = c.benchmark_group("fig12_checkout");
    group.sample_size(10);

    let mut plain = OrpheusDB::new();
    load_workload(&mut plain, "bench", &w, ModelKind::SplitByRlist).expect("load");
    let mut i = 0usize;
    group.bench_function("unpartitioned", |b| {
        b.iter(|| {
            let t = format!("a{i}");
            plain.checkout("bench", &[latest], &t).expect("checkout");
            plain.discard(&t).expect("discard");
            i += 1;
        })
    });

    let mut parted = OrpheusDB::new();
    load_workload(&mut parted, "bench", &w, ModelKind::SplitByRlist).expect("load");
    parted.optimize_with("bench", 2.0, 1.5).expect("optimize");
    let mut j = 0usize;
    group.bench_function("lyresplit_gamma2", |b| {
        b.iter(|| {
            let t = format!("b{j}");
            parted.checkout("bench", &[latest], &t).expect("checkout");
            parted.discard(&t).expect("discard");
            j += 1;
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_join_strategies,
    bench_containment_scan,
    bench_partitioned_checkout
);
criterion_main!(benches);
