//! End-to-end tests of the differential oracle harness
//! (`orpheus_bench::differential`): all five executor arms replay the same
//! generated history and must agree with the naive reference model; a
//! deliberately corrupted oracle must make the gate fail (not vacuously
//! green); and checkout equality must hold across schema-evolution
//! boundaries under every storage model.

use orpheus_bench::differential::{replay, run_differential, verify_against, Arm, Ctx, DiffConfig};
use orpheus_bench::generator::{HistoryGen, HistoryParams};
use orpheus_bench::oracle::Oracle;
use orpheus_core::{ModelKind, OrpheusDB};

/// A deep-enough-to-be-interesting history that still runs in seconds:
/// branches, merges, skew, and two schema evolutions.
fn small_history(seed: u64) -> HistoryParams {
    HistoryParams {
        versions: 14,
        branches: 3,
        fork_every: 4,
        base_rows: 100,
        inserts: 18,
        attrs: 5,
        insert_fraction: 0.8,
        merge_prob: 0.25,
        skew: 0.5,
        evolve_every: 4,
        seed,
    }
}

#[test]
fn all_five_arms_agree_with_the_oracle() {
    let cfg = DiffConfig {
        params: small_history(0xA11),
        model: ModelKind::SplitByRlist,
        arms: Arm::ALL.to_vec(),
        checkout_samples: 5,
        label: "smoke-test".into(),
    };
    let stats = run_differential(&cfg).expect("all arms agree");
    assert_eq!(stats.len(), 5);
    for s in &stats {
        assert_eq!(s.versions, 14);
        assert!(s.requests > 14, "{}: replay must issue real traffic", s.arm);
        assert!(s.req_per_s > 0.0 && s.p50_us > 0.0 && s.p99_us >= s.p50_us);
    }
    let names: Vec<&str> = stats.iter().map(|s| s.arm).collect();
    assert_eq!(
        names,
        vec!["inproc", "concurrent", "async", "remote", "wal_reopen"]
    );
}

#[test]
fn schema_evolution_checkouts_agree_for_every_model() {
    // Verify every version (not a sample) so the checkouts straddling each
    // ALTER TABLE boundary are all checked, under all five models.
    let params = small_history(0xE70);
    for model in ModelKind::ALL {
        let cfg = DiffConfig {
            params: params.clone(),
            model,
            arms: vec![Arm::InProcess],
            checkout_samples: params.versions,
            label: "evolution-test".into(),
        };
        run_differential(&cfg).unwrap_or_else(|e| panic!("{model:?}: {e}"));
    }
}

/// Replay honestly, then corrupt the oracle three different ways; the gate
/// must fail each time, with a seed-bearing, reproducible message.
#[test]
fn corrupted_oracles_are_detected_not_vacuously_green() {
    let params = small_history(0xBAD);
    let model = ModelKind::CombinedTable;
    let ctx = Ctx::for_test("mutation", model, params.seed);
    let mut odb = OrpheusDB::new();
    replay(
        &mut odb,
        HistoryGen::new(params.clone()),
        model,
        false,
        &ctx,
    )
    .expect("honest replay succeeds");
    let oracle = Oracle::replay(HistoryGen::new(params.clone()));
    let all: Vec<u64> = (1..=oracle.num_versions() as u64).collect();
    verify_against(&mut odb, &oracle, &all, &ctx).expect("honest oracle agrees");

    // 1. Graph corruption: rewire a version's parents.
    let mut bad = oracle.clone();
    bad.versions[6].parents = vec![1];
    let err = verify_against(&mut odb, &bad, &all, &ctx).expect_err("must detect parent rewire");
    assert!(err.contains("graph:"), "unexpected message: {err}");
    assert!(
        err.contains("seed=2989") && err.contains("reproduce:"),
        "failures must name the seed and a reproduction command: {err}"
    );

    // 2. Rlist corruption with unchanged cardinality (so the graph pass
    //    cannot catch it): shift the smallest rid down one — the list
    //    stays sorted, unique, and the same length.
    let mut bad = oracle.clone();
    bad.versions[9].rlist[0] -= 1;
    let err = verify_against(&mut odb, &bad, &all, &ctx).expect_err("must detect rlist swap");
    assert!(err.contains("rlist:"), "unexpected message: {err}");

    // 3. Row-content corruption: pretend a record was born narrower than
    //    it was, so its expected values no longer match the engine's.
    let mut bad = oracle.clone();
    bad.record_width[0] = 1;
    let err = verify_against(&mut odb, &bad, &all, &ctx).expect_err("must detect value drift");
    assert!(err.contains("rows:"), "unexpected message: {err}");
}

#[test]
fn arm_lists_parse_strictly() {
    assert_eq!(
        Arm::parse_list("inproc, wal_reopen").unwrap(),
        vec![Arm::InProcess, Arm::WalReopen]
    );
    assert_eq!(
        Arm::parse_list("inproc,inproc,async").unwrap(),
        vec![Arm::InProcess, Arm::Async]
    );
    assert!(Arm::parse_list("inprocess").is_err());
    assert!(Arm::parse_list("").is_err());
}
