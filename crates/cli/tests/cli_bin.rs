//! End-to-end tests spawning the real `orpheus` binary: a multi-invocation
//! data-science session against a durable snapshot file, exercising the
//! process boundary the library tests cannot.

use std::path::PathBuf;
use std::process::{Command, Output};

fn orpheus(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_orpheus"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn setup_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("orpheus-bin-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("interactions.csv"),
        "protein1,protein2,score\nENSP273047,ENSP261890,53\nENSP273047,ENSP235932,87\nENSP300413,ENSP274242,426\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("schema.txt"),
        "protein1:text!pk\nprotein2:text!pk\nscore:int\n",
    )
    .unwrap();
    dir
}

#[test]
fn full_session_across_processes() {
    let dir = setup_dir("session");

    // 1. init
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "init",
            "ppi",
            "-f",
            "interactions.csv",
            "-s",
            "schema.txt",
        ],
    );
    assert!(o.status.success(), "init failed: {}", stderr(&o));
    assert!(stdout(&o).contains("initialized CVD ppi"));

    // 2. checkout in a second process
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "checkout",
            "ppi",
            "-v",
            "1",
            "-t",
            "work",
        ],
    );
    assert!(o.status.success(), "{}", stderr(&o));

    // 3. edit via SQL in a third process, then commit in a fourth
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "run",
            "UPDATE work SET score = 100 WHERE protein2 = 'ENSP261890'",
        ],
    );
    assert!(o.status.success(), "{}", stderr(&o));
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "commit",
            "-t",
            "work",
            "-m",
            "recalibrated scores",
        ],
    );
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("v2"));

    // 4. versioned queries see the edit in v2 but not in v1
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "run",
            "SELECT score FROM VERSION 2 OF CVD ppi WHERE protein2 = 'ENSP261890'",
        ],
    );
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("100"), "{}", stdout(&o));
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "run",
            "SELECT score FROM VERSION 1 OF CVD ppi WHERE protein2 = 'ENSP261890'",
        ],
    );
    assert!(stdout(&o).contains("53"), "{}", stdout(&o));

    // 5. history shows the commit message
    let o = orpheus(&dir, &["--db", "team.orpheus", "log", "ppi"]);
    assert!(stdout(&o).contains("recalibrated scores"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_exit_nonzero_with_message() {
    let dir = setup_dir("errors");
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "checkout",
            "missing",
            "-v",
            "1",
            "-t",
            "t",
        ],
    );
    assert!(!o.status.success());
    assert!(stderr(&o).contains("CVD not found"), "{}", stderr(&o));

    let o = orpheus(&dir, &["--frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown global flag"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repl_over_stdin_pipe() {
    use std::io::Write;
    use std::process::Stdio;

    let dir = setup_dir("repl");
    let mut child = Command::new(env!("CARGO_BIN_EXE_orpheus"))
        .current_dir(&dir)
        .args(["--db", "team.orpheus", "repl"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"init ppi -f interactions.csv -s schema.txt\nls\nexit\n")
        .unwrap();
    let o = child.wait_with_output().unwrap();
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("ppi"), "{}", stdout(&o));

    // The REPL session persisted its state.
    let o = orpheus(&dir, &["--db", "team.orpheus", "ls"]);
    assert!(stdout(&o).contains("ppi"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_snapshot_is_reported_not_mangled() {
    let dir = setup_dir("corrupt");
    let o = orpheus(
        &dir,
        &[
            "--db",
            "team.orpheus",
            "init",
            "ppi",
            "-f",
            "interactions.csv",
            "-s",
            "schema.txt",
        ],
    );
    assert!(o.status.success());

    // Flip a byte in the snapshot.
    let path = dir.join("team.orpheus");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let o = orpheus(&dir, &["--db", "team.orpheus", "ls"]);
    assert!(!o.status.success());
    assert!(
        stderr(&o).contains("storage error") || stderr(&o).contains("corrupt"),
        "{}",
        stderr(&o)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
