//! The `orpheus` binary: a thin shell around [`orpheus_cli::run`].

use std::io::{stderr, stdin, stdout, IsTerminal};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let interactive = stdin().is_terminal();
    let mut input = stdin().lock();
    let mut out = stdout().lock();
    let mut err = stderr().lock();
    match orpheus_cli::run(&args, interactive, &mut input, &mut out, &mut err) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            use std::io::Write;
            let _ = writeln!(err, "orpheus: {e}");
            ExitCode::FAILURE
        }
    }
}
