//! # orpheus-cli
//!
//! The `orpheus` command-line client (Section 2.2 of the paper): git-style
//! version control commands plus versioned SQL, with **durable sessions** —
//! the instance state is loaded from and saved back to a snapshot file, so
//! separate invocations see the same CVDs, exactly like the paper's client
//! talking to a persistent PostgreSQL.
//!
//! ```text
//! orpheus --db team.orpheus init protein -f data.csv -s schema.txt
//! orpheus --db team.orpheus checkout protein -v 1 -t work
//! orpheus --db team.orpheus run "SELECT count(*) FROM VERSION 1 OF CVD protein"
//! orpheus --db team.orpheus repl        # interactive session
//! orpheus --db team.orpheus --batch script.txt   # a script as ONE batch
//! orpheus --db team.orpheus --async --as alice --batch script.txt
//! orpheus --db team.orpheus --serve 127.0.0.1:7617   # run as a service
//! orpheus --connect 127.0.0.1:7617 --as alice ls     # ...and talk to it
//! ```
//!
//! Without `--db` the client runs against a fresh in-memory instance that
//! lives for the duration of the invocation (useful with `repl` and for
//! demos). Command lines are parsed into typed
//! [`orpheus_core::Request`]s by [`orpheus_core::commands`] and executed
//! over the command bus ([`orpheus_core::Executor`]); this crate adds
//! argument handling, [`Response`] rendering, and
//! the load/save lifecycle.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use orpheus_core::commands::{parse_command, run_command, FileAccess, RealFiles};
use orpheus_core::{
    recovery, AsyncExecutor, CoreError, Executor, OrpheusDB, Response, Result, SharedOrpheusDB,
};
use orpheus_net::{NetServer, RemoteExecutor, RetryPolicy, DEFAULT_TIMEOUT};

mod render;

pub use render::{format_result, render_response};

/// Parsed invocation: global options plus the command words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// Snapshot file backing this session, if any.
    pub db_path: Option<PathBuf>,
    /// Write-ahead-logged durability directory: the instance is opened
    /// with [`orpheus_core::recovery::open`] (snapshot + log replay) and
    /// every mutation is fsync'd to the log before it is acknowledged.
    /// Mutually exclusive with `--db` (the directory holds its own
    /// snapshots) and `--connect` (durability lives on the server).
    pub wal_dir: Option<PathBuf>,
    /// Run as this user through a concurrent session (per-CVD locking)
    /// instead of driving the instance directly.
    pub user: Option<String>,
    /// Drive everything through an [`AsyncExecutor`] handle (coordinator
    /// thread + per-shard worker pool) instead of a synchronous executor.
    /// Combines with `--as <user>` for the handle identity.
    pub use_async: bool,
    /// Script file submitted as one [`Executor::batch`] call instead of a
    /// command.
    pub batch: Option<PathBuf>,
    /// Listen for remote clients on this address instead of running a
    /// command; the process serves until stdin closes (or says `exit`).
    pub serve: Option<String>,
    /// Drive the command, REPL, or batch script against a remote server
    /// at this address instead of a local instance.
    pub connect: Option<String>,
    /// Reconnect budget for `--connect`: how many times a dropped
    /// connection is re-established (with capped exponential backoff and
    /// in-flight replay) before giving up. `None` uses the default
    /// [`RetryPolicy`]; `Some(0)` disables reconnecting entirely.
    pub retry: Option<u32>,
    /// The command line to run (empty means "show help").
    pub command: Vec<String>,
}

/// Parse argv (without the program name) into an [`Invocation`].
///
/// Recognized global flags, which must precede the command:
/// `--db <path>` / `-d <path>`, `--wal <dir>` / `-w <dir>`,
/// `--as <user>` / `-u <user>`, `--async`,
/// `--batch <file>` / `-b <file>`, `--serve <addr>`, `--connect <addr>`
/// / `-c <addr>`, `--retry <n>`, `--help` / `-h`, `--version` / `-V`.
pub fn parse_args(args: &[String]) -> Result<Invocation> {
    let mut db_path = None;
    let mut wal_dir = None;
    let mut user = None;
    let mut use_async = false;
    let mut batch = None;
    let mut serve = None;
    let mut connect = None;
    let mut retry = None;
    let mut i = 0;
    // Global flags precede the command; command names never start with '-'.
    while i < args.len() && args[i].starts_with('-') {
        match args[i].as_str() {
            "--db" | "-d" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--db needs a path"))?;
                db_path = Some(PathBuf::from(path));
                i += 2;
            }
            "--wal" | "-w" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--wal needs a directory"))?;
                wal_dir = Some(PathBuf::from(path));
                i += 2;
            }
            "--as" | "-u" => {
                let name = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--as needs a user name"))?;
                user = Some(name.clone());
                i += 2;
            }
            "--async" => {
                use_async = true;
                i += 1;
            }
            "--batch" | "-b" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--batch needs a script file"))?;
                batch = Some(PathBuf::from(path));
                i += 2;
            }
            "--serve" => {
                let addr = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--serve needs an address"))?;
                serve = Some(addr.clone());
                i += 2;
            }
            "--connect" | "-c" => {
                let addr = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--connect needs an address"))?;
                connect = Some(addr.clone());
                i += 2;
            }
            "--retry" => {
                let n = args
                    .get(i + 1)
                    .ok_or_else(|| CoreError::parse_line("--retry needs a reconnect count"))?;
                retry = Some(n.parse::<u32>().map_err(|_| {
                    CoreError::parse_line(format!("--retry needs a number, got {n:?}"))
                })?);
                i += 2;
            }
            "--help" | "-h" => {
                return Ok(Invocation {
                    db_path,
                    wal_dir,
                    user,
                    use_async,
                    batch,
                    serve,
                    connect,
                    retry,
                    command: vec!["help".into()],
                })
            }
            "--version" | "-V" => {
                return Ok(Invocation {
                    db_path,
                    wal_dir,
                    user,
                    use_async,
                    batch,
                    serve,
                    connect,
                    retry,
                    command: vec!["version".into()],
                })
            }
            flag => {
                return Err(CoreError::parse_line(format!("unknown global flag {flag}")));
            }
        }
    }
    Ok(Invocation {
        db_path,
        wal_dir,
        user,
        use_async,
        batch,
        serve,
        connect,
        retry,
        command: args[i..].to_vec(),
    })
}

/// Help text shown by `orpheus help` (and an empty invocation).
pub const HELP: &str = "\
orpheus — bolt-on dataset versioning (OrpheusDB, VLDB 2017)

usage: orpheus [--db <snapshot>] <command> [args...]

version control commands:
  init <cvd> -f <data.csv> -s <schema.txt> [-model <m>]
                                    create a CVD from a CSV file
  checkout <cvd> -v <vids...> -t <table>   materialize version(s) as a table
  checkout <cvd> -v <vids...> -f <file>    ...or as a CSV file
  commit -t <table> [-m <msg>]             commit a staged table
  commit -f <file> [-s <schema>] [-m <msg>]  commit a CSV file
  diff <cvd> -v <v1> <v2>                  records in one version not the other
  log <cvd>                                version history with messages
  ls                                       list CVDs
  drop <cvd>                               remove a CVD
  discard <table>                          abandon a staged checkout
  optimize <cvd> [-gamma <g>] [-mu <m>]    run the LyreSplit partitioner

sql:
  run <sql>            plain SQL, plus `VERSION n OF CVD x` / `CVD x`

users:
  create_user <name> | config <name> | whoami

session:
  repl                 interactive prompt (exit with `exit` or Ctrl-D)
  help | version

The --db flag makes sessions durable: state is loaded from the snapshot
before the command and saved back afterwards. Without it, state lives only
for this invocation.

The --wal <dir> flag makes sessions crash-durable: the instance is opened
from the directory's latest snapshot plus a replay of its write-ahead
log, and every mutation is fsync'd to the log before it is acknowledged —
kill -9 at any point loses nothing that was acknowledged. The log is
periodically folded into a fresh snapshot (checkpoint); tune with
ORPHEUS_CHECKPOINT_BYTES (log size that triggers rotation, default 4 MiB)
and, under --serve, ORPHEUS_CHECKPOINT_SECS (ticker period, default 5).
Mutually exclusive with --db (the directory keeps its own snapshots) and
--connect (durability lives on the server). Composes with --serve, --as,
--async, and --batch.

The --as <user> flag runs the command through a concurrent session under
that identity (registering the account if needed) — the same per-CVD
locked executor a multi-user deployment uses, so checkout ownership is
attributed to <user> rather than the instance identity.

The --batch <file> flag submits a script — one command per line, `#`
comments and blank lines skipped — as a single batch, letting the
executor coalesce lock acquisitions and version scans. Responses come
back in script order; a failing line is reported with its line number
and does not abort the lines after it.

The --async flag puts the async executor (a coordinator thread plus a
per-shard worker pool) in front of the shared instance and drives the
command, REPL, or --batch script through an async handle. Combine with
--as <user> to pick the handle identity. Results are identical to the
synchronous executors; the difference is that submissions never block
on shard locks, which matters when many clients share one instance.

network service:
  --serve <addr>       listen for remote clients (port 0 picks a free
                       port; the resolved address is printed first). The
                       process serves until stdin closes or says `exit`,
                       then drains in-flight work and saves the snapshot.
                       Under --wal, typing `checkpoint` on stdin folds
                       the log into a fresh snapshot on demand — the
                       operator path out of read-only degraded mode
                       after a disk fault.
  --connect <addr>     run the command, REPL, or --batch script against
                       a server instead of a local instance. Composes
                       with --as (the connection identity) but not with
                       --db or --async: the snapshot and the async
                       executor live on the server. Dropped connections
                       are re-established with capped exponential
                       backoff and in-flight requests are replayed
                       idempotently (the server dedups by session +
                       request id).
  --retry <n>          reconnect budget for --connect: how many times a
                       dropped connection is re-established before the
                       client gives up (default 8; 0 disables
                       reconnecting).
Per connection, responses always come back in submission order — even
though the server overlaps execution across shards and clients.";

/// Load the session instance: the snapshot if it exists, otherwise fresh.
fn open_session(inv: &Invocation) -> Result<OrpheusDB> {
    match &inv.db_path {
        Some(p) if p.exists() => OrpheusDB::load_from(p),
        _ => Ok(OrpheusDB::new()),
    }
}

/// Persist the session back to the snapshot, if one was requested.
fn close_session(inv: &Invocation, odb: &OrpheusDB) -> Result<()> {
    match &inv.db_path {
        Some(p) => odb.save_to(p),
        None => Ok(()),
    }
}

fn print_output(out: &mut dyn Write, response: &Response) -> std::io::Result<()> {
    let text = render_response(response);
    if !text.is_empty() {
        write!(out, "{text}")?;
    }
    Ok(())
}

/// Top-level entry point, testable with in-memory streams.
///
/// `interactive` controls whether the REPL prints prompts. Errors from
/// individual REPL lines go to `err` and do not abort the session; errors
/// from one-shot commands are returned.
pub fn run(
    args: &[String],
    interactive: bool,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<()> {
    let inv = parse_args(args)?;
    let io_err = |e: std::io::Error| CoreError::Io(e.to_string());

    if inv.serve.is_some() {
        if inv.connect.is_some() {
            return Err(CoreError::parse_line(
                "--serve and --connect are mutually exclusive",
            ));
        }
        if inv.batch.is_some() || !inv.command.is_empty() {
            return Err(CoreError::parse_line(
                "--serve runs until stdin closes; it takes no command",
            ));
        }
    }
    if inv.connect.is_some() {
        if inv.db_path.is_some() {
            return Err(CoreError::parse_line(
                "--connect talks to a server; the snapshot lives there (drop --db)",
            ));
        }
        if inv.use_async {
            return Err(CoreError::parse_line(
                "--connect already runs on the server's async executor (drop --async)",
            ));
        }
        if inv.wal_dir.is_some() {
            return Err(CoreError::parse_line(
                "--connect talks to a server; durability lives there (drop --wal)",
            ));
        }
    }
    if inv.wal_dir.is_some() && inv.db_path.is_some() {
        return Err(CoreError::parse_line(
            "--wal and --db are mutually exclusive; the WAL directory keeps its own snapshots",
        ));
    }

    let first = inv.command.first().map(|s| s.as_str()).unwrap_or("help");
    if inv.batch.is_none() && inv.serve.is_none() {
        match first {
            "help" => {
                writeln!(out, "{HELP}").map_err(io_err)?;
                return Ok(());
            }
            "version" => {
                writeln!(out, "orpheus {}", env!("CARGO_PKG_VERSION")).map_err(io_err)?;
                return Ok(());
            }
            _ => {}
        }
    } else if !inv.command.is_empty() {
        return Err(CoreError::parse_line(
            "--batch replaces the command; drop the extra words",
        ));
    }
    let batch_script = match &inv.batch {
        Some(path) => Some(std::fs::read_to_string(path).map_err(|e| {
            CoreError::Io(format!("cannot read batch script {}: {e}", path.display()))
        })?),
        None => None,
    };

    // --serve: put a NetServer in front of the (snapshot-backed) instance
    // and block until stdin closes or says `exit` — script- and
    // CI-friendly (close the pipe to stop the server). The resolved
    // address prints first so `--serve 127.0.0.1:0` is usable.
    if let Some(addr) = &inv.serve {
        let shared = match &inv.wal_dir {
            Some(dir) => recovery::open_shared(dir)?,
            None => SharedOrpheusDB::new(open_session(&inv)?),
        };
        let server = NetServer::bind(addr.as_str(), shared.clone())?;
        writeln!(out, "listening on {}", server.local_addr()).map_err(io_err)?;
        out.flush().map_err(io_err)?;
        // In WAL mode, a background ticker rotates the log into a fresh
        // snapshot whenever it outgrows the checkpoint threshold, so a
        // long-lived server's recovery replay stays bounded. Durability
        // never depends on the ticker — every mutation is already fsync'd
        // to the log before it is acknowledged.
        let ticker = inv.wal_dir.as_ref().map(|_| {
            let stop = Arc::new(AtomicBool::new(false));
            let flag = stop.clone();
            let shared = shared.clone();
            let secs = std::env::var("ORPHEUS_CHECKPOINT_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(5);
            let handle = std::thread::spawn(move || {
                let mut slept = 0u64;
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(100));
                    slept += 100;
                    if slept < secs.max(1) * 1000 {
                        continue;
                    }
                    slept = 0;
                    // Best-effort: a failed checkpoint leaves the current
                    // generation serving; the next tick retries.
                    let _ = recovery::maybe_checkpoint_shared(&shared);
                }
            });
            (stop, handle)
        });
        let mut line = String::new();
        loop {
            line.clear();
            if input.read_line(&mut line).map_err(io_err)? == 0 {
                break;
            }
            if matches!(line.trim(), "exit" | "quit" | "\\q") {
                break;
            }
            // Operator recovery: fold the WAL into a fresh snapshot on
            // demand. This is also the documented way out of read-only
            // degraded mode after a disk fault — a successful rotation
            // proves the disk writes again and re-arms the sink.
            if line.trim() == "checkpoint" {
                match &inv.wal_dir {
                    Some(_) => match recovery::checkpoint_shared(&shared) {
                        Ok(generation) => {
                            writeln!(out, "checkpoint complete (generation {generation})")
                                .map_err(io_err)?
                        }
                        Err(e) => writeln!(out, "checkpoint failed: {e}").map_err(io_err)?,
                    },
                    None => {
                        writeln!(out, "checkpoint needs --wal").map_err(io_err)?;
                    }
                }
                out.flush().map_err(io_err)?;
            }
        }
        // Graceful: refuse new frames, drain accepted work, then persist
        // everything the drained work produced.
        server.shutdown();
        if let Some((stop, handle)) = ticker {
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
        if inv.wal_dir.is_some() {
            // Final checkpoint: fold the log into a snapshot so the next
            // open replays nothing. The log alone would already recover
            // every acknowledged mutation.
            recovery::checkpoint_shared(&shared)?;
        }
        if let Some(p) = &inv.db_path {
            shared.save_to(p)?;
        }
        return Ok(());
    }

    let mut odb = match &inv.wal_dir {
        Some(dir) => recovery::open(dir)?,
        None => open_session(&inv)?,
    };
    let mut files = RealFiles;

    // One-shot command: re-join the words. `run` takes the rest of the
    // line as verbatim SQL; for everything else, words with spaces are
    // re-quoted so the command parser sees the shell's grouping.
    let one_shot = |command: &[String]| -> String {
        if first.eq_ignore_ascii_case("run") {
            format!("run {}", command[1..].join(" "))
        } else {
            command
                .iter()
                .map(|w| requote(w))
                .collect::<Vec<_>>()
                .join(" ")
        }
    };

    // What this invocation actually drives through whichever executor the
    // flags select: a batch script, the REPL, or one command line.
    enum Mode<'a> {
        Batch(&'a str),
        Repl,
        OneShot(String),
    }
    let mode = match (&batch_script, first) {
        (Some(script), _) => Mode::Batch(script),
        (None, "repl") => Mode::Repl,
        _ => Mode::OneShot(one_shot(&inv.command)),
    };
    fn drive<E: Executor>(
        executor: &mut E,
        files: &mut dyn FileAccess,
        mode: &Mode<'_>,
        interactive: bool,
        input: &mut dyn BufRead,
        out: &mut dyn Write,
        err: &mut dyn Write,
    ) -> Result<()> {
        let io_err = |e: std::io::Error| CoreError::Io(e.to_string());
        match mode {
            Mode::Batch(script) => {
                run_batch_script(executor, files, script, out, err).map_err(io_err)
            }
            Mode::Repl => repl(executor, files, interactive, input, out, err).map_err(io_err),
            Mode::OneShot(line) => {
                let output = run_command(executor, files, line)?;
                print_output(out, &output).map_err(io_err)
            }
        }
    }

    // --connect: the same modes, driven through a RemoteExecutor — the
    // Executor impl over a server connection. --as picks the connection
    // identity (login is part of connection setup).
    if let Some(addr) = &inv.connect {
        let user = inv.user.as_deref().unwrap_or("default");
        let policy = match inv.retry {
            Some(0) => RetryPolicy::none(),
            Some(n) => RetryPolicy {
                max_reconnects: n,
                ..RetryPolicy::default()
            },
            None => RetryPolicy::default(),
        };
        let mut remote =
            RemoteExecutor::connect_with_policy(addr.as_str(), user, DEFAULT_TIMEOUT, policy)?;
        return drive(&mut remote, &mut files, &mode, interactive, input, out, err);
    }

    // With --as or --async, the instance becomes shared: --as drives a
    // concurrent session (per-CVD locking, session-scoped identity);
    // --async additionally puts the coordinator + per-shard worker pool
    // in front, driving everything through an AsyncExecutor handle.
    if inv.use_async || inv.user.is_some() {
        let shared = SharedOrpheusDB::new(odb);
        if inv.use_async {
            let mut pool = AsyncExecutor::new(shared.clone());
            match &inv.user {
                Some(user) => {
                    let mut handle = pool.handle(user)?;
                    drive(&mut handle, &mut files, &mode, interactive, input, out, err)?;
                }
                None => drive(&mut pool, &mut files, &mode, interactive, input, out, err)?,
            }
            // Join the coordinator and workers before snapshotting, so the
            // saved state reflects every accepted submission.
            drop(pool);
        } else {
            let user = inv.user.as_deref().expect("--as checked");
            let mut session = shared.session(user)?;
            drive(
                &mut session,
                &mut files,
                &mode,
                interactive,
                input,
                out,
                err,
            )?;
        }
        if inv.wal_dir.is_some() {
            // The log already holds every acknowledged mutation; rotate it
            // into a snapshot only if it has outgrown the threshold.
            recovery::maybe_checkpoint_shared(&shared)?;
        }
        if let Some(p) = &inv.db_path {
            shared.save_to(p)?;
        }
        return Ok(());
    }

    drive(&mut odb, &mut files, &mode, interactive, input, out, err)?;
    if inv.wal_dir.is_some() {
        recovery::maybe_checkpoint(&mut odb)?;
    }
    close_session(&inv, &odb)?;
    Ok(())
}

/// Submit a command script as one batch: every parsable line becomes a
/// typed request, the whole vector goes through a single
/// [`Executor::batch`] call, and the responses print in script order.
/// Lines that fail to parse — and requests that fail to execute — are
/// reported to `err` with their line numbers and do not abort the rest,
/// matching the REPL's per-line error recovery.
fn run_batch_script<E: Executor>(
    executor: &mut E,
    files: &mut dyn FileAccess,
    script: &str,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<()> {
    let mut requests = Vec::new();
    let mut line_numbers = Vec::new();
    for (n, line) in script.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_command(files, trimmed) {
            Ok(request) => {
                requests.push(request);
                line_numbers.push(n + 1);
            }
            Err(e) => writeln!(err, "line {}: {e}", n + 1)?,
        }
    }
    let results = executor.batch(requests);
    for (line, result) in line_numbers.into_iter().zip(results) {
        match result {
            Ok(response) => {
                // Exported CSVs are written back here, exactly like
                // `run_command` does for one-shot checkouts.
                if let Response::CheckedOutCsv { path, csv, .. } = &response {
                    if let Err(e) = files.write(path, csv) {
                        writeln!(err, "line {line}: {e}")?;
                        continue;
                    }
                }
                print_output(out, &response)?;
            }
            Err(e) => writeln!(err, "line {line}: {e}")?,
        }
    }
    Ok(())
}

/// Quote a word for the command-line parser if it contains whitespace.
fn requote(word: &str) -> String {
    if word.chars().any(char::is_whitespace) {
        if word.contains('\'') {
            format!("\"{word}\"")
        } else {
            format!("'{word}'")
        }
    } else {
        word.to_string()
    }
}

fn repl<E: Executor>(
    executor: &mut E,
    files: &mut dyn FileAccess,
    interactive: bool,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<()> {
    if interactive {
        writeln!(out, "orpheus repl — `help` for commands, `exit` to leave")?;
    }
    let mut line = String::new();
    loop {
        if interactive {
            write!(out, "orpheus> ")?;
            out.flush()?;
        }
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        match trimmed {
            "" => continue,
            "exit" | "quit" | "\\q" => break,
            "help" => {
                writeln!(out, "{HELP}")?;
                continue;
            }
            _ => {}
        }
        match run_command(executor, files, trimmed) {
            Ok(output) => print_output(out, &output)?,
            Err(e) => writeln!(err, "error: {e}")?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("orpheus-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Run one CLI invocation with empty stdin, returning stdout.
    fn invoke(argv: &[&str]) -> Result<String> {
        let mut input = Cursor::new(Vec::new());
        let mut out = Vec::new();
        let mut err = Vec::new();
        run(&args(argv), false, &mut input, &mut out, &mut err)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn parse_args_variants() {
        let inv = parse_args(&args(&["--db", "x.orpheus", "ls"])).unwrap();
        assert_eq!(inv.db_path, Some(PathBuf::from("x.orpheus")));
        assert_eq!(inv.command, vec!["ls"]);

        let inv = parse_args(&args(&["ls"])).unwrap();
        assert_eq!(inv.db_path, None);

        let inv = parse_args(&args(&["--help"])).unwrap();
        assert_eq!(inv.command, vec!["help"]);

        assert!(parse_args(&args(&["--db"])).is_err());
        assert!(parse_args(&args(&["--bogus", "ls"])).is_err());

        let inv = parse_args(&args(&["--batch", "script.txt"])).unwrap();
        assert_eq!(inv.batch, Some(PathBuf::from("script.txt")));
        assert!(inv.command.is_empty());
        assert!(parse_args(&args(&["--batch"])).is_err());

        let inv = parse_args(&args(&["--async", "--as", "alice", "ls"])).unwrap();
        assert!(inv.use_async);
        assert_eq!(inv.user.as_deref(), Some("alice"));
        assert_eq!(inv.command, vec!["ls"]);
        assert!(!parse_args(&args(&["ls"])).unwrap().use_async);

        let inv = parse_args(&args(&["--serve", "127.0.0.1:0"])).unwrap();
        assert_eq!(inv.serve.as_deref(), Some("127.0.0.1:0"));
        let inv = parse_args(&args(&["--connect", "127.0.0.1:7617", "ls"])).unwrap();
        assert_eq!(inv.connect.as_deref(), Some("127.0.0.1:7617"));
        assert_eq!(inv.command, vec!["ls"]);
        assert_eq!(inv.retry, None);
        assert!(parse_args(&args(&["--serve"])).is_err());
        assert!(parse_args(&args(&["--connect"])).is_err());

        let inv = parse_args(&args(&[
            "--connect",
            "127.0.0.1:7617",
            "--retry",
            "3",
            "ls",
        ]))
        .unwrap();
        assert_eq!(inv.retry, Some(3));
        assert!(parse_args(&args(&["--retry"])).is_err());
        assert!(parse_args(&args(&["--retry", "many"])).is_err());
    }

    #[test]
    fn network_flag_conflicts_are_clean_errors() {
        let bad = |argv: &[&str], needle: &str| {
            let e = invoke(argv).unwrap_err().to_string();
            assert!(e.contains(needle), "{argv:?}: {e}");
        };
        bad(
            &["--serve", "127.0.0.1:0", "--connect", "127.0.0.1:1", "ls"],
            "mutually exclusive",
        );
        bad(&["--serve", "127.0.0.1:0", "ls"], "takes no command");
        bad(
            &["--serve", "127.0.0.1:0", "--batch", "s.txt"],
            "takes no command",
        );
        bad(
            &["--connect", "127.0.0.1:1", "--db", "x.orpheus", "ls"],
            "drop --db",
        );
        bad(
            &["--connect", "127.0.0.1:1", "--async", "ls"],
            "drop --async",
        );
    }

    /// A stdin that blocks until the test feeds it bytes (or hangs up) —
    /// how a shell pipe behaves, which is what `--serve` reads from.
    struct PipedInput {
        rx: std::sync::mpsc::Receiver<Vec<u8>>,
        buf: Vec<u8>,
        pos: usize,
    }

    impl std::io::Read for PipedInput {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos == self.buf.len() {
                match self.rx.recv() {
                    Ok(bytes) => {
                        self.buf = bytes;
                        self.pos = 0;
                    }
                    Err(_) => return Ok(0), // writer hung up: EOF
                }
            }
            let n = (self.buf.len() - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    /// An output sink the test can observe while `run` still borrows it.
    #[derive(Clone, Default)]
    struct SharedOut(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedOut {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedOut {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn serve_and_connect_round_trip() {
        let dir = tmp_dir("serve");
        let db = dir.join("team.orpheus");
        let db_s = db.to_str().unwrap().to_string();
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,10\n2,20\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:int\n").unwrap();

        // The server: `orpheus --db team.orpheus --serve 127.0.0.1:0`,
        // with stdin held open the way a shell pipe would be.
        let (stdin_tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let server_out = SharedOut::default();
        let server = {
            let argv = args(&["--db", &db_s, "--serve", "127.0.0.1:0"]);
            let mut out = server_out.clone();
            std::thread::spawn(move || {
                let mut input = std::io::BufReader::new(PipedInput {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                });
                let mut err = Vec::new();
                run(&argv, false, &mut input, &mut out, &mut err)
            })
        };
        // The resolved address prints first, so port 0 is scriptable.
        let addr = loop {
            if let Some(line) = server_out.text().lines().next() {
                if !line.is_empty() {
                    break line.strip_prefix("listening on ").expect(line).to_string();
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        // One-shot commands, --as identity, and a --batch script all run
        // against the server unmodified.
        invoke(&[
            "--connect",
            &addr,
            "init",
            "kv",
            "-f",
            csv.to_str().unwrap(),
            "-s",
            schema.to_str().unwrap(),
        ])
        .unwrap();
        let out = invoke(&["--connect", &addr, "ls"]).unwrap();
        assert_eq!(out.trim(), "kv");
        invoke(&[
            "--connect",
            &addr,
            "--as",
            "alice",
            "checkout",
            "kv",
            "-v",
            "1",
            "-t",
            "aw",
        ])
        .unwrap();
        let err = invoke(&[
            "--connect",
            &addr,
            "--as",
            "bob",
            "commit",
            "-t",
            "aw",
            "-m",
            "x",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("permission"), "{err}");
        let out = invoke(&[
            "--connect",
            &addr,
            "--as",
            "alice",
            "commit",
            "-t",
            "aw",
            "-m",
            "hers",
        ])
        .unwrap();
        assert!(out.contains("v2"), "{out}");

        let script = dir.join("script.txt");
        std::fs::write(
            &script,
            "checkout kv -v 2 -t w2\ncommit -t w2 -m 'remote batch'\nlog kv\n",
        )
        .unwrap();
        let mut input = Cursor::new(Vec::new());
        let (mut out, mut errs) = (Vec::new(), Vec::new());
        run(
            &args(&["--connect", &addr, "--batch", script.to_str().unwrap()]),
            false,
            &mut input,
            &mut out,
            &mut errs,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let checkout_at = out.find("checked out v2").expect(&out);
        let commit_at = out.find("committed w2 as v3").expect(&out);
        assert!(checkout_at < commit_at, "{out}");
        assert!(out.contains("remote batch"), "{out}");

        // `exit` on the server's stdin stops it; the snapshot then holds
        // everything the remote clients did.
        stdin_tx.send(b"exit\n".to_vec()).unwrap();
        server.join().unwrap().unwrap();
        let listing = invoke(&["--db", &db_s, "log", "kv"]).unwrap();
        assert!(listing.contains("remote batch"), "{listing}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn async_flag_drives_commands_through_the_pool() {
        let dir = tmp_dir("async");
        let db = dir.join("team.orpheus");
        let db_s = db.to_str().unwrap();
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,10\n2,20\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:int\n").unwrap();

        // One-shot commands under --async behave exactly like the
        // synchronous path, including snapshot durability.
        invoke(&[
            "--db",
            db_s,
            "--async",
            "init",
            "kv",
            "-f",
            csv.to_str().unwrap(),
            "-s",
            schema.to_str().unwrap(),
        ])
        .unwrap();
        let out = invoke(&["--db", db_s, "--async", "ls"]).unwrap();
        assert_eq!(out.trim(), "kv");

        // --async --as attributes checkouts to the handle identity.
        invoke(&[
            "--db", db_s, "--async", "--as", "alice", "checkout", "kv", "-v", "1", "-t", "aw",
        ])
        .unwrap();
        let err =
            invoke(&["--db", db_s, "--as", "bob", "commit", "-t", "aw", "-m", "x"]).unwrap_err();
        assert!(err.to_string().contains("permission"), "{err}");
        let out = invoke(&[
            "--db", db_s, "--async", "--as", "alice", "commit", "-t", "aw", "-m", "hers",
        ])
        .unwrap();
        assert!(out.contains("v2"), "{out}");

        // A batch script through the async pool, responses in order.
        let script = dir.join("script.txt");
        std::fs::write(
            &script,
            "checkout kv -v 2 -t w2\ncommit -t w2 -m 'async batch'\nlog kv\n",
        )
        .unwrap();
        let mut input = Cursor::new(Vec::new());
        let (mut out, mut errs) = (Vec::new(), Vec::new());
        run(
            &args(&["--db", db_s, "--async", "--batch", script.to_str().unwrap()]),
            false,
            &mut input,
            &mut out,
            &mut errs,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let checkout_at = out.find("checked out v2").expect(&out);
        let commit_at = out.find("committed w2 as v3").expect(&out);
        assert!(checkout_at < commit_at, "{out}");
        assert!(out.contains("async batch"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_flag_submits_a_script_as_one_batch() {
        let dir = tmp_dir("batch");
        let db = dir.join("team.orpheus");
        let db_s = db.to_str().unwrap();
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,10\n2,20\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:int\n").unwrap();
        let script = dir.join("script.txt");
        std::fs::write(
            &script,
            format!(
                "# provision and edit in one submission\n\
                 init kv -f {} -s {}\n\
                 checkout kv -v 1 -t work\n\
                 \n\
                 bogus nonsense\n\
                 commit -t work -m 'batched commit'\n\
                 checkout kv -v 99 -t broken\n\
                 log kv\n",
                csv.display(),
                schema.display()
            ),
        )
        .unwrap();

        let mut input = Cursor::new(Vec::new());
        let (mut out, mut errs) = (Vec::new(), Vec::new());
        run(
            &args(&["--db", db_s, "--batch", script.to_str().unwrap()]),
            false,
            &mut input,
            &mut out,
            &mut errs,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        let errs = String::from_utf8(errs).unwrap();

        // Responses print in script order.
        let init_at = out.find("initialized CVD kv").expect(&out);
        let commit_at = out.find("committed work as v2").expect(&out);
        let log_at = out.find("batched commit").expect(&out);
        assert!(init_at < commit_at && commit_at < log_at, "{out}");
        // The unparsable line and the failing checkout are reported with
        // their script line numbers, without aborting the later lines.
        assert!(errs.contains("line 5:"), "{errs}");
        assert!(errs.contains("line 7:"), "{errs}");
        // The snapshot reflects the whole batch across invocations.
        let listing = invoke(&["--db", db_s, "log", "kv"]).unwrap();
        assert!(listing.contains("batched commit"), "{listing}");

        // Extra command words alongside --batch are a parse error.
        assert!(run(
            &args(&["--batch", script.to_str().unwrap(), "ls"]),
            false,
            &mut Cursor::new(Vec::new()),
            &mut Vec::new(),
            &mut Vec::new(),
        )
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_flag_drives_a_session_with_the_given_identity() {
        let dir = tmp_dir("batch-as");
        let db = dir.join("team.orpheus");
        let db_s = db.to_str().unwrap();
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,10\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:int\n").unwrap();
        invoke(&[
            "--db",
            db_s,
            "init",
            "kv",
            "-f",
            csv.to_str().unwrap(),
            "-s",
            schema.to_str().unwrap(),
        ])
        .unwrap();

        let script = dir.join("script.txt");
        std::fs::write(&script, "checkout kv -v 1 -t aw\n").unwrap();
        let mut input = Cursor::new(Vec::new());
        let (mut out, mut errs) = (Vec::new(), Vec::new());
        run(
            &args(&[
                "--db",
                db_s,
                "--as",
                "alice",
                "--batch",
                script.to_str().unwrap(),
            ]),
            false,
            &mut input,
            &mut out,
            &mut errs,
        )
        .unwrap();
        // The batched checkout is owned by alice: bob cannot commit it.
        let err =
            invoke(&["--db", db_s, "--as", "bob", "commit", "-t", "aw", "-m", "x"]).unwrap_err();
        assert!(err.to_string().contains("permission"), "{err}");
        invoke(&[
            "--db", db_s, "--as", "alice", "commit", "-t", "aw", "-m", "hers",
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn session_flag_attributes_checkouts_to_the_user() {
        let dir = tmp_dir("as-user");
        let db = dir.join("team.orpheus");
        let db_s = db.to_str().unwrap();
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,10\n2,20\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:int\n").unwrap();

        invoke(&[
            "--db",
            db_s,
            "init",
            "kv",
            "-f",
            csv.to_str().unwrap(),
            "-s",
            schema.to_str().unwrap(),
        ])
        .unwrap();
        // Alice checks out through her session; bob cannot commit her
        // table, alice can.
        invoke(&[
            "--db", db_s, "--as", "alice", "checkout", "kv", "-v", "1", "-t", "work",
        ])
        .unwrap();
        let err = invoke(&[
            "--db", db_s, "--as", "bob", "commit", "-t", "work", "-m", "x",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("permission"), "{err}");
        let out = invoke(&[
            "--db", db_s, "--as", "alice", "commit", "-t", "work", "-m", "hers",
        ])
        .unwrap();
        assert!(out.contains("v2"), "{out}");
        // whoami reports the session identity.
        let out = invoke(&["--db", db_s, "--as", "carol", "whoami"]).unwrap();
        assert_eq!(out.trim(), "carol");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn help_and_version() {
        assert!(invoke(&["help"]).unwrap().contains("checkout"));
        assert!(invoke(&[]).unwrap().contains("usage:"));
        assert!(invoke(&["version"]).unwrap().starts_with("orpheus "));
    }

    #[test]
    fn durable_session_across_invocations() {
        let dir = tmp_dir("durable");
        let db = dir.join("team.orpheus");
        let db_s = db.to_str().unwrap();
        let csv = dir.join("data.csv");
        let schema = dir.join("schema.txt");
        std::fs::write(&csv, "protein1,protein2,score\na,b,10\na,c,95\n").unwrap();
        std::fs::write(&schema, "protein1:text!pk\nprotein2:text!pk\nscore:int\n").unwrap();

        // Invocation 1: init.
        invoke(&[
            "--db",
            db_s,
            "init",
            "protein",
            "-f",
            csv.to_str().unwrap(),
            "-s",
            schema.to_str().unwrap(),
        ])
        .unwrap();
        assert!(db.exists());

        // Invocation 2: the CVD is still there; check out a version.
        let out = invoke(&["--db", db_s, "ls"]).unwrap();
        assert_eq!(out.trim(), "protein");
        invoke(&["--db", db_s, "checkout", "protein", "-v", "1", "-t", "work"]).unwrap();

        // Invocation 3: the staged table survived; commit it.
        let out = invoke(&["--db", db_s, "commit", "-t", "work", "-m", "round trip"]).unwrap();
        assert!(out.contains("v2"), "{out}");

        // Invocation 4: query across versions.
        let out = invoke(&[
            "--db",
            db_s,
            "run",
            "SELECT count(*) FROM VERSION 2 OF CVD protein",
        ])
        .unwrap();
        assert!(out.contains('2'), "{out}");

        // Commit messages with spaces survive requoting + snapshotting.
        let out = invoke(&["--db", db_s, "log", "protein"]).unwrap();
        assert!(out.contains("round trip"), "{out}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn one_shot_errors_propagate_and_leave_no_snapshot() {
        let dir = tmp_dir("err");
        let db = dir.join("x.orpheus");
        let r = invoke(&[
            "--db",
            db.to_str().unwrap(),
            "checkout",
            "nope",
            "-v",
            "1",
            "-t",
            "t",
        ]);
        assert!(r.is_err());
        assert!(!db.exists(), "failed command must not write a snapshot");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repl_runs_commands_and_recovers_from_errors() {
        let dir = tmp_dir("repl");
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,a\n2,b\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:text\n").unwrap();

        let script = format!(
            "init kv -f {} -s {}\n\
             bogus command\n\
             ls\n\
             run SELECT count(*) FROM VERSION 1 OF CVD kv\n\
             exit\n",
            csv.display(),
            schema.display()
        );
        let mut input = Cursor::new(script.into_bytes());
        let mut out = Vec::new();
        let mut err = Vec::new();
        run(&args(&["repl"]), false, &mut input, &mut out, &mut err).unwrap();

        let out = String::from_utf8(out).unwrap();
        let err = String::from_utf8(err).unwrap();
        assert!(out.contains("kv"), "{out}");
        assert!(out.contains('2'), "{out}");
        assert!(err.contains("unknown command"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repl_session_is_durable_with_db_flag() {
        let dir = tmp_dir("repl-db");
        let db = dir.join("s.orpheus");
        let csv = dir.join("d.csv");
        let schema = dir.join("s.txt");
        std::fs::write(&csv, "k,v\n1,a\n").unwrap();
        std::fs::write(&schema, "k:int!pk\nv:text\n").unwrap();

        let script = format!(
            "init kv -f {} -s {}\nexit\n",
            csv.display(),
            schema.display()
        );
        let mut input = Cursor::new(script.into_bytes());
        let (mut out, mut err) = (Vec::new(), Vec::new());
        run(
            &args(&["--db", db.to_str().unwrap(), "repl"]),
            false,
            &mut input,
            &mut out,
            &mut err,
        )
        .unwrap();

        let listing = invoke(&["--db", db.to_str().unwrap(), "ls"]).unwrap();
        assert_eq!(listing.trim(), "kv");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn requote_preserves_word_grouping() {
        assert_eq!(requote("plain"), "plain");
        assert_eq!(requote("two words"), "'two words'");
        assert_eq!(requote("it's quoted"), "\"it's quoted\"");
    }
}
