//! Response rendering: the typed bus [`Response`] to terminal text, with
//! psql-style aligned tables for query results.

use orpheus_core::Response;
use orpheus_engine::QueryResult;

/// Render a bus response for the terminal: query results as an aligned
/// table, everything else via its canonical one-line summary. The returned
/// text is empty or newline-terminated.
pub fn render_response(response: &Response) -> String {
    match response {
        // DML produces no result set; report the affected-row count.
        Response::Rows(result) if result.schema.columns.is_empty() && result.rows.is_empty() => {
            match result.affected {
                0 => String::new(),
                n => format!("{n} row(s) affected\n"),
            }
        }
        Response::Rows(result) => format_result(result),
        other => {
            let summary = other.summary();
            if summary.is_empty() {
                String::new()
            } else {
                format!("{summary}\n")
            }
        }
    }
}

/// Format a query result as an aligned text table with a header rule and a
/// row-count footer, in the style of `psql`:
///
/// ```text
///  protein1 | score
/// ----------+-------
///  a        | 10
///  b        | 95
/// (2 rows)
/// ```
pub fn format_result(result: &QueryResult) -> String {
    let headers: Vec<String> = result
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    if headers.is_empty() {
        return match result.rows.len() {
            0 => String::new(),
            n => format!("({n} row{})\n", plural(n)),
        };
    }

    let cells: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_string()).collect())
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }

    let mut out = String::new();
    render_row(&mut out, &headers, &widths);
    // Header rule: dashes joined with '+'.
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(w + 2)).collect();
    out.push_str(&rule.join("+"));
    out.push('\n');
    for row in &cells {
        render_row(&mut out, row, &widths);
    }
    let n = result.rows.len();
    out.push_str(&format!("({n} row{})\n", plural(n)));
    out
}

fn render_row(out: &mut String, cells: &[String], widths: &[usize]) {
    let mut parts = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(cell.len());
        parts.push(format!(" {cell:<w$} "));
    }
    // Trailing spaces on the last column are trimmed, like psql.
    let line = parts.join("|");
    out.push_str(line.trim_end());
    out.push('\n');
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::Database;

    fn result_of(sql_setup: &[&str], query: &str) -> QueryResult {
        let mut db = Database::new();
        for s in sql_setup {
            db.execute(s).unwrap();
        }
        db.query(query).unwrap()
    }

    #[test]
    fn renders_aligned_table() {
        let r = result_of(
            &[
                "CREATE TABLE t (name TEXT, score INT)",
                "INSERT INTO t VALUES ('a', 10), ('longer', 9500)",
            ],
            "SELECT name, score FROM t ORDER BY score",
        );
        let text = format_result(&r);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], " name   | score");
        assert_eq!(lines[1], "--------+-------");
        assert_eq!(lines[2], " a      | 10");
        assert_eq!(lines[3], " longer | 9500");
        assert_eq!(lines[4], "(2 rows)");
    }

    #[test]
    fn renders_single_row_with_singular_footer() {
        let r = result_of(
            &["CREATE TABLE t (x INT)", "INSERT INTO t VALUES (1)"],
            "SELECT count(*) FROM t",
        );
        let text = format_result(&r);
        assert!(text.ends_with("(1 row)\n"), "{text}");
    }

    #[test]
    fn renders_empty_result() {
        let r = result_of(&["CREATE TABLE t (x INT)"], "SELECT x FROM t");
        let text = format_result(&r);
        assert!(text.contains("(0 rows)"), "{text}");
        assert!(text.starts_with(" x\n"), "{text}");
    }

    #[test]
    fn renders_responses() {
        use orpheus_core::Vid;
        let r = result_of(
            &["CREATE TABLE t (x INT)", "INSERT INTO t VALUES (7)"],
            "SELECT x FROM t",
        );
        let text = render_response(&Response::Rows(r));
        assert!(text.contains('7') && text.contains("(1 row)"), "{text}");
        assert_eq!(
            render_response(&Response::Committed {
                target: "w".into(),
                version: Vid(2)
            }),
            "committed w as v2\n"
        );
        assert_eq!(render_response(&Response::CvdList(vec![])), "");
    }

    #[test]
    fn renders_dml_affected_counts() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INT)").unwrap();
        let r = db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        assert_eq!(render_response(&Response::Rows(r)), "2 row(s) affected\n");
    }

    #[test]
    fn renders_nulls_and_arrays() {
        let r = result_of(
            &[
                "CREATE TABLE t (v INT, a INT[])",
                "INSERT INTO t VALUES (NULL, ARRAY[1,2])",
            ],
            "SELECT v, a FROM t",
        );
        let text = format_result(&r);
        assert!(text.contains("NULL"), "{text}");
        assert!(text.contains("{1,2}"), "{text}");
    }
}
