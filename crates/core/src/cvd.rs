//! Collaborative versioned datasets (CVDs): per-version metadata, the
//! attribute registry for schema evolution (Section 3.3, Figures 4/5), and
//! bridges to the partition crate's graph structures.

use std::collections::HashMap;
use std::sync::Arc;

use orpheus_engine::{Column, DataType, Database, Schema, Value};
use orpheus_partition::{BipartiteGraph, VersionGraph, VersionTree};

use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::ModelKind;
use crate::partition_store::PartitionState;

/// Attribute registry entry (Figure 5b/c): every distinct (name, type)
/// pair gets a unique id; changing an attribute's type creates a new entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrEntry {
    pub id: u32,
    pub name: String,
    pub dtype: DataType,
}

/// The attribute table of the single-pool schema-evolution scheme.
///
/// `intern` is called for every column of every commit (commits re-intern
/// the whole schema), so lookups go through a `(name, type)` → id map kept
/// alongside `entries` instead of a linear scan — wide evolving schemas
/// would otherwise pay O(n²) interning.
#[derive(Debug, Clone, Default)]
pub struct AttributeRegistry {
    entries: Vec<AttrEntry>,
    /// (lower-cased name, type) → id, kept in sync with `entries`.
    by_key: HashMap<(String, DataType), u32>,
}

impl AttributeRegistry {
    /// Get or create the id for an attribute (name, type).
    pub fn intern(&mut self, name: &str, dtype: DataType) -> u32 {
        let key = (name.to_ascii_lowercase(), dtype);
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.entries.len() as u32 + 1;
        self.entries.push(AttrEntry {
            id,
            name: name.to_string(),
            dtype,
        });
        self.by_key.insert(key, id);
        id
    }

    pub fn get(&self, id: u32) -> Option<&AttrEntry> {
        // Ids are dense by construction: intern assigns len + 1 and
        // from_entries requires a previous entries() output. A mismatch
        // means a corrupt registry and reports absence.
        let i = (id as usize).checked_sub(1)?;
        self.entries.get(i).filter(|e| e.id == id)
    }

    pub fn entries(&self) -> &[AttrEntry] {
        &self.entries
    }

    /// Rebuild a registry from saved entries (snapshot restore). Entries
    /// must be the output of a previous [`AttributeRegistry::entries`] call;
    /// ids are preserved verbatim.
    pub fn from_entries(entries: Vec<AttrEntry>) -> AttributeRegistry {
        let by_key = entries
            .iter()
            .map(|e| ((e.name.to_ascii_lowercase(), e.dtype), e.id))
            .collect();
        AttributeRegistry { entries, by_key }
    }

    /// Intern every column of a schema, returning the attribute-id list
    /// recorded in version metadata.
    pub fn intern_schema(&mut self, schema: &Schema) -> Vec<u32> {
        schema
            .columns
            .iter()
            .map(|c| self.intern(&c.name, c.dtype))
            .collect()
    }
}

/// Per-version metadata (the metadata table of Figure 4a).
/// `PartialEq` so recovery tests and the crash-recovery verifier can
/// compare version graphs field-for-field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionMeta {
    pub vid: Vid,
    pub parents: Vec<Vid>,
    /// Shared-record count with each parent (aligned with `parents`).
    pub parent_weights: Vec<u64>,
    /// Logical checkout timestamp (when the source table was materialized).
    pub checkout_t: Option<u64>,
    /// Logical commit timestamp.
    pub commit_t: u64,
    pub message: String,
    /// Attribute ids present in this version (schema evolution).
    pub attributes: Vec<u32>,
    pub num_records: u64,
    /// For the delta model: the parent this version's delta is based on.
    pub base: Option<Vid>,
}

/// A collaborative versioned dataset.
#[derive(Debug, Clone)]
pub struct Cvd {
    pub name: String,
    /// Current logical schema (data attributes only — no `rid`).
    pub schema: Schema,
    pub model: ModelKind,
    pub versions: Vec<VersionMeta>,
    /// Sorted rid list per version (the version manager's cache of "which
    /// version contains which records"). Each rlist is immutable once its
    /// version commits and is therefore stored behind an [`Arc`], so
    /// cloning a `Cvd` — the backbone of MVCC snapshot publication — costs
    /// one refcount bump per version instead of copying every rlist.
    /// `PartialEq`/persistence see through the `Arc` transparently.
    pub version_rids: Vec<Arc<Vec<i64>>>,
    pub next_rid: u64,
    pub attrs: AttributeRegistry,
    /// Partitioned physical layout, if `optimize` has run.
    pub partition: Option<PartitionState>,
}

impl Cvd {
    pub fn new(name: &str, schema: Schema, model: ModelKind) -> Cvd {
        let mut attrs = AttributeRegistry::default();
        attrs.intern_schema(&schema);
        Cvd {
            name: name.to_ascii_lowercase(),
            schema,
            model,
            versions: Vec::new(),
            version_rids: Vec::new(),
            next_rid: 1,
            attrs,
            partition: None,
        }
    }

    // -- table naming -------------------------------------------------------

    pub fn data_table(&self) -> String {
        format!("{}__data", self.name)
    }

    pub fn combined_table(&self) -> String {
        format!("{}__combined", self.name)
    }

    pub fn vlist_table(&self) -> String {
        format!("{}__vlist", self.name)
    }

    pub fn rlist_table(&self) -> String {
        format!("{}__rlist", self.name)
    }

    pub fn version_table(&self, vid: Vid) -> String {
        format!("{}__v{}", self.name, vid.0)
    }

    pub fn delta_table(&self, vid: Vid) -> String {
        format!("{}__delta{}", self.name, vid.0)
    }

    pub fn precedent_table(&self) -> String {
        format!("{}__prec", self.name)
    }

    pub fn meta_table(&self) -> String {
        format!("{}__meta", self.name)
    }

    pub fn attr_table(&self) -> String {
        format!("{}__attrs", self.name)
    }

    pub fn partition_data_table(&self, k: usize) -> String {
        format!("{}__p{}_data", self.name, k)
    }

    pub fn partition_rlist_table(&self, k: usize) -> String {
        format!("{}__p{}_rlist", self.name, k)
    }

    // -- versions ------------------------------------------------------------

    pub fn num_versions(&self) -> usize {
        self.versions.len()
    }

    pub fn has_version(&self, vid: Vid) -> bool {
        vid.0 >= 1 && (vid.0 as usize) <= self.versions.len()
    }

    pub fn check_version(&self, vid: Vid) -> Result<()> {
        if self.has_version(vid) {
            Ok(())
        } else {
            Err(CoreError::VersionNotFound {
                cvd: self.name.clone(),
                version: vid,
            })
        }
    }

    /// The most recently committed version.
    pub fn latest(&self) -> Option<Vid> {
        if self.versions.is_empty() {
            None
        } else {
            Some(Vid(self.versions.len() as u64))
        }
    }

    pub fn meta(&self, vid: Vid) -> Result<&VersionMeta> {
        self.check_version(vid)?;
        Ok(&self.versions[vid.index()])
    }

    pub fn rids_of(&self, vid: Vid) -> Result<&[i64]> {
        self.check_version(vid)?;
        Ok(&self.version_rids[vid.index()])
    }

    /// Allocate `n` fresh record ids.
    pub fn alloc_rids(&mut self, n: usize) -> Vec<i64> {
        let start = self.next_rid;
        self.next_rid += n as u64;
        (start..start + n as u64).map(|r| r as i64).collect()
    }

    // -- graph bridges -------------------------------------------------------

    /// The version graph (DAG) with record-overlap edge weights.
    pub fn version_graph(&self) -> VersionGraph {
        let mut g = VersionGraph::new();
        for m in &self.versions {
            let parents: Vec<(usize, u64)> = m
                .parents
                .iter()
                .zip(&m.parent_weights)
                .map(|(p, &w)| (p.index(), w))
                .collect();
            g.push_version(parents, m.num_records);
        }
        g
    }

    /// The version tree LyreSplit operates on (max-weight parents kept).
    pub fn version_tree(&self) -> VersionTree {
        self.version_graph().to_tree()
    }

    /// The version-record bipartite graph (for exact cost computations).
    pub fn bipartite(&self) -> BipartiteGraph {
        BipartiteGraph::new(
            self.version_rids
                .iter()
                .map(|rs| rs.iter().map(|&r| r as usize).collect())
                .collect(),
        )
    }

    /// Ancestors of a version (transitive parents).
    pub fn ancestors(&self, vid: Vid) -> Result<Vec<Vid>> {
        self.check_version(vid)?;
        Ok(self
            .version_graph()
            .ancestors(vid.index())
            .into_iter()
            .map(Vid::from_index)
            .collect())
    }

    /// Descendants of a version (transitive children).
    pub fn descendants(&self, vid: Vid) -> Result<Vec<Vid>> {
        self.check_version(vid)?;
        Ok(self
            .version_graph()
            .descendants(vid.index())
            .into_iter()
            .map(Vid::from_index)
            .collect())
    }

    /// The last commit (by logical time) — "the last modification to the
    /// CVD" shortcut.
    pub fn last_modified(&self) -> Option<(Vid, u64)> {
        self.versions
            .iter()
            .max_by_key(|m| m.commit_t)
            .map(|m| (m.vid, m.commit_t))
    }

    // -- metadata tables in the engine ---------------------------------------

    /// Create the engine-side metadata and attribute tables so that users
    /// can query provenance with plain SQL (Figure 4a / Figure 5).
    pub fn create_meta_tables(&self, db: &mut Database) -> Result<()> {
        db.execute(&format!(
            "CREATE TABLE {} (vid INT PRIMARY KEY, parents INT[], checkout_t INT, \
             commit_t INT, msg TEXT, attributes INT[], num_records INT)",
            self.meta_table()
        ))?;
        db.execute(&format!(
            "CREATE TABLE {} (attr_id INT PRIMARY KEY, attr_name TEXT, data_type TEXT)",
            self.attr_table()
        ))?;
        Ok(())
    }

    /// Append one version's metadata row (called on commit) and refresh the
    /// attribute table.
    pub fn sync_meta_row(&self, db: &mut Database, vid: Vid) -> Result<()> {
        let m = self.meta(vid)?;
        let parents: Vec<i64> = m.parents.iter().map(|p| p.0 as i64).collect();
        let attrs: Vec<i64> = m.attributes.iter().map(|&a| a as i64).collect();
        let t = db.table_mut(&self.meta_table())?;
        t.insert(vec![
            Value::Int(m.vid.0 as i64),
            Value::IntArray(parents),
            m.checkout_t
                .map(|t| Value::Int(t as i64))
                .unwrap_or(Value::Null),
            Value::Int(m.commit_t as i64),
            Value::Text(m.message.clone()),
            Value::IntArray(attrs),
            Value::Int(m.num_records as i64),
        ])?;
        // Refresh attribute rows (idempotent upsert by id).
        let at = db.table_mut(&self.attr_table())?;
        for e in self.attrs.entries() {
            let key = vec![Value::Int(e.id as i64)];
            if at
                .index_lookup(&[0], &key)
                .map(|s| s.is_empty())
                .unwrap_or(true)
            {
                at.insert(vec![
                    Value::Int(e.id as i64),
                    Value::Text(e.name.clone()),
                    Value::Text(e.dtype.sql_name().to_string()),
                ])?;
            }
        }
        Ok(())
    }

    /// Physical schema of the data table: hidden `rid` column followed by
    /// the data attributes; primary key on `rid`.
    pub fn physical_data_schema(&self) -> Schema {
        let mut cols = vec![Column::new("rid", DataType::Int).not_null()];
        cols.extend(self.schema.columns.iter().cloned());
        let mut s = Schema::new(cols);
        s.primary_key = vec![0];
        s
    }

    /// Schema of a staged (checked-out) table: same as the physical data
    /// schema but with no constraints — no primary key (commit re-validates
    /// the logical PK) and a nullable `rid` (NULL marks inserted rows).
    pub fn staged_schema(&self) -> Schema {
        let mut s = self.physical_data_schema();
        s.primary_key = Vec::new();
        for c in &mut s.columns {
            c.nullable = true;
        }
        s
    }

    /// Number of records a prospective child (`rids`, sorted) shares with
    /// `parent` — a sorted-merge intersection over the two already-sorted
    /// rid lists, with no hashing and no allocation.
    pub fn shared_with(&self, rids: &[i64], parent: Vid) -> u64 {
        sorted_intersection_count(rids, &self.version_rids[parent.index()]) as u64
    }

    /// Shared-record counts against every parent, aligned with `parents`.
    /// Commit computes this once and derives both the base-parent choice
    /// and the stored `parent_weights` from it, instead of re-counting per
    /// call site.
    pub fn parent_overlaps(&self, rids: &[i64], parents: &[Vid]) -> Vec<u64> {
        parents.iter().map(|p| self.shared_with(rids, *p)).collect()
    }
}

// -- sorted-rlist set algebra -------------------------------------------------
//
// Every rlist in the system is kept sorted (commit sorts before storing,
// the generator emits sorted lists), so version-membership questions are
// merges over sorted slices rather than hash-set rebuilds.

/// Count of elements common to two sorted slices.
pub fn sorted_intersection_count(a: &[i64], b: &[i64]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "lhs rlist not sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "rhs rlist not sorted");
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Elements of sorted `a` absent from sorted `b`, in order.
pub fn sorted_difference(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut out = Vec::new();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protein_schema() -> Schema {
        Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("neighborhood", DataType::Int),
        ])
        .with_primary_key(&["protein1", "protein2"])
        .unwrap()
    }

    fn cvd_with_versions() -> Cvd {
        let mut cvd = Cvd::new("Protein", protein_schema(), ModelKind::SplitByRlist);
        let attrs = cvd.attrs.intern_schema(&protein_schema());
        // v1: records 1..=3; v2 (parent v1): records 2..=4; v3 merge of 1,2.
        cvd.versions.push(VersionMeta {
            vid: Vid(1),
            parents: vec![],
            parent_weights: vec![],
            checkout_t: None,
            commit_t: 1,
            message: "init".into(),
            attributes: attrs.clone(),
            num_records: 3,
            base: None,
        });
        cvd.version_rids.push(Arc::new(vec![1, 2, 3]));
        cvd.versions.push(VersionMeta {
            vid: Vid(2),
            parents: vec![Vid(1)],
            parent_weights: vec![2],
            checkout_t: Some(1),
            commit_t: 2,
            message: "edit".into(),
            attributes: attrs.clone(),
            num_records: 3,
            base: Some(Vid(1)),
        });
        cvd.version_rids.push(Arc::new(vec![2, 3, 4]));
        cvd.versions.push(VersionMeta {
            vid: Vid(3),
            parents: vec![Vid(1), Vid(2)],
            parent_weights: vec![3, 3],
            checkout_t: Some(2),
            commit_t: 3,
            message: "merge".into(),
            attributes: attrs,
            num_records: 4,
            base: Some(Vid(2)),
        });
        cvd.version_rids.push(Arc::new(vec![1, 2, 3, 4]));
        cvd.next_rid = 5;
        cvd
    }

    #[test]
    fn attribute_registry_interns_and_versions_types() {
        let mut reg = AttributeRegistry::default();
        let a = reg.intern("cooccurrence", DataType::Int);
        let same = reg.intern("cooccurrence", DataType::Int);
        assert_eq!(a, same);
        // Type change creates a *new* attribute id (Figure 5).
        let widened = reg.intern("cooccurrence", DataType::Double);
        assert_ne!(a, widened);
        assert_eq!(reg.entries().len(), 2);
        assert_eq!(reg.get(widened).unwrap().dtype, DataType::Double);
    }

    #[test]
    fn version_lookup_and_lineage() {
        let cvd = cvd_with_versions();
        assert_eq!(cvd.num_versions(), 3);
        assert_eq!(cvd.latest(), Some(Vid(3)));
        assert!(cvd.check_version(Vid(4)).is_err());
        assert_eq!(cvd.ancestors(Vid(3)).unwrap(), vec![Vid(1), Vid(2)]);
        assert_eq!(cvd.descendants(Vid(1)).unwrap(), vec![Vid(2), Vid(3)]);
        assert_eq!(cvd.last_modified().unwrap().0, Vid(3));
    }

    #[test]
    fn graph_bridges_are_consistent() {
        let cvd = cvd_with_versions();
        let g = cvd.version_graph();
        assert_eq!(g.num_versions(), 3);
        assert!(!g.is_tree());
        let t = cvd.version_tree();
        // Merge keeps the max-weight parent; tie (3, 3) breaks to smaller id.
        assert!(t.parent[2].is_some());
        let bip = cvd.bipartite();
        assert_eq!(bip.num_records(), 4);
        assert_eq!(bip.common_records(0, 1), 2);
    }

    #[test]
    fn rid_allocation_is_monotone() {
        let mut cvd = cvd_with_versions();
        let a = cvd.alloc_rids(3);
        let b = cvd.alloc_rids(2);
        assert_eq!(a, vec![5, 6, 7]);
        assert_eq!(b, vec![8, 9]);
    }

    #[test]
    fn physical_schemas() {
        let cvd = cvd_with_versions();
        let p = cvd.physical_data_schema();
        assert_eq!(p.columns[0].name, "rid");
        assert_eq!(p.primary_key, vec![0]);
        assert_eq!(p.arity(), 4);
        let s = cvd.staged_schema();
        assert!(s.primary_key.is_empty());
    }

    #[test]
    fn meta_tables_round_trip() {
        let mut db = Database::new();
        let cvd = cvd_with_versions();
        cvd.create_meta_tables(&mut db).unwrap();
        for v in 1..=3u64 {
            cvd.sync_meta_row(&mut db, Vid(v)).unwrap();
        }
        let r = db
            .query(&format!(
                "SELECT count(*) FROM {} WHERE commit_t >= 2",
                cvd.meta_table()
            ))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        // The attribute table holds the three interned attributes.
        let r = db
            .query(&format!("SELECT count(*) FROM {}", cvd.attr_table()))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn shared_with_counts_overlap() {
        let cvd = cvd_with_versions();
        // Pinned counts from the original hash-based implementation: the
        // sorted-merge rewrite must reproduce them exactly.
        assert_eq!(cvd.shared_with(&[2, 3, 4], Vid(1)), 2);
        assert_eq!(cvd.shared_with(&[2, 3, 4], Vid(2)), 3);
        assert_eq!(cvd.shared_with(&[], Vid(1)), 0);
        assert_eq!(cvd.shared_with(&[5, 6], Vid(3)), 0);
        // And agree with a naive set intersection on every version.
        for v in 1..=3u64 {
            let parent: std::collections::HashSet<i64> =
                cvd.rids_of(Vid(v)).unwrap().iter().copied().collect();
            for rids in [&[2, 3, 4][..], &[1][..], &[1, 2, 3, 4][..], &[][..]] {
                let naive = rids.iter().filter(|r| parent.contains(r)).count() as u64;
                assert_eq!(cvd.shared_with(rids, Vid(v)), naive, "v{v} vs {rids:?}");
            }
        }
        // parent_overlaps is the same computation batched across parents.
        assert_eq!(
            cvd.parent_overlaps(&[2, 3, 4], &[Vid(1), Vid(2)]),
            vec![2, 3]
        );
    }

    #[test]
    fn sorted_set_algebra() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 4, 5]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_difference(&[1, 3, 5], &[2, 3, 4]), vec![1, 5]);
        assert_eq!(sorted_difference(&[1, 2], &[]), vec![1, 2]);
        assert!(sorted_difference(&[1], &[1]).is_empty());
    }

    #[test]
    fn attribute_registry_map_survives_restore() {
        let mut reg = AttributeRegistry::default();
        let a = reg.intern("a", DataType::Int);
        let b = reg.intern("B", DataType::Text);
        // Case-insensitive like the rest of the catalog.
        assert_eq!(reg.intern("A", DataType::Int), a);
        let mut restored = AttributeRegistry::from_entries(reg.entries().to_vec());
        assert_eq!(restored.intern("b", DataType::Text), b);
        assert_eq!(restored.get(a).unwrap().name, "a");
        assert_eq!(restored.get(0), None);
        assert_eq!(restored.get(99), None);
        // New interning after restore continues the dense id sequence.
        let c = restored.intern("c", DataType::Double);
        assert_eq!(c, 3);
        assert_eq!(restored.get(c).unwrap().dtype, DataType::Double);
    }
}
