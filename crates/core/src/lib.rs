//! # orpheus-core
//!
//! The OrpheusDB middleware: bolt-on dataset versioning over an ordinary
//! relational database (the `orpheus-engine` crate, standing in for
//! PostgreSQL). The engine is completely unaware of versions; this crate
//! maps git-style version control (checkout / commit / diff) and versioned
//! SQL onto plain tables, following Sections 2-3 of the paper.
//!
//! Core concepts:
//! * **CVD** — a collaborative versioned dataset: one relation plus all of
//!   its versions, related by a version graph (a DAG with merges).
//! * **Data models** ([`model`]) — five representations of a CVD inside the
//!   engine: a-table-per-version, combined-table, split-by-vlist,
//!   split-by-rlist (the paper's winner and our default), and delta-based.
//! * **Checkout/commit** — materialize version(s) into a private staged
//!   table (or CSV file), edit with arbitrary SQL, commit back as a new
//!   version. Records are immutable; modified rows receive fresh `rid`s
//!   under the *no cross-version diff* rule (Section 2.2).
//! * **Versioned queries** ([`query`]) — `SELECT ... FROM VERSION n OF CVD
//!   x` and whole-CVD queries grouped by `vid`, translated to plain SQL.
//! * **Partition optimizer** ([`partition_store`]) — LyreSplit-driven
//!   partitioning of the split-by-rlist representation, with online
//!   maintenance and intelligent migration (Section 4).
//! * **Persistence** ([`persist`]) — whole-instance snapshots (engine data
//!   plus all middleware state) so sessions span process restarts.
//! * **The command bus** ([`request`], [`response`]) — every paper command
//!   as a typed [`Request`] with builders, executed by [`OrpheusDB`]
//!   directly or by a [`Session`] over a shared instance via the
//!   [`Executor`] trait; [`commands`] parses the git-style command lines
//!   of Section 2.2 into the same requests.
//! * **Batching** ([`batch`]) — [`Executor::batch`] coalesces a request
//!   vector along a [`BatchPlan`]: shared version-row scans across
//!   checkouts of the same version, and (on the concurrent executor) one
//!   shard-lock acquisition per sub-batch instead of one per request.
//! * **Async execution** ([`async_exec`]) — an [`AsyncExecutor`] runs the
//!   same [`BatchPlan`] steps on a coordinator thread plus a per-shard
//!   worker pool; clients submit through an [`AsyncHandle`] and wait on
//!   [`Ticket`]s instead of blocking on shard locks.
//! * **Durability** ([`wal`], [`recovery`]) — an append-only log of
//!   mutating operations with length-prefixed, checksummed records
//!   (sharing the [`codec`] vocabulary with the wire protocol), fsync'd
//!   before each apply is acknowledged; [`recovery::open`] replays the
//!   log over the latest snapshot, truncating any torn tail, and
//!   periodic checkpoints ([`recovery::checkpoint`]) rotate the log.

pub mod access;
pub mod async_exec;
pub mod batch;
pub mod codec;
pub mod commands;
pub mod compress;
pub mod concurrent;
pub mod csv;
pub mod cvd;
pub mod db;
pub mod error;
pub mod ids;
pub mod model;
pub mod partition_store;
pub mod persist;
pub mod query;
pub mod recovery;
pub mod request;
pub mod response;
pub mod staging;
pub mod wal;

pub use async_exec::{AsyncExecutor, AsyncHandle, Ticket, TicketFulfiller};
pub use batch::{BatchPlan, BatchRouter, ShardKey, Step};
pub use concurrent::{ConcurrentExecutor, Session, SharedOrpheusDB};
pub use cvd::Cvd;
pub use db::{OrpheusConfig, OrpheusDB, VersionDiff};
pub use error::{CoreError, Result};
pub use ids::{Rid, Vid};
pub use model::ModelKind;
pub use request::{
    Checkout, CheckoutCsv, CommandKind, Commit, CommitCsv, CreateUser, Diff, Discard, DropCvd,
    Executor, Init, InitFromCsv, Log, Login, Optimize, Request, Run, Target,
};
pub use response::{LogEntry, Response};
pub use wal::{WalOp, WalRecord, WalSink};
