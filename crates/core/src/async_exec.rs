//! The async executor: submit requests without blocking on shard locks.
//!
//! The paper's deployment (Section 6 evaluates multi-client throughput)
//! has many users hitting one instance at once. The synchronous executors
//! make each *caller* pay for lock waits: a `Session` blocks its thread on
//! the target CVD's lock for every request. This module turns the
//! dispatch data the batching layer already produces — a [`BatchPlan`]
//! of per-shard [`Step::Shard`] sub-batches separated by
//! [`Step::Sequential`] barriers — into a running machine:
//!
//! * a **coordinator thread** drains the submission channel into chunks,
//!   plans each chunk under one catalog read
//!   ([`SharedOrpheusDB::plan_batch`](crate::SharedOrpheusDB)), hands
//!   shard steps to the worker pool, and executes sequential barriers
//!   itself (waiting for all in-flight shard work first — barriers order
//!   strictly against every step around them);
//! * a **worker pool** with one logical FIFO queue per shard: steps
//!   between two barriers are mutually independent (they target disjoint
//!   shards), so different workers execute them in parallel, while two
//!   *writing* sub-batches of the *same* shard never run concurrently —
//!   per-shard submission order is preserved by construction. Workers
//!   execute writing sub-batches through
//!   [`ConcurrentExecutor::run_shard_items`](crate::ConcurrentExecutor) —
//!   one shard-lock acquisition, reservation and staged-index bookkeeping
//!   in single catalog writes, shared version-row scans, identity swapped
//!   per request owner. **Read-only** sub-batches (`log`, `diff`,
//!   single-shard SELECTs — [`Step::Shard`]'s `read_only` flag) skip the
//!   per-shard FIFO entirely: they are served from the shard's MVCC
//!   snapshot via
//!   [`ConcurrentExecutor::run_snapshot_items`](crate::ConcurrentExecutor),
//!   so a worker answers them even while another worker holds that
//!   shard's write lock — checkouts never wait on a writer, and neither
//!   do snapshot reads;
//! * clients hold an [`AsyncHandle`] and get a [`Ticket`] per submission —
//!   a future-like slot fulfilled by whichever thread finishes the
//!   request. `submit` never blocks on shard locks; [`Ticket::wait`]
//!   blocks only that client.
//!
//! Everything is built from the vendored `parking_lot` shim's
//! `Mutex`/`Condvar` plus `std::sync::mpsc` — no async runtime exists in
//! this offline workspace, and none is needed: the concurrency is
//! thread-per-worker with condition-variable parking.
//!
//! # Ordering and failure semantics
//!
//! * **Per client** — one handle's *writing* submissions execute in
//!   submission order relative to each other whenever they target the
//!   same shard or are separated by a barrier; responses always answer
//!   their own submission ([`Ticket`]s don't shuffle). A pure read may
//!   run concurrently with a write to its shard submitted *after* it in
//!   the same chunk (it sees the shard before or after that write, never
//!   torn); a read submitted after a write to its shard still observes
//!   that write.
//! * **Across clients** — requests to *different* shards interleave
//!   freely (that is the point); catalog requests are global barriers.
//! * **Failures** — per request, exactly as [`Executor::batch`]: a failed
//!   request never aborts the requests after it.
//! * **Panics** — a panic inside a worker poisons only that shard's
//!   in-flight sub-batch: those tickets resolve to
//!   [`CoreError::WorkerPanicked`], checkout reservations are released,
//!   and both other shards and later submissions to the same shard are
//!   unaffected.
//!
//! # Example
//!
//! ```
//! use orpheus_core::{AsyncExecutor, Checkout, Commit, OrpheusDB, SharedOrpheusDB};
//! use orpheus_engine::{Column, DataType, Schema, Value};
//!
//! let mut odb = OrpheusDB::new();
//! let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
//! odb.init_cvd("data", schema, vec![vec![Value::Int(1)]], None).unwrap();
//!
//! let pool = AsyncExecutor::new(SharedOrpheusDB::new(odb));
//! let alice = pool.handle("alice").unwrap();
//!
//! // Submit without blocking; wait on the tickets when the results are
//! // actually needed. Same-shard submissions execute in order, so the
//! // commit sees the checkout.
//! let t1 = alice.submit(Checkout::of("data").version(1u64).into_table("w"));
//! let t2 = alice.submit(Commit::table("w").message("async commit"));
//! t1.wait().unwrap();
//! let response = t2.wait().unwrap();
//! assert_eq!(response.summary(), "committed w as v2");
//! ```

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::batch::{BatchPlan, ShardKey, Step};
use crate::concurrent::{ConcurrentExecutor, SharedOrpheusDB, SubItem};
use crate::error::{CoreError, Result};
use crate::request::{Executor, Request};
use crate::response::Response;

/// Upper bound on requests planned as one chunk. Large enough that a
/// burst coalesces into few plans (few catalog reads, big sub-batches),
/// small enough that one chunk's barrier never starves the queue.
const CHUNK_MAX: usize = 256;

// ---------------------------------------------------------------------------
// Tickets.
// ---------------------------------------------------------------------------

/// The slot a [`Ticket`] waits on: fulfilled exactly once by whichever
/// thread finishes the request (first write wins; later writes are
/// dropped, which makes poisoning idempotent).
#[derive(Debug)]
struct TicketCell {
    state: Mutex<Option<Result<Response>>>,
    ready: Condvar,
}

impl TicketCell {
    fn new() -> Arc<TicketCell> {
        Arc::new(TicketCell {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, result: Result<Response>) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(result);
        }
        self.ready.notify_all();
    }
}

/// A pending response: returned by [`AsyncHandle::submit`], resolved by
/// [`Ticket::wait`]. Dropping a ticket abandons the response (the request
/// still executes).
#[derive(Debug)]
pub struct Ticket(Arc<TicketCell>);

impl Ticket {
    /// Block until the request finished and return its outcome.
    pub fn wait(self) -> Result<Response> {
        let mut state = self.0.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.0.ready.wait(&mut state);
        }
    }

    /// Block for at most `timeout` for the outcome. `None` means the
    /// timeout elapsed first; the ticket is untouched and a later
    /// [`Ticket::wait`]/[`Ticket::wait_for`] can still collect the
    /// result. This is what keeps a hung producer — a remote server that
    /// stopped answering, a stalled worker — from blocking a client
    /// forever: the client bounds its wait and converts `None` into its
    /// own timeout error.
    pub fn wait_for(&self, timeout: std::time::Duration) -> Option<Result<Response>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.0.state.lock();
        loop {
            if let Some(result) = state.take() {
                return Some(result);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            self.0.ready.wait_for(&mut state, deadline - now);
        }
    }

    /// Whether the response is already available ([`Ticket::wait`] would
    /// return without blocking).
    pub fn is_ready(&self) -> bool {
        self.0.state.lock().is_some()
    }

    /// An unfulfilled ticket plus its producing end, for code that
    /// resolves tickets from outside this module — the network client
    /// fulfills them from its response-reader thread. Fulfillment is
    /// first-write-wins, exactly as for pool-issued tickets.
    pub fn pending() -> (Ticket, TicketFulfiller) {
        let cell = TicketCell::new();
        (Ticket(Arc::clone(&cell)), TicketFulfiller(cell))
    }

    /// A ticket already holding `result` — for producers that resolve a
    /// request synchronously but hand back the uniform ticket interface.
    pub fn ready(result: Result<Response>) -> Ticket {
        let cell = TicketCell::new();
        cell.fulfill(result);
        Ticket(cell)
    }
}

/// The producing end of a [`Ticket::pending`] pair: fulfills the ticket
/// exactly once (later writes are dropped — first write wins). Dropping a
/// fulfiller without fulfilling leaves waiters blocked, so producers must
/// resolve every outstanding fulfiller on their shutdown paths (the
/// network client poisons all pending tickets when its connection dies).
#[derive(Debug)]
pub struct TicketFulfiller(Arc<TicketCell>);

impl TicketFulfiller {
    /// Resolve the paired ticket.
    pub fn fulfill(self, result: Result<Response>) {
        self.0.fulfill(result);
    }
}

// ---------------------------------------------------------------------------
// The worker pool: one logical FIFO queue per shard.
// ---------------------------------------------------------------------------

/// One request inside a queued shard job.
struct WorkItem {
    user: String,
    request: Option<Request>,
    ticket: Arc<TicketCell>,
}

/// One `Step::Shard` sub-batch, queued for its shard.
struct Job {
    plan: Arc<BatchPlan>,
    key: ShardKey,
    /// Served from the shard's MVCC snapshot instead of under its lock —
    /// exempt from the per-shard FIFO (see [`PoolState::reads`]).
    read_only: bool,
    items: Vec<WorkItem>,
}

#[derive(Default)]
struct PoolState {
    /// Pending *writing* jobs per shard, FIFO. Writing jobs of one shard
    /// never run concurrently (see `active`), which preserves per-shard
    /// submission order.
    queues: HashMap<ShardKey, VecDeque<Job>>,
    /// Read-only jobs, one shared queue: snapshot-served sub-batches need
    /// no per-shard exclusivity, so any worker picks them up immediately —
    /// even while another worker holds that shard's write lock.
    reads: VecDeque<Job>,
    /// Shards with pending writing jobs and no worker on them, in arrival
    /// order.
    ready: VecDeque<ShardKey>,
    /// Shards a worker is currently executing a writing job for.
    active: Vec<ShardKey>,
    /// Jobs enqueued but not yet finished (queued + executing) — the
    /// coordinator's barrier condition is `pending == 0`.
    pending: usize,
    shutdown: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Signals workers: a shard became ready, or shutdown.
    work: Condvar,
    /// Signals the coordinator: `pending` dropped to zero.
    idle: Condvar,
}

impl Pool {
    fn new() -> Arc<Pool> {
        Arc::new(Pool {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        })
    }

    fn enqueue(&self, job: Job) {
        let mut state = self.state.lock();
        state.pending += 1;
        if job.read_only {
            state.reads.push_back(job);
            self.work.notify_one();
            return;
        }
        let key = job.key.clone();
        state.queues.entry(key.clone()).or_default().push_back(job);
        if !state.active.contains(&key) && !state.ready.contains(&key) {
            state.ready.push_back(key);
            self.work.notify_one();
        }
    }

    /// Block until every enqueued job finished — the barrier before a
    /// sequential step and between chunks.
    fn wait_idle(&self) {
        let mut state = self.state.lock();
        while state.pending > 0 {
            self.idle.wait(&mut state);
        }
    }

    fn shutdown(&self) {
        let mut state = self.state.lock();
        state.shutdown = true;
        self.work.notify_all();
    }

    /// Worker loop: claim a read-only job (any shard, no exclusivity) or
    /// a ready shard's front writing job; after a writing job, hand the
    /// shard back (re-readying it if more jobs queued up meanwhile).
    /// Read-only jobs are preferred — they block nothing and their
    /// clients are typically waiting synchronously on checkout-adjacent
    /// SELECTs.
    fn worker_loop(&self, exec: &ConcurrentExecutor) {
        loop {
            let (key, job) = {
                let mut state = self.state.lock();
                loop {
                    if let Some(job) = state.reads.pop_front() {
                        break (None, job);
                    }
                    if let Some(key) = state.ready.pop_front() {
                        let job = state
                            .queues
                            .get_mut(&key)
                            .and_then(VecDeque::pop_front)
                            .expect("ready shards have queued jobs");
                        state.active.push(key.clone());
                        break (Some(key), job);
                    }
                    if state.shutdown {
                        return;
                    }
                    self.work.wait(&mut state);
                }
            };
            run_job(exec, job);
            let mut state = self.state.lock();
            if let Some(key) = key {
                state.active.retain(|k| k != &key);
                if state.queues.get(&key).is_some_and(|q| !q.is_empty()) {
                    state.ready.push_back(key.clone());
                    self.work.notify_one();
                }
            }
            state.pending -= 1;
            if state.pending == 0 {
                self.idle.notify_all();
            }
        }
    }
}

/// Execute one shard sub-batch and fulfill its tickets. Panic containment
/// lives inside [`ConcurrentExecutor::run_shard_items`]; the outer
/// `catch_unwind` is a last line of defense (a panic in the surrounding
/// bookkeeping must not kill the worker thread), after which any item
/// left without an outcome resolves to [`CoreError::WorkerPanicked`].
fn run_job(exec: &ConcurrentExecutor, mut job: Job) {
    let mut items: Vec<SubItem> = job
        .items
        .iter_mut()
        .map(|w| SubItem {
            user: w.user.clone(),
            request: w.request.take(),
            out: None,
        })
        .collect();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        if job.read_only {
            exec.run_snapshot_items(&job.key, &mut items);
        } else {
            exec.run_shard_items(&job.plan, &job.key, &mut items);
        }
    }));
    let label = job.key.label();
    for (work, item) in job.items.iter().zip(items) {
        let outcome = item.out.unwrap_or_else(|| {
            Err(CoreError::WorkerPanicked {
                shard: label.to_string(),
            })
        });
        work.ticket.fulfill(outcome);
    }
}

// ---------------------------------------------------------------------------
// The coordinator.
// ---------------------------------------------------------------------------

/// One submitted request, travelling from a handle to the coordinator.
struct Submission {
    user: String,
    request: Request,
    ticket: Arc<TicketCell>,
}

enum Msg {
    Submit(Submission),
    /// One client's pipelined batch, travelling as a single message so
    /// the coordinator sees it whole (one chunk, maximal sub-batches)
    /// instead of reassembling it from interleaved singles.
    SubmitMany(Vec<Submission>),
    Shutdown,
}

/// Runs a chunk with the coordinator itself defended: a panic anywhere in
/// the chunk bookkeeping (planning, slot accounting — the per-request
/// execution paths carry their own `catch_unwind`) poisons that chunk's
/// tickets instead of stranding their waiters.
fn process_chunk_guarded(
    shared: &SharedOrpheusDB,
    exec: &ConcurrentExecutor,
    pool: &Arc<Pool>,
    chunk: Vec<Submission>,
    inline: bool,
) {
    let tickets: Vec<Arc<TicketCell>> = chunk.iter().map(|s| Arc::clone(&s.ticket)).collect();
    let panicked = catch_unwind(AssertUnwindSafe(|| {
        process_chunk(shared, exec, pool, chunk, inline);
    }))
    .is_err();
    if panicked {
        // Restore the chunk-closing barrier the unwind skipped — jobs the
        // chunk already enqueued must finish before (a) their tickets are
        // adjudicated and (b) the next chunk plans against the catalog.
        // Fulfillment is first-write-wins, so every ticket a job answered
        // keeps its real result; only genuinely unanswered ones poison.
        pool.wait_idle();
        for ticket in tickets {
            ticket.fulfill(Err(CoreError::WorkerPanicked {
                shard: "coordinator".to_string(),
            }));
        }
    }
}

/// Wakes the worker pool out of its parked state when the coordinator
/// returns — by any path, including an unwind the guards above missed —
/// so [`AsyncExecutor`]'s drop can always join the workers.
struct PoolShutdownGuard(Arc<Pool>);

impl Drop for PoolShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Coordinator loop: drain the channel into chunks, plan each chunk, fan
/// shard steps out to the pool (or run them inline when the pool is
/// empty — single-core hosts), run sequential barriers inline.
fn coordinator_loop(
    shared: SharedOrpheusDB,
    pool: Arc<Pool>,
    rx: mpsc::Receiver<Msg>,
    closed: Arc<AtomicBool>,
    depth: Arc<AtomicUsize>,
    inline: bool,
) {
    let _shutdown_on_exit = PoolShutdownGuard(Arc::clone(&pool));
    // The coordinator's own sub-batch engine for inline shard steps and
    // sequential barriers; identity travels per item/submission, so the
    // executor's own user never executes anything.
    let exec = shared.internal_executor("__async_coordinator");
    let mut shutting_down = false;
    while !shutting_down {
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => break, // every sender gone
        };
        let mut chunk: Vec<Submission> = Vec::new();
        match first {
            Msg::Submit(s) => chunk.push(s),
            Msg::SubmitMany(batch) => chunk.extend(batch),
            Msg::Shutdown => shutting_down = true,
        }
        // Coalesce whatever else already queued up: under load this is
        // what turns request-at-a-time clients into big per-shard
        // sub-batches. A SubmitMany batch always lands in one chunk
        // (CHUNK_MAX bounds the drain, not an already-atomic batch).
        while !shutting_down && chunk.len() < CHUNK_MAX {
            match rx.try_recv() {
                Ok(Msg::Submit(s)) => chunk.push(s),
                Ok(Msg::SubmitMany(batch)) => chunk.extend(batch),
                Ok(Msg::Shutdown) => shutting_down = true,
                Err(_) => break,
            }
        }
        if !chunk.is_empty() {
            let len = chunk.len();
            process_chunk_guarded(&shared, &exec, &pool, chunk, inline);
            // The gauge counts accepted-but-unfinished requests, so the
            // decrement lands after the chunk's closing barrier: an
            // admission controller reading it sees queued *plus*
            // executing work.
            depth.fetch_sub(len, Ordering::SeqCst);
        }
    }
    // Shutdown handshake, phase 1 — finish the work that was already
    // accepted: any submission whose send completed before this point is
    // in the queue now (a drain loops until `Empty`), so synchronous
    // callers blocked on tickets are not stranded.
    while let Ok(msg) = rx.try_recv() {
        let len = match &msg {
            Msg::Submit(_) => 1,
            Msg::SubmitMany(batch) => batch.len(),
            Msg::Shutdown => 0,
        };
        match msg {
            Msg::Submit(s) => process_chunk_guarded(&shared, &exec, &pool, vec![s], inline),
            Msg::SubmitMany(batch) if !batch.is_empty() => {
                process_chunk_guarded(&shared, &exec, &pool, batch, inline)
            }
            _ => {}
        }
        depth.fetch_sub(len, Ordering::SeqCst);
    }
    // Phase 2 — publish `closed`, then *refuse* (never execute) whatever
    // raced in. Together with `AsyncHandle::close_race_check` this makes
    // the race deterministic: a submission concurrent with shutdown
    // either landed before `closed` and fully executed above, or it
    // resolves to the shutdown error WITHOUT side effects — here if the
    // message arrived, in `close_race_check` if it was lost. It can
    // never both execute and report failure.
    closed.store(true, Ordering::SeqCst);
    while let Ok(msg) = rx.try_recv() {
        let refused = match msg {
            Msg::Submit(s) => vec![s],
            Msg::SubmitMany(batch) => batch,
            Msg::Shutdown => continue,
        };
        for submission in refused {
            depth.fetch_sub(1, Ordering::SeqCst);
            submission.ticket.fulfill(Err(shutdown_error()));
        }
    }
}

/// Plan one chunk and execute its steps. The chunk is one
/// [`BatchPlan`]: shard steps between barriers run on the pool in
/// parallel (or inline, in coordinator-only mode), sequential steps run
/// here after a full barrier. A trailing barrier closes the chunk, so the
/// next chunk's plan reads catalog state that reflects everything this
/// chunk did — cross-chunk per-client ordering (e.g. re-checking-out a
/// name a failed checkout just released) depends on it.
fn process_chunk(
    shared: &SharedOrpheusDB,
    exec: &ConcurrentExecutor,
    pool: &Arc<Pool>,
    chunk: Vec<Submission>,
    inline: bool,
) {
    let mut users: Vec<String> = Vec::with_capacity(chunk.len());
    let mut tickets: Vec<Arc<TicketCell>> = Vec::with_capacity(chunk.len());
    let mut requests: Vec<Request> = Vec::with_capacity(chunk.len());
    for s in chunk {
        users.push(s.user);
        tickets.push(s.ticket);
        requests.push(s.request);
    }
    let plan = Arc::new(shared.plan_batch(&requests));
    let mut slots: Vec<Option<Request>> = requests.into_iter().map(Some).collect();

    for step in plan.steps() {
        match step {
            Step::Sequential(i) => {
                pool.wait_idle();
                let request = slots[*i].take().expect("indices are scheduled once");
                let mut seq = shared.internal_executor(&users[*i]);
                let outcome = catch_unwind(AssertUnwindSafe(|| seq.execute(request)))
                    .unwrap_or_else(|_| {
                        Err(CoreError::WorkerPanicked {
                            shard: "sequential".to_string(),
                        })
                    });
                tickets[*i].fulfill(outcome);
            }
            Step::Shard {
                key,
                indices,
                read_only,
            } => {
                let items: Vec<WorkItem> = indices
                    .iter()
                    .map(|&i| WorkItem {
                        user: users[i].clone(),
                        request: slots[i].take(),
                        ticket: Arc::clone(&tickets[i]),
                    })
                    .collect();
                let job = Job {
                    plan: Arc::clone(&plan),
                    key: key.clone(),
                    read_only: *read_only,
                    items,
                };
                if inline {
                    // Coordinator-only mode: no worker can overlap this
                    // step anyway (one hardware thread), so skip the
                    // cross-thread handoff entirely. Semantics are
                    // identical — per-shard order is trivially preserved
                    // by the single execution thread.
                    run_job(exec, job);
                } else {
                    pool.enqueue(job);
                }
            }
        }
    }
    pool.wait_idle();
}

// ---------------------------------------------------------------------------
// The public surface.
// ---------------------------------------------------------------------------

/// A shared OrpheusDB instance behind a coordinator thread and a per-shard
/// worker pool (see the module docs for the architecture). Cheap to query
/// for handles; owns the threads and joins them on drop, after finishing
/// all accepted submissions.
///
/// Implements [`Executor`] through an internal handle bound to the
/// instance identity, so executor-generic code (the CLI, the bench
/// harness's `drive`) runs on it unchanged; concurrent clients each take
/// their own [`AsyncHandle`].
#[derive(Debug)]
pub struct AsyncExecutor {
    shared: SharedOrpheusDB,
    tx: mpsc::Sender<Msg>,
    /// Accepted-but-unfinished submissions (queued or executing) — the
    /// load-shedding signal read by [`AsyncExecutor::queue_depth`].
    /// Incremented by handles on submit, decremented by the coordinator
    /// after each chunk completes (or is refused at shutdown).
    depth: Arc<AtomicUsize>,
    /// Published (true) by the coordinator once it will never read the
    /// channel again — the submit-side half of the shutdown handshake.
    closed: Arc<AtomicBool>,
    root: AsyncHandle,
    coordinator: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl AsyncExecutor {
    /// Spawn the coordinator plus a worker pool sized to the detected
    /// hardware parallelism: clamped to [2, 8] on multi-core hosts (below
    /// two, shard steps could never overlap; above eight, workers
    /// outnumber useful shard concurrency in every workload we generate),
    /// and **zero** on a single hardware thread — there, fanning out can
    /// overlap nothing, so the coordinator runs shard steps inline and
    /// saves the cross-thread handoffs.
    pub fn new(shared: SharedOrpheusDB) -> AsyncExecutor {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = if parallelism <= 1 {
            0
        } else {
            parallelism.clamp(2, 8)
        };
        AsyncExecutor::with_workers(shared, workers)
    }

    /// Spawn with an explicit worker-pool size. Zero workers selects
    /// coordinator-only mode: shard steps run inline on the coordinator
    /// thread with identical semantics (submission still never blocks the
    /// client on shard locks) but no cross-shard parallelism.
    pub fn with_workers(shared: SharedOrpheusDB, workers: usize) -> AsyncExecutor {
        let pool = Pool::new();
        let (tx, rx) = mpsc::channel();
        let closed = Arc::new(AtomicBool::new(false));
        let depth = Arc::new(AtomicUsize::new(0));
        let inline = workers == 0;
        let coordinator = {
            let shared = shared.clone();
            let pool = Arc::clone(&pool);
            let closed = Arc::clone(&closed);
            let depth = Arc::clone(&depth);
            std::thread::spawn(move || coordinator_loop(shared, pool, rx, closed, depth, inline))
        };
        let worker_handles = (0..workers)
            .map(|_| {
                let pool = Arc::clone(&pool);
                // The worker's own identity never executes anything —
                // every sub-batch item carries its submitting session's
                // user — so an unregistered placeholder is correct here.
                let exec = shared.internal_executor("__async_worker");
                std::thread::spawn(move || pool.worker_loop(&exec))
            })
            .collect();
        let root = AsyncHandle {
            tx: tx.clone(),
            closed: Arc::clone(&closed),
            depth: Arc::clone(&depth),
            user: shared.instance_user(),
        };
        AsyncExecutor {
            shared,
            tx,
            depth,
            closed,
            root,
            coordinator: Some(coordinator),
            workers: worker_handles,
        }
    }

    /// Open a client handle operating as `user` (registering the account
    /// if needed — same semantics as [`SharedOrpheusDB::session`]).
    pub fn handle(&self, user: &str) -> Result<AsyncHandle> {
        // Registration goes through the catalog exactly as for sessions.
        self.shared.executor(user)?;
        Ok(AsyncHandle {
            tx: self.tx.clone(),
            closed: Arc::clone(&self.closed),
            depth: Arc::clone(&self.depth),
            user: user.to_string(),
        })
    }

    /// Accepted-but-unfinished submissions (queued plus executing), the
    /// admission-control signal: the network server refuses new work with
    /// a retryable [`CoreError::Overloaded`] once this crosses its
    /// configured ceiling, instead of letting the backlog grow without
    /// bound. Momentarily stale by design — a racing submit may slip past
    /// one read — which only moves the shedding threshold by one request.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// The shared instance behind this executor (snapshots, `read`).
    pub fn shared(&self) -> &SharedOrpheusDB {
        &self.shared
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit through the instance-identity handle without blocking.
    pub fn submit(&self, request: impl Into<Request>) -> Ticket {
        self.root.submit(request)
    }
}

impl Drop for AsyncExecutor {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(coordinator) = self.coordinator.take() {
            let _ = coordinator.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Executor-generic code drives the pool through its instance-identity
/// handle: `execute` submits and waits, `batch` pipelines (submit
/// everything, then wait in submission order).
impl Executor for AsyncExecutor {
    fn execute(&mut self, request: Request) -> Result<Response> {
        self.root.execute(request)
    }

    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        self.root.batch(requests)
    }
}

/// One client's handle on an [`AsyncExecutor`]: the async counterpart of
/// [`crate::Session`], carrying a user identity. Clone freely — clones
/// share the identity *at clone time* but rebind independently on
/// `Login`.
///
/// `submit` enqueues and returns a [`Ticket`] immediately; the
/// [`Executor`] impl layers the synchronous contract on top (`execute` =
/// submit + wait; `batch` = submit all, wait all, preserving submission
/// order and per-request failures). A `Login` request through `execute`
/// or `batch` rebinds this handle on success, exactly like a session;
/// through bare `submit` it validates the user but rebinds nothing (a
/// `&self` submission cannot retarget the handle).
#[derive(Debug, Clone)]
pub struct AsyncHandle {
    tx: mpsc::Sender<Msg>,
    /// See [`AsyncExecutor::closed`]: true once the coordinator will
    /// never read the channel again.
    closed: Arc<AtomicBool>,
    /// See [`AsyncExecutor::queue_depth`].
    depth: Arc<AtomicUsize>,
    user: String,
}

fn shutdown_error() -> CoreError {
    CoreError::Invalid("async executor has shut down".to_string())
}

impl AsyncHandle {
    /// The identity this handle submits under.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Enqueue a request without blocking on any shard lock. If the
    /// executor has shut down, the ticket resolves immediately to an
    /// error instead of waiting forever.
    pub fn submit(&self, request: impl Into<Request>) -> Ticket {
        let cell = TicketCell::new();
        let submission = Submission {
            user: self.user.clone(),
            request: request.into(),
            ticket: Arc::clone(&cell),
        };
        self.depth.fetch_add(1, Ordering::SeqCst);
        if self.tx.send(Msg::Submit(submission)).is_err() {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            cell.fulfill(Err(shutdown_error()));
        }
        self.close_race_check(std::slice::from_ref(&cell));
        Ticket(cell)
    }

    /// Enqueue a whole request vector as **one** message: the coordinator
    /// plans it as a single chunk (maximal per-shard sub-batches, maximal
    /// shared scans) instead of reassembling it from interleaved
    /// singles. Returns one [`Ticket`] per request, in submission order.
    pub fn submit_batch<I>(&self, requests: I) -> Vec<Ticket>
    where
        I: IntoIterator,
        I::Item: Into<Request>,
    {
        let mut submissions: Vec<Submission> = Vec::new();
        let mut cells: Vec<Arc<TicketCell>> = Vec::new();
        for request in requests {
            let cell = TicketCell::new();
            submissions.push(Submission {
                user: self.user.clone(),
                request: request.into(),
                ticket: Arc::clone(&cell),
            });
            cells.push(cell);
        }
        if !submissions.is_empty() {
            let len = submissions.len();
            self.depth.fetch_add(len, Ordering::SeqCst);
            if self.tx.send(Msg::SubmitMany(submissions)).is_err() {
                self.depth.fetch_sub(len, Ordering::SeqCst);
                for cell in &cells {
                    cell.fulfill(Err(shutdown_error()));
                }
            }
            self.close_race_check(&cells);
        }
        cells.into_iter().map(Ticket).collect()
    }

    /// The submit half of the shutdown handshake. A send can succeed in
    /// the instant between the coordinator's final drain and the receiver
    /// being dropped; without this, such a submission would be silently
    /// lost and its ticket would wait forever. The coordinator publishes
    /// `closed` between its execute-drain and its refuse-drain, so after
    /// a send exactly one of these holds: `closed` was still false — the
    /// send completed before the refuse-drain began, so one of the two
    /// drains is guaranteed to fulfill the ticket (executing it if it
    /// made the execute-drain, refusing it otherwise); or `closed` reads
    /// true — the message might be lost entirely, and poisoning here
    /// covers that. The refuse-drain never executes, so a raced
    /// submission can never both run and report the shutdown error;
    /// fulfillment is first-write-wins, so double poisoning is harmless
    /// and a ticket the coordinator already answered keeps its real
    /// result.
    fn close_race_check(&self, cells: &[Arc<TicketCell>]) {
        if self.closed.load(Ordering::SeqCst) {
            for cell in cells {
                cell.fulfill(Err(shutdown_error()));
            }
        }
    }
}

impl Executor for AsyncHandle {
    fn execute(&mut self, request: Request) -> Result<Response> {
        let rebind = match &request {
            Request::Login(login) => Some(login.user.clone()),
            _ => None,
        };
        let result = self.submit(request).wait();
        if let (Some(user), Ok(_)) = (rebind, &result) {
            self.user = user;
        }
        result
    }

    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        enum Slot {
            Done(Result<Response>),
            Pending(Ticket),
        }
        let mut slots: Vec<Slot> = Vec::new();
        let mut run: Vec<Request> = Vec::new();
        for request in requests {
            if matches!(request, Request::Login(_)) {
                // A login's outcome decides the identity of every later
                // submission, so it is a pipeline barrier: flush the run
                // collected so far as one atomic batch, then wait for the
                // login itself (safe — the coordinator finishes
                // everything submitted before it first; `Login` plans as
                // a sequential step).
                slots.extend(
                    self.submit_batch(run.drain(..))
                        .into_iter()
                        .map(Slot::Pending),
                );
                slots.push(Slot::Done(self.execute(request)));
            } else {
                run.push(request);
            }
        }
        slots.extend(self.submit_batch(run).into_iter().map(Slot::Pending));
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(result) => result,
                Slot::Pending(ticket) => ticket.wait(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::OrpheusDB;
    use crate::ids::Vid;
    use crate::request::{Checkout, Commit, Login, Run};
    use orpheus_engine::{Column, DataType, Schema, Value};

    fn shared_with_cvds(names: &[&str]) -> SharedOrpheusDB {
        let mut odb = OrpheusDB::new();
        for name in names {
            let schema = Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ])
            .with_primary_key(&["k"])
            .unwrap();
            let rows: Vec<Vec<Value>> = (0..10)
                .map(|i| vec![Value::Int(i), Value::Int(0)])
                .collect();
            odb.init_cvd(name, schema, rows, None).unwrap();
        }
        SharedOrpheusDB::new(odb)
    }

    #[test]
    fn tickets_resolve_in_submission_order_per_shard() {
        let pool = AsyncExecutor::with_workers(shared_with_cvds(&["data"]), 2);
        let h = pool.handle("alice").unwrap();
        let t1 = h.submit(Checkout::of("data").version(1u64).into_table("w"));
        let t2 = h.submit(Commit::table("w").message("first"));
        let t3 = h.submit(Run::sql("SELECT count(*) FROM VERSION 2 OF CVD data"));
        assert!(t1.wait().is_ok());
        assert_eq!(t2.wait().unwrap().version(), Some(Vid(2)));
        let rows = t3.wait().unwrap().into_rows().unwrap();
        assert_eq!(rows.scalar(), Some(&Value::Int(10)));
    }

    #[test]
    fn failures_stay_per_request() {
        let pool = AsyncExecutor::with_workers(shared_with_cvds(&["data"]), 2);
        let mut h = pool.handle("u").unwrap();
        let results = h.batch(vec![
            Checkout::of("data").version(9u64).into_table("bad").into(),
            Checkout::of("data").version(1u64).into_table("good").into(),
            Commit::table("good").message("lands").into(),
        ]);
        assert!(matches!(results[0], Err(CoreError::VersionNotFound { .. })));
        assert_eq!(results[2].as_ref().unwrap().version(), Some(Vid(2)));
        // The failed checkout's reservation was released.
        pool.shared()
            .session("u")
            .unwrap()
            .checkout("data", &[Vid(1)], "bad")
            .unwrap();
    }

    #[test]
    fn many_handles_commit_concurrently() {
        let pool = Arc::new(AsyncExecutor::new(shared_with_cvds(&["left", "right"])));
        std::thread::scope(|scope| {
            for (u, cvd) in [("a", "left"), ("b", "right"), ("c", "left"), ("d", "right")] {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let h = pool.handle(u).unwrap();
                    for i in 0..3 {
                        let table = format!("{u}_{i}");
                        let t1 = h.submit(Checkout::of(cvd).version(1u64).into_table(&table));
                        let t2 = h.submit(Commit::table(&table).message(format!("{u} {i}")));
                        t1.wait().unwrap();
                        t2.wait().unwrap();
                    }
                });
            }
        });
        pool.shared().read(|odb| {
            assert_eq!(odb.cvd("left").unwrap().num_versions(), 7);
            assert_eq!(odb.cvd("right").unwrap().num_versions(), 7);
            assert!(odb.staged().is_empty());
        });
    }

    #[test]
    fn login_rebinds_the_handle_through_execute_and_batch() {
        let pool = AsyncExecutor::with_workers(shared_with_cvds(&["data"]), 2);
        pool.shared().executor("carol").unwrap();
        let mut h = pool.handle("alice").unwrap();
        let results = h.batch(vec![Login::as_user("carol").into(), Request::Whoami]);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap().summary(), "carol");
        assert_eq!(h.user(), "carol");
        // A failing login leaves the handle untouched.
        assert!(h.execute(Login::as_user("nobody").into()).is_err());
        assert_eq!(h.user(), "carol");
    }

    #[test]
    fn wait_for_times_out_on_unfulfilled_tickets_and_resolves_fulfilled_ones() {
        // An unfulfilled ticket: the timeout elapses, the ticket survives,
        // and a later fulfillment is still collectable.
        let (ticket, fulfiller) = Ticket::pending();
        let before = std::time::Instant::now();
        assert!(ticket
            .wait_for(std::time::Duration::from_millis(20))
            .is_none());
        assert!(before.elapsed() >= std::time::Duration::from_millis(20));
        fulfiller.fulfill(Err(CoreError::Invalid("late".into())));
        assert!(ticket.is_ready());
        let outcome = ticket
            .wait_for(std::time::Duration::from_secs(5))
            .expect("fulfilled");
        assert!(matches!(outcome, Err(CoreError::Invalid(_))));

        // A pre-resolved ticket returns immediately.
        let ready = Ticket::ready(Ok(Response::CurrentUser { user: "u".into() }));
        assert!(ready.is_ready());
        assert!(ready.wait_for(std::time::Duration::ZERO).is_some());

        // Tickets from a live pool resolve within a bounded wait.
        let pool = AsyncExecutor::with_workers(shared_with_cvds(&["data"]), 1);
        let h = pool.handle("alice").unwrap();
        let t = h.submit(Checkout::of("data").version(1u64).into_table("w"));
        let outcome = t
            .wait_for(std::time::Duration::from_secs(30))
            .expect("pool fulfills tickets");
        assert!(outcome.is_ok());
    }

    #[test]
    fn shutdown_poisons_late_submissions_cleanly() {
        let pool = AsyncExecutor::with_workers(shared_with_cvds(&["data"]), 1);
        let h = pool.handle("u").unwrap();
        drop(pool);
        let err = h.submit(Request::Ls).wait().unwrap_err();
        assert!(err.to_string().contains("shut down"), "{err}");
    }
}
