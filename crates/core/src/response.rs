//! Structured results for the typed command bus: one [`Response`] variant
//! per [`crate::request::Request`] family, carrying data instead of
//! pre-formatted strings. Front-ends choose their own rendering —
//! [`Response::summary`] provides the canonical one-line human text the
//! CLI and REPL print.

use orpheus_engine::QueryResult;

use crate::db::VersionDiff;
use crate::ids::Vid;
use crate::partition_store::OptimizeReport;

/// Outcome of one executed [`crate::request::Request`].
#[derive(Debug, Clone)]
pub enum Response {
    /// `Init` / `InitFromCsv`.
    Initialized { cvd: String, version: Vid },
    /// `Checkout` into a staged table.
    CheckedOut {
        cvd: String,
        versions: Vec<Vid>,
        table: String,
    },
    /// `CheckoutCsv`: `csv` is the exported text; writing it under `path`
    /// is the caller's job (I/O stays off the bus).
    CheckedOutCsv {
        cvd: String,
        versions: Vec<Vid>,
        path: String,
        csv: String,
    },
    /// `Commit` / `CommitCsv`; `target` is the committed table or path.
    Committed { target: String, version: Vid },
    /// `Diff`.
    Diffed {
        cvd: String,
        from: Vid,
        to: Vid,
        diff: VersionDiff,
    },
    /// `Run`.
    Rows(QueryResult),
    /// `Ls`.
    CvdList(Vec<String>),
    /// `Log`.
    Log { cvd: String, entries: Vec<LogEntry> },
    /// `Drop`.
    Dropped { cvd: String },
    /// `Optimize`.
    Optimized { cvd: String, report: OptimizeReport },
    /// `CreateUser`.
    UserCreated { user: String },
    /// `Login`.
    LoggedIn { user: String },
    /// `Whoami`.
    CurrentUser { user: String },
    /// `Discard`.
    Discarded { table: String },
}

/// One version's history line (the typed form of `log` output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    pub vid: Vid,
    pub parents: Vec<Vid>,
    pub commit_t: u64,
    pub num_records: u64,
    pub message: String,
}

impl Response {
    /// The query result, for `Run` responses.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            Response::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// Consume into the query result, for `Run` responses.
    pub fn into_rows(self) -> Option<QueryResult> {
        match self {
            Response::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The version created by this command, for `Init`/`Commit` responses.
    pub fn version(&self) -> Option<Vid> {
        match self {
            Response::Initialized { version, .. } | Response::Committed { version, .. } => {
                Some(*version)
            }
            _ => None,
        }
    }

    /// Canonical one-line (or few-line) human-readable rendering. `Rows`
    /// summarizes to a row count; front-ends that want the full table
    /// render [`Response::rows`] themselves.
    pub fn summary(&self) -> String {
        match self {
            Response::Initialized { cvd, version } => {
                format!("initialized CVD {cvd} at version {version}")
            }
            Response::CheckedOut {
                versions, table, ..
            } => {
                format!("checked out {} into table {table}", fmt_vids(versions))
            }
            Response::CheckedOutCsv { versions, path, .. } => {
                format!("checked out {} into file {path}", fmt_vids(versions))
            }
            Response::Committed { target, version } => {
                format!("committed {target} as {version}")
            }
            Response::Diffed { from, to, diff, .. } => format!(
                "{} record(s) only in {from}, {} record(s) only in {to}",
                diff.only_in_first.len(),
                diff.only_in_second.len()
            ),
            Response::Rows(r) => format!("{} row(s)", r.rows.len()),
            Response::CvdList(names) => names.join("\n"),
            Response::Log { entries, .. } => entries
                .iter()
                .map(|e| {
                    format!(
                        "{} <- [{}] {} ({} records) \"{}\"",
                        e.vid,
                        fmt_vids(&e.parents),
                        e.commit_t,
                        e.num_records,
                        e.message
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"),
            Response::Dropped { cvd } => format!("dropped CVD {cvd}"),
            Response::Optimized { cvd, report } => format!(
                "partitioned {cvd} into {} partition(s); est. storage {} records, \
                 est. checkout cost {:.1} records (δ = {:.3})",
                report.num_partitions, report.storage_records, report.cavg, report.delta
            ),
            Response::UserCreated { user } => format!("created user {user}"),
            Response::LoggedIn { user } => format!("logged in as {user}"),
            Response::CurrentUser { user } => user.clone(),
            Response::Discarded { table } => format!("discarded {table}"),
        }
    }
}

fn fmt_vids(vids: &[Vid]) -> String {
    vids.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_read_like_the_old_cli() {
        assert_eq!(
            Response::Initialized {
                cvd: "protein".into(),
                version: Vid(1)
            }
            .summary(),
            "initialized CVD protein at version v1"
        );
        assert_eq!(
            Response::CheckedOut {
                cvd: "protein".into(),
                versions: vec![Vid(2), Vid(1)],
                table: "w".into()
            }
            .summary(),
            "checked out v2, v1 into table w"
        );
        assert_eq!(
            Response::Committed {
                target: "w".into(),
                version: Vid(2)
            }
            .summary(),
            "committed w as v2"
        );
        assert_eq!(
            Response::CvdList(vec!["a".into(), "b".into()]).summary(),
            "a\nb"
        );
        assert_eq!(Response::CvdList(vec![]).summary(), "");
    }

    #[test]
    fn accessors_pick_out_typed_payloads() {
        let committed = Response::Committed {
            target: "w".into(),
            version: Vid(3),
        };
        assert_eq!(committed.version(), Some(Vid(3)));
        assert!(committed.rows().is_none());

        let log = Response::Log {
            cvd: "d".into(),
            entries: vec![LogEntry {
                vid: Vid(2),
                parents: vec![Vid(1)],
                commit_t: 5,
                num_records: 7,
                message: "edit".into(),
            }],
        };
        assert_eq!(log.summary(), "v2 <- [v1] 5 (7 records) \"edit\"");
        assert_eq!(log.version(), None);
    }
}
