//! Middleware error type, wrapping engine errors with version-control
//! specific failure modes.
//!
//! Errors are structured per command where that helps callers: typed
//! requests that fail validation surface as [`CoreError::BadRequest`]
//! carrying the [`CommandKind`] that raised them, while string front-end
//! failures surface as [`CoreError::Parse`] / [`CoreError::UnknownCommand`]
//! so a REPL can distinguish "bad line" from "bad state".

use std::fmt;

use orpheus_engine::EngineError;

use crate::ids::Vid;
use crate::request::CommandKind;

pub type Result<T> = std::result::Result<T, CoreError>;

/// Failures surfaced by OrpheusDB commands and APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying engine error.
    Engine(EngineError),
    /// Referenced CVD does not exist.
    CvdNotFound(String),
    /// A CVD with this name already exists.
    CvdExists(String),
    /// Referenced version id does not exist in the CVD.
    VersionNotFound { cvd: String, version: Vid },
    /// The table was not produced by a checkout (no provenance entry).
    NotStaged(String),
    /// Primary-key violation detected during commit.
    PrimaryKeyViolation(String),
    /// Staged table/CSV schema does not match the CVD schema.
    SchemaMismatch(String),
    /// Current user lacks access to the staged table.
    PermissionDenied(String),
    /// The string front-end could not parse a line into a [`crate::request::Request`].
    Parse {
        /// The command being parsed, when it got far enough to know.
        command: Option<CommandKind>,
        message: String,
    },
    /// The command word itself is not recognized by the string front-end.
    UnknownCommand(String),
    /// A typed request failed validation before touching storage.
    BadRequest {
        command: CommandKind,
        reason: String,
    },
    /// File access on behalf of a command (`-f` / `-s` flags) failed.
    Io(String),
    /// CSV parse failure.
    Csv(String),
    /// Snapshot persistence failure (I/O, corruption, version skew).
    Storage(String),
    /// A statement routed by the concurrent executor touches more than one
    /// CVD in a way per-CVD locking cannot serve (non-SELECT statements
    /// spanning CVDs). Carries the CVD names involved.
    CrossCvd(Vec<String>),
    /// A network transport failure: the connection to a remote OrpheusDB
    /// server (or from a client) was lost, refused, or timed out. Raised
    /// by the `orpheus-net` crate's client and server.
    Network(String),
    /// A wire-protocol violation: bad magic, unsupported protocol
    /// version, an oversized or truncated frame, or a payload that does
    /// not decode. Raised by the `orpheus-net` codec; a peer speaking the
    /// protocol correctly never sees this.
    Protocol(String),
    /// Executing a request panicked inside a batch/async worker. The panic
    /// was contained to the shard named here: the panicking request and
    /// everything still in flight in the same sub-batch fail with this
    /// error, while other shards — and later submissions to this one —
    /// are unaffected.
    WorkerPanicked { shard: String },
    /// Catch-all for invalid API usage.
    Invalid(String),
    /// The server-side deadline for one request elapsed before its
    /// outcome was known. The request may still apply after the fact, so
    /// this is **not** retryable: blindly resubmitting a mutation could
    /// double it.
    DeadlineExceeded { elapsed_ms: u64 },
    /// The server shed this request under load *before executing it*, so
    /// retrying after the hinted delay is always safe. The network
    /// client's retry policy honors the hint automatically.
    Overloaded { retry_after_ms: u64 },
    /// The instance is in read-only degraded mode after a write-ahead-log
    /// I/O failure: reads and checkouts keep serving, mutations are
    /// refused without touching state. Retryable once an operator
    /// recovers the instance with a checkpoint (which rotates onto a
    /// fresh segment). Carries the original I/O failure.
    Degraded(String),
    /// A client-side wait for a response outlived its deadline. Distinct
    /// from [`CoreError::Network`] so callers can tell "the connection
    /// died" from "the connection is fine but slow"; `state` carries the
    /// client's last-known link state (session, in-flight count, or the
    /// recorded cause of death). The outcome of the request is unknown.
    ResponseTimeout { waited_ms: u64, state: String },
}

impl CoreError {
    /// Shorthand for a validation failure of one typed command.
    pub fn bad_request(command: CommandKind, reason: impl Into<String>) -> CoreError {
        CoreError::BadRequest {
            command,
            reason: reason.into(),
        }
    }

    /// Shorthand for a parse failure attributed to one command.
    pub fn parse(command: CommandKind, message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            command: Some(command),
            message: message.into(),
        }
    }

    /// Shorthand for a parse failure with no identifiable command.
    pub fn parse_line(message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            command: None,
            message: message.into(),
        }
    }

    /// The command this error is attributable to, when known.
    pub fn command(&self) -> Option<CommandKind> {
        match self {
            CoreError::Parse { command, .. } => *command,
            CoreError::BadRequest { command, .. } => Some(*command),
            _ => None,
        }
    }

    /// Whether the producer guarantees the request did **not** execute,
    /// making a retry of the same request safe. True for load shedding
    /// ([`CoreError::Overloaded`]) and degraded-mode refusals
    /// ([`CoreError::Degraded`]); false for everything whose outcome is
    /// settled or unknown (timeouts and transport failures are resolved
    /// by the client's idempotent replay instead).
    pub fn is_retryable(&self) -> bool {
        matches!(self, CoreError::Overloaded { .. } | CoreError::Degraded(_))
    }

    /// The server's suggested minimum delay before retrying, when it
    /// gave one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            CoreError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::CvdNotFound(c) => write!(f, "CVD not found: {c}"),
            CoreError::CvdExists(c) => write!(f, "CVD already exists: {c}"),
            CoreError::VersionNotFound { cvd, version } => {
                write!(f, "version {} not found in CVD {cvd}", version.0)
            }
            CoreError::NotStaged(t) => {
                write!(f, "table {t} was not checked out from any CVD")
            }
            CoreError::PrimaryKeyViolation(m) => write!(f, "primary key violation: {m}"),
            CoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            CoreError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            CoreError::Parse {
                command: Some(c),
                message,
            } => write!(f, "{c}: {message}"),
            CoreError::Parse {
                command: None,
                message,
            } => write!(f, "command error: {message}"),
            CoreError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
            CoreError::BadRequest { command, reason } => {
                write!(f, "invalid {command} request: {reason}")
            }
            CoreError::Io(m) => write!(f, "I/O error: {m}"),
            CoreError::Csv(m) => write!(f, "csv error: {m}"),
            CoreError::Storage(m) => write!(f, "storage error: {m}"),
            CoreError::CrossCvd(cvds) => write!(
                f,
                "statement writes across CVDs [{}]; only read-only (SELECT) \
                 statements may span CVDs under per-CVD locking",
                cvds.join(", ")
            ),
            CoreError::Network(m) => write!(f, "network error: {m}"),
            CoreError::Protocol(m) => write!(f, "protocol error: {m}"),
            CoreError::WorkerPanicked { shard } => write!(
                f,
                "a worker panicked while executing the sub-batch of shard {shard}; \
                 the request (and any still in flight on that shard) was abandoned"
            ),
            CoreError::Invalid(m) => write!(f, "invalid request: {m}"),
            CoreError::DeadlineExceeded { elapsed_ms } => write!(
                f,
                "request deadline exceeded after {elapsed_ms}ms; the outcome is unknown \
                 (the request may still apply)"
            ),
            CoreError::Overloaded { retry_after_ms } => write!(
                f,
                "server overloaded; request shed before executing, retry after {retry_after_ms}ms"
            ),
            CoreError::Degraded(m) => write!(
                f,
                "instance degraded to read-only after a write-ahead-log failure \
                 (mutations refused until an operator checkpoint): {m}"
            ),
            CoreError::ResponseTimeout { waited_ms, state } => {
                write!(f, "no response after {waited_ms}ms ({state})")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_convert() {
        let e: CoreError = EngineError::TableNotFound("x".into()).into();
        assert!(matches!(e, CoreError::Engine(_)));
        assert!(e.to_string().contains("table not found"));
    }

    #[test]
    fn display_variants() {
        assert_eq!(
            CoreError::VersionNotFound {
                cvd: "protein".into(),
                version: Vid(9)
            }
            .to_string(),
            "version 9 not found in CVD protein"
        );
        assert!(CoreError::NotStaged("t1".into()).to_string().contains("t1"));
        assert_eq!(
            CoreError::bad_request(CommandKind::Checkout, "no versions given").to_string(),
            "invalid checkout request: no versions given"
        );
        assert_eq!(
            CoreError::UnknownCommand("bogus".into()).to_string(),
            "unknown command: bogus"
        );
        assert_eq!(
            CoreError::parse(CommandKind::Diff, "needs two versions").to_string(),
            "diff: needs two versions"
        );
        assert_eq!(
            CoreError::Network("connection reset".into()).to_string(),
            "network error: connection reset"
        );
        assert_eq!(
            CoreError::Protocol("bad magic".into()).to_string(),
            "protocol error: bad magic"
        );
    }

    #[test]
    fn resilience_variants_display_and_classify() {
        let shed = CoreError::Overloaded { retry_after_ms: 75 };
        assert!(shed.to_string().contains("retry after 75ms"));
        assert!(shed.is_retryable());
        assert_eq!(shed.retry_after_ms(), Some(75));

        let degraded = CoreError::Degraded("fsync failed".into());
        assert!(degraded.to_string().contains("read-only"));
        assert!(degraded.is_retryable());
        assert_eq!(degraded.retry_after_ms(), None);

        let deadline = CoreError::DeadlineExceeded { elapsed_ms: 1500 };
        assert!(deadline.to_string().contains("1500ms"));
        assert!(!deadline.is_retryable());

        let timeout = CoreError::ResponseTimeout {
            waited_ms: 200,
            state: "connected, 3 in flight".into(),
        };
        assert!(timeout.to_string().contains("200ms"));
        assert!(timeout.to_string().contains("3 in flight"));
        assert!(!timeout.is_retryable());
        assert!(!CoreError::Network("reset".into()).is_retryable());
    }

    #[test]
    fn errors_know_their_command() {
        assert_eq!(
            CoreError::bad_request(CommandKind::Optimize, "x").command(),
            Some(CommandKind::Optimize)
        );
        assert_eq!(CoreError::parse_line("x").command(), None);
        assert_eq!(CoreError::CvdNotFound("d".into()).command(), None);
    }
}
