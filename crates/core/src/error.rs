//! Middleware error type, wrapping engine errors with version-control
//! specific failure modes.

use std::fmt;

use orpheus_engine::EngineError;

pub type Result<T> = std::result::Result<T, CoreError>;

/// Failures surfaced by OrpheusDB commands and APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying engine error.
    Engine(EngineError),
    /// Referenced CVD does not exist.
    CvdNotFound(String),
    /// A CVD with this name already exists.
    CvdExists(String),
    /// Referenced version id does not exist in the CVD.
    VersionNotFound(String, u64),
    /// The table was not produced by a checkout (no provenance entry).
    NotStaged(String),
    /// Primary-key violation detected during commit.
    PrimaryKeyViolation(String),
    /// Staged table/CSV schema does not match the CVD schema.
    SchemaMismatch(String),
    /// Current user lacks access to the staged table.
    PermissionDenied(String),
    /// Command-line parse failure.
    Command(String),
    /// CSV parse failure.
    Csv(String),
    /// Snapshot persistence failure (I/O, corruption, version skew).
    Storage(String),
    /// Catch-all for invalid API usage.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::CvdNotFound(c) => write!(f, "CVD not found: {c}"),
            CoreError::CvdExists(c) => write!(f, "CVD already exists: {c}"),
            CoreError::VersionNotFound(c, v) => write!(f, "version {v} not found in CVD {c}"),
            CoreError::NotStaged(t) => {
                write!(f, "table {t} was not checked out from any CVD")
            }
            CoreError::PrimaryKeyViolation(m) => write!(f, "primary key violation: {m}"),
            CoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            CoreError::PermissionDenied(m) => write!(f, "permission denied: {m}"),
            CoreError::Command(m) => write!(f, "command error: {m}"),
            CoreError::Csv(m) => write!(f, "csv error: {m}"),
            CoreError::Storage(m) => write!(f, "storage error: {m}"),
            CoreError::Invalid(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_convert() {
        let e: CoreError = EngineError::TableNotFound("x".into()).into();
        assert!(matches!(e, CoreError::Engine(_)));
        assert!(e.to_string().contains("table not found"));
    }

    #[test]
    fn display_variants() {
        assert_eq!(
            CoreError::VersionNotFound("protein".into(), 9).to_string(),
            "version 9 not found in CVD protein"
        );
        assert!(CoreError::NotStaged("t1".into()).to_string().contains("t1"));
    }
}
