//! Hand-rolled binary encoding for everything that rides the wire — and,
//! since PR 7, the write-ahead log: the full [`Request`] and [`Response`]
//! corpus, [`CoreError`] (including its wrapped [`EngineError`]), and the
//! engine vocabulary they carry ([`Value`], [`Schema`], [`QueryResult`]).
//!
//! The workspace builds offline — no serde, no derive macros — so the
//! codec is explicit: one `encode_*`/`decode_*` pair per type, all
//! little-endian, strings as `u32` length + UTF-8 bytes, sequences as
//! `u32` count + elements, enums as a `u8` tag + payload. Decoding never
//! panics on hostile input: every read is bounds-checked and every
//! failure surfaces as [`CoreError::Protocol`], which the connection
//! layers turn into a clean error frame or connection close.
//!
//! This module lives in `orpheus-core` (it moved down from `orpheus-net`)
//! because two consumers now share it: the TCP wire protocol
//! (`crates/net`, which re-exports it unchanged) and the durability log
//! ([`crate::wal`]), whose records embed encoded requests. One encoding,
//! one hostile-input discipline, one test corpus.
//!
//! Compatibility discipline: tags are append-only. A new request,
//! response, error, or value variant takes the next free tag; existing
//! tags never change meaning. Payload layout changes require bumping
//! `orpheus-net`'s `PROTOCOL_VERSION` (and [`crate::wal`]'s segment
//! version) instead, which handshake and recovery reject up front.

use crate::request::{
    Checkout, CheckoutCsv, Commit, CommitCsv, CreateUser, Diff, Discard, DropCvd, Init,
    InitFromCsv, Log, Login, Optimize, Run,
};
use crate::response::LogEntry;
use crate::{CommandKind, CoreError, ModelKind, Request, Response, Result, VersionDiff, Vid};
use orpheus_engine::{Column, DataType, EngineError, QueryResult, Schema, Value};

use crate::partition_store::OptimizeReport;

/// Bounds-checked reader over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn truncated(what: &str) -> CoreError {
    CoreError::Protocol(format!("truncated payload while decoding {what}"))
}

fn bad_tag(what: &str, tag: u8) -> CoreError {
    CoreError::Protocol(format!("unknown {what} tag {tag}"))
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Decoding must consume the payload exactly; trailing bytes mean the
    /// peer and we disagree about the layout.
    pub fn finish(self, what: &str) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CoreError::Protocol(format!(
                "{} trailing byte(s) after decoding {what}",
                self.buf.len() - self.pos
            )))
        }
    }

    pub fn u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or_else(|| truncated("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| truncated(what))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad_tag("bool", b)),
        }
    }

    /// A `u32` element count, sanity-bounded by the bytes actually left:
    /// every element costs at least one byte, so a count beyond the
    /// remaining payload is hostile (or corrupt) and is rejected before
    /// any allocation sized by it.
    pub fn count(&mut self, what: &str) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(CoreError::Protocol(format!(
                "{what} count {n} exceeds the {} byte(s) left in the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.count("string byte")?;
        let bytes = self.take(n, "string")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CoreError::Protocol("string payload is not UTF-8".to_string()))
    }
}

pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.str()?)),
        b => Err(bad_tag("option", b)),
    }
}

// -- engine vocabulary --------------------------------------------------------

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Double(d) => {
            out.push(2);
            put_f64(out, *d);
        }
        Value::Text(s) => {
            out.push(3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            out.push(4);
            put_bool(out, *b);
        }
        Value::IntArray(a) => {
            out.push(5);
            put_u32(out, a.len() as u32);
            for i in a {
                put_u64(out, *i as u64);
            }
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Double(r.f64()?),
        3 => Value::Text(r.str()?),
        4 => Value::Bool(r.bool()?),
        5 => {
            let n = r.count("int array")?;
            let mut a = Vec::with_capacity(n);
            for _ in 0..n {
                a.push(r.i64()?);
            }
            Value::IntArray(a)
        }
        t => return Err(bad_tag("value", t)),
    })
}

fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

fn read_row(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let n = r.count("row value")?;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(read_value(r)?);
    }
    Ok(row)
}

pub(crate) fn put_rows(out: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_row(out, row);
    }
}

pub(crate) fn read_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>> {
    let n = r.count("row")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(read_row(r)?);
    }
    Ok(rows)
}

fn datatype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::IntArray => 4,
    }
}

fn read_datatype(r: &mut Reader<'_>) -> Result<DataType> {
    Ok(match r.u8()? {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::IntArray,
        t => return Err(bad_tag("data type", t)),
    })
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.columns.len() as u32);
    for c in &schema.columns {
        put_str(out, &c.name);
        out.push(datatype_tag(c.dtype));
        put_bool(out, c.nullable);
    }
    put_u32(out, schema.primary_key.len() as u32);
    for i in &schema.primary_key {
        put_u32(out, *i as u32);
    }
}

pub(crate) fn read_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let n = r.count("column")?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let dtype = read_datatype(r)?;
        let nullable = r.bool()?;
        let column = Column::new(name, dtype);
        columns.push(if nullable { column } else { column.not_null() });
    }
    let mut schema = Schema::new(columns);
    let pk = r.count("primary key column")?;
    let mut primary_key = Vec::with_capacity(pk);
    for _ in 0..pk {
        let idx = r.u32()? as usize;
        if idx >= schema.columns.len() {
            return Err(CoreError::Protocol(format!(
                "primary key index {idx} out of range for {} column(s)",
                schema.columns.len()
            )));
        }
        primary_key.push(idx);
    }
    schema.primary_key = primary_key;
    Ok(schema)
}

pub(crate) fn put_vids(out: &mut Vec<u8>, vids: &[Vid]) {
    put_u32(out, vids.len() as u32);
    for v in vids {
        put_u64(out, v.0);
    }
}

pub(crate) fn read_vids(r: &mut Reader<'_>) -> Result<Vec<Vid>> {
    let n = r.count("version id")?;
    let mut vids = Vec::with_capacity(n);
    for _ in 0..n {
        vids.push(Vid(r.u64()?));
    }
    Ok(vids)
}

fn model_tag(m: ModelKind) -> u8 {
    match m {
        ModelKind::TablePerVersion => 0,
        ModelKind::CombinedTable => 1,
        ModelKind::SplitByVlist => 2,
        ModelKind::SplitByRlist => 3,
        ModelKind::DeltaBased => 4,
    }
}

pub(crate) fn put_opt_model(out: &mut Vec<u8>, m: &Option<ModelKind>) {
    match m {
        None => out.push(0xff),
        Some(m) => out.push(model_tag(*m)),
    }
}

pub(crate) fn read_opt_model(r: &mut Reader<'_>) -> Result<Option<ModelKind>> {
    let tag = r.u8()?;
    if tag == 0xff {
        return Ok(None);
    }
    Ok(Some(match tag {
        0 => ModelKind::TablePerVersion,
        1 => ModelKind::CombinedTable,
        2 => ModelKind::SplitByVlist,
        3 => ModelKind::SplitByRlist,
        4 => ModelKind::DeltaBased,
        t => return Err(bad_tag("model", t)),
    }))
}

// -- requests -----------------------------------------------------------------

/// Append the encoding of `request` to `out`.
pub fn put_request(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Init(r) => {
            out.push(0);
            put_str(out, &r.cvd);
            put_schema(out, &r.schema);
            put_rows(out, &r.rows);
            put_opt_model(out, &r.model);
        }
        Request::InitFromCsv(r) => {
            out.push(1);
            put_str(out, &r.cvd);
            put_str(out, &r.csv);
            put_str(out, &r.schema_text);
            put_opt_model(out, &r.model);
        }
        Request::Checkout(r) => {
            out.push(2);
            put_str(out, &r.cvd);
            put_vids(out, &r.versions);
            put_str(out, &r.table);
        }
        Request::CheckoutCsv(r) => {
            out.push(3);
            put_str(out, &r.cvd);
            put_vids(out, &r.versions);
            put_str(out, &r.path);
        }
        Request::Commit(r) => {
            out.push(4);
            put_str(out, &r.table);
            put_str(out, &r.message);
        }
        Request::CommitCsv(r) => {
            out.push(5);
            put_str(out, &r.path);
            put_str(out, &r.csv);
            put_str(out, &r.message);
            put_opt_str(out, &r.schema_text);
        }
        Request::Diff(r) => {
            out.push(6);
            put_str(out, &r.cvd);
            put_u64(out, r.from.0);
            put_u64(out, r.to.0);
        }
        Request::Run(r) => {
            out.push(7);
            put_str(out, &r.sql);
        }
        Request::Ls => out.push(8),
        Request::Log(r) => {
            out.push(9);
            put_str(out, &r.cvd);
        }
        Request::Drop(r) => {
            out.push(10);
            put_str(out, &r.cvd);
        }
        Request::Optimize(r) => {
            out.push(11);
            put_str(out, &r.cvd);
            match r.gamma {
                None => put_bool(out, false),
                Some(g) => {
                    put_bool(out, true);
                    put_f64(out, g);
                }
            }
            match r.mu {
                None => put_bool(out, false),
                Some(m) => {
                    put_bool(out, true);
                    put_f64(out, m);
                }
            }
            put_u32(out, r.weights.len() as u32);
            for (vid, freq) in &r.weights {
                put_u64(out, vid.0);
                put_u64(out, *freq);
            }
        }
        Request::CreateUser(r) => {
            out.push(12);
            put_str(out, &r.user);
        }
        Request::Login(r) => {
            out.push(13);
            put_str(out, &r.user);
        }
        Request::Whoami => out.push(14),
        Request::Discard(r) => {
            out.push(15);
            put_str(out, &r.table);
        }
    }
}

/// Decode one request from `r`.
pub fn read_request(r: &mut Reader<'_>) -> Result<Request> {
    Ok(match r.u8()? {
        0 => Request::Init(Init {
            cvd: r.str()?,
            schema: read_schema(r)?,
            rows: read_rows(r)?,
            model: read_opt_model(r)?,
        }),
        1 => Request::InitFromCsv(InitFromCsv {
            cvd: r.str()?,
            csv: r.str()?,
            schema_text: r.str()?,
            model: read_opt_model(r)?,
        }),
        2 => Request::Checkout(Checkout {
            cvd: r.str()?,
            versions: read_vids(r)?,
            table: r.str()?,
        }),
        3 => Request::CheckoutCsv(CheckoutCsv {
            cvd: r.str()?,
            versions: read_vids(r)?,
            path: r.str()?,
        }),
        4 => Request::Commit(Commit {
            table: r.str()?,
            message: r.str()?,
        }),
        5 => Request::CommitCsv(CommitCsv {
            path: r.str()?,
            csv: r.str()?,
            message: r.str()?,
            schema_text: read_opt_str(r)?,
        }),
        6 => Request::Diff(Diff {
            cvd: r.str()?,
            from: Vid(r.u64()?),
            to: Vid(r.u64()?),
        }),
        7 => Request::Run(Run { sql: r.str()? }),
        8 => Request::Ls,
        9 => Request::Log(Log { cvd: r.str()? }),
        10 => Request::Drop(DropCvd { cvd: r.str()? }),
        11 => {
            let cvd = r.str()?;
            let gamma = if r.bool()? { Some(r.f64()?) } else { None };
            let mu = if r.bool()? { Some(r.f64()?) } else { None };
            let n = r.count("optimize weight")?;
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                weights.push((Vid(r.u64()?), r.u64()?));
            }
            Request::Optimize(Optimize {
                cvd,
                gamma,
                mu,
                weights,
            })
        }
        12 => Request::CreateUser(CreateUser { user: r.str()? }),
        13 => Request::Login(Login { user: r.str()? }),
        14 => Request::Whoami,
        15 => Request::Discard(Discard { table: r.str()? }),
        t => return Err(bad_tag("request", t)),
    })
}

// -- responses ----------------------------------------------------------------

fn put_query_result(out: &mut Vec<u8>, q: &QueryResult) {
    put_schema(out, &q.schema);
    put_rows(out, &q.rows);
    put_u64(out, q.affected as u64);
}

fn read_query_result(r: &mut Reader<'_>) -> Result<QueryResult> {
    Ok(QueryResult {
        schema: read_schema(r)?,
        rows: read_rows(r)?,
        affected: r.u64()? as usize,
    })
}

/// Append the encoding of `response` to `out`.
pub fn put_response(out: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Initialized { cvd, version } => {
            out.push(0);
            put_str(out, cvd);
            put_u64(out, version.0);
        }
        Response::CheckedOut {
            cvd,
            versions,
            table,
        } => {
            out.push(1);
            put_str(out, cvd);
            put_vids(out, versions);
            put_str(out, table);
        }
        Response::CheckedOutCsv {
            cvd,
            versions,
            path,
            csv,
        } => {
            out.push(2);
            put_str(out, cvd);
            put_vids(out, versions);
            put_str(out, path);
            put_str(out, csv);
        }
        Response::Committed { target, version } => {
            out.push(3);
            put_str(out, target);
            put_u64(out, version.0);
        }
        Response::Diffed {
            cvd,
            from,
            to,
            diff,
        } => {
            out.push(4);
            put_str(out, cvd);
            put_u64(out, from.0);
            put_u64(out, to.0);
            put_rows(out, &diff.only_in_first);
            put_rows(out, &diff.only_in_second);
        }
        Response::Rows(q) => {
            out.push(5);
            put_query_result(out, q);
        }
        Response::CvdList(names) => {
            out.push(6);
            put_u32(out, names.len() as u32);
            for n in names {
                put_str(out, n);
            }
        }
        Response::Log { cvd, entries } => {
            out.push(7);
            put_str(out, cvd);
            put_u32(out, entries.len() as u32);
            for e in entries {
                put_u64(out, e.vid.0);
                put_vids(out, &e.parents);
                put_u64(out, e.commit_t);
                put_u64(out, e.num_records);
                put_str(out, &e.message);
            }
        }
        Response::Dropped { cvd } => {
            out.push(8);
            put_str(out, cvd);
        }
        Response::Optimized { cvd, report } => {
            out.push(9);
            put_str(out, cvd);
            put_u64(out, report.num_partitions as u64);
            put_u64(out, report.storage_records);
            put_f64(out, report.cavg);
            put_f64(out, report.delta);
        }
        Response::UserCreated { user } => {
            out.push(10);
            put_str(out, user);
        }
        Response::LoggedIn { user } => {
            out.push(11);
            put_str(out, user);
        }
        Response::CurrentUser { user } => {
            out.push(12);
            put_str(out, user);
        }
        Response::Discarded { table } => {
            out.push(13);
            put_str(out, table);
        }
    }
}

/// Decode one response from `r`.
pub fn read_response(r: &mut Reader<'_>) -> Result<Response> {
    Ok(match r.u8()? {
        0 => Response::Initialized {
            cvd: r.str()?,
            version: Vid(r.u64()?),
        },
        1 => Response::CheckedOut {
            cvd: r.str()?,
            versions: read_vids(r)?,
            table: r.str()?,
        },
        2 => Response::CheckedOutCsv {
            cvd: r.str()?,
            versions: read_vids(r)?,
            path: r.str()?,
            csv: r.str()?,
        },
        3 => Response::Committed {
            target: r.str()?,
            version: Vid(r.u64()?),
        },
        4 => Response::Diffed {
            cvd: r.str()?,
            from: Vid(r.u64()?),
            to: Vid(r.u64()?),
            diff: VersionDiff {
                only_in_first: read_rows(r)?,
                only_in_second: read_rows(r)?,
            },
        },
        5 => Response::Rows(read_query_result(r)?),
        6 => {
            let n = r.count("CVD name")?;
            let mut names = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(r.str()?);
            }
            Response::CvdList(names)
        }
        7 => {
            let cvd = r.str()?;
            let n = r.count("log entry")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(LogEntry {
                    vid: Vid(r.u64()?),
                    parents: read_vids(r)?,
                    commit_t: r.u64()?,
                    num_records: r.u64()?,
                    message: r.str()?,
                });
            }
            Response::Log { cvd, entries }
        }
        8 => Response::Dropped { cvd: r.str()? },
        9 => Response::Optimized {
            cvd: r.str()?,
            report: OptimizeReport {
                num_partitions: r.u64()? as usize,
                storage_records: r.u64()?,
                cavg: r.f64()?,
                delta: r.f64()?,
            },
        },
        10 => Response::UserCreated { user: r.str()? },
        11 => Response::LoggedIn { user: r.str()? },
        12 => Response::CurrentUser { user: r.str()? },
        13 => Response::Discarded { table: r.str()? },
        t => return Err(bad_tag("response", t)),
    })
}

// -- errors -------------------------------------------------------------------

fn command_tag(kind: CommandKind) -> u8 {
    match kind {
        CommandKind::Init => 0,
        CommandKind::Checkout => 1,
        CommandKind::Commit => 2,
        CommandKind::Diff => 3,
        CommandKind::Run => 4,
        CommandKind::Ls => 5,
        CommandKind::Log => 6,
        CommandKind::Drop => 7,
        CommandKind::Optimize => 8,
        CommandKind::CreateUser => 9,
        CommandKind::Login => 10,
        CommandKind::Whoami => 11,
        CommandKind::Discard => 12,
    }
}

fn read_command(r: &mut Reader<'_>) -> Result<CommandKind> {
    Ok(match r.u8()? {
        0 => CommandKind::Init,
        1 => CommandKind::Checkout,
        2 => CommandKind::Commit,
        3 => CommandKind::Diff,
        4 => CommandKind::Run,
        5 => CommandKind::Ls,
        6 => CommandKind::Log,
        7 => CommandKind::Drop,
        8 => CommandKind::Optimize,
        9 => CommandKind::CreateUser,
        10 => CommandKind::Login,
        11 => CommandKind::Whoami,
        12 => CommandKind::Discard,
        t => return Err(bad_tag("command kind", t)),
    })
}

fn put_engine_error(out: &mut Vec<u8>, e: &EngineError) {
    let (tag, msg): (u8, &str) = match e {
        EngineError::TableNotFound(m) => (0, m),
        EngineError::TableExists(m) => (1, m),
        EngineError::ColumnNotFound(m) => (2, m),
        EngineError::AmbiguousColumn(m) => (3, m),
        EngineError::TypeMismatch(m) => (4, m),
        EngineError::UniqueViolation(m) => (5, m),
        EngineError::Parse(m) => (6, m),
        EngineError::Plan(m) => (7, m),
        EngineError::Arity(m) => (8, m),
        EngineError::Eval(m) => (9, m),
        EngineError::IndexNotFound(m) => (10, m),
        EngineError::Storage(m) => (11, m),
        EngineError::Invalid(m) => (12, m),
    };
    out.push(tag);
    put_str(out, msg);
}

fn read_engine_error(r: &mut Reader<'_>) -> Result<EngineError> {
    let tag = r.u8()?;
    let msg = r.str()?;
    Ok(match tag {
        0 => EngineError::TableNotFound(msg),
        1 => EngineError::TableExists(msg),
        2 => EngineError::ColumnNotFound(msg),
        3 => EngineError::AmbiguousColumn(msg),
        4 => EngineError::TypeMismatch(msg),
        5 => EngineError::UniqueViolation(msg),
        6 => EngineError::Parse(msg),
        7 => EngineError::Plan(msg),
        8 => EngineError::Arity(msg),
        9 => EngineError::Eval(msg),
        10 => EngineError::IndexNotFound(msg),
        11 => EngineError::Storage(msg),
        12 => EngineError::Invalid(msg),
        t => return Err(bad_tag("engine error", t)),
    })
}

/// Append the encoding of `error` to `out`.
pub fn put_error(out: &mut Vec<u8>, error: &CoreError) {
    match error {
        CoreError::Engine(e) => {
            out.push(0);
            put_engine_error(out, e);
        }
        CoreError::CvdNotFound(m) => {
            out.push(1);
            put_str(out, m);
        }
        CoreError::CvdExists(m) => {
            out.push(2);
            put_str(out, m);
        }
        CoreError::VersionNotFound { cvd, version } => {
            out.push(3);
            put_str(out, cvd);
            put_u64(out, version.0);
        }
        CoreError::NotStaged(m) => {
            out.push(4);
            put_str(out, m);
        }
        CoreError::PrimaryKeyViolation(m) => {
            out.push(5);
            put_str(out, m);
        }
        CoreError::SchemaMismatch(m) => {
            out.push(6);
            put_str(out, m);
        }
        CoreError::PermissionDenied(m) => {
            out.push(7);
            put_str(out, m);
        }
        CoreError::Parse { command, message } => {
            out.push(8);
            match command {
                None => put_bool(out, false),
                Some(c) => {
                    put_bool(out, true);
                    out.push(command_tag(*c));
                }
            }
            put_str(out, message);
        }
        CoreError::UnknownCommand(m) => {
            out.push(9);
            put_str(out, m);
        }
        CoreError::BadRequest { command, reason } => {
            out.push(10);
            out.push(command_tag(*command));
            put_str(out, reason);
        }
        CoreError::Io(m) => {
            out.push(11);
            put_str(out, m);
        }
        CoreError::Csv(m) => {
            out.push(12);
            put_str(out, m);
        }
        CoreError::Storage(m) => {
            out.push(13);
            put_str(out, m);
        }
        CoreError::CrossCvd(cvds) => {
            out.push(14);
            put_u32(out, cvds.len() as u32);
            for c in cvds {
                put_str(out, c);
            }
        }
        CoreError::WorkerPanicked { shard } => {
            out.push(15);
            put_str(out, shard);
        }
        CoreError::Invalid(m) => {
            out.push(16);
            put_str(out, m);
        }
        CoreError::Network(m) => {
            out.push(17);
            put_str(out, m);
        }
        CoreError::Protocol(m) => {
            out.push(18);
            put_str(out, m);
        }
        CoreError::DeadlineExceeded { elapsed_ms } => {
            out.push(19);
            put_u64(out, *elapsed_ms);
        }
        CoreError::Overloaded { retry_after_ms } => {
            out.push(20);
            put_u64(out, *retry_after_ms);
        }
        CoreError::Degraded(m) => {
            out.push(21);
            put_str(out, m);
        }
        CoreError::ResponseTimeout { waited_ms, state } => {
            out.push(22);
            put_u64(out, *waited_ms);
            put_str(out, state);
        }
    }
}

/// Decode one error from `r`.
pub fn read_error(r: &mut Reader<'_>) -> Result<CoreError> {
    Ok(match r.u8()? {
        0 => CoreError::Engine(read_engine_error(r)?),
        1 => CoreError::CvdNotFound(r.str()?),
        2 => CoreError::CvdExists(r.str()?),
        3 => CoreError::VersionNotFound {
            cvd: r.str()?,
            version: Vid(r.u64()?),
        },
        4 => CoreError::NotStaged(r.str()?),
        5 => CoreError::PrimaryKeyViolation(r.str()?),
        6 => CoreError::SchemaMismatch(r.str()?),
        7 => CoreError::PermissionDenied(r.str()?),
        8 => {
            let command = if r.bool()? {
                Some(read_command(r)?)
            } else {
                None
            };
            CoreError::Parse {
                command,
                message: r.str()?,
            }
        }
        9 => CoreError::UnknownCommand(r.str()?),
        10 => CoreError::BadRequest {
            command: read_command(r)?,
            reason: r.str()?,
        },
        11 => CoreError::Io(r.str()?),
        12 => CoreError::Csv(r.str()?),
        13 => CoreError::Storage(r.str()?),
        14 => {
            let n = r.count("CVD name")?;
            let mut cvds = Vec::with_capacity(n);
            for _ in 0..n {
                cvds.push(r.str()?);
            }
            CoreError::CrossCvd(cvds)
        }
        15 => CoreError::WorkerPanicked { shard: r.str()? },
        16 => CoreError::Invalid(r.str()?),
        17 => CoreError::Network(r.str()?),
        18 => CoreError::Protocol(r.str()?),
        19 => CoreError::DeadlineExceeded {
            elapsed_ms: r.u64()?,
        },
        20 => CoreError::Overloaded {
            retry_after_ms: r.u64()?,
        },
        21 => CoreError::Degraded(r.str()?),
        22 => CoreError::ResponseTimeout {
            waited_ms: r.u64()?,
            state: r.str()?,
        },
        t => return Err(bad_tag("error", t)),
    })
}

/// Append the encoding of a per-request outcome to `out`.
pub fn put_outcome(out: &mut Vec<u8>, outcome: &Result<Response>) {
    match outcome {
        Ok(response) => {
            put_bool(out, true);
            put_response(out, response);
        }
        Err(error) => {
            put_bool(out, false);
            put_error(out, error);
        }
    }
}

/// Decode one per-request outcome from `r`.
pub fn read_outcome(r: &mut Reader<'_>) -> Result<Result<Response>> {
    if r.bool()? {
        Ok(Ok(read_response(r)?))
    } else {
        Ok(Err(read_error(r)?))
    }
}
