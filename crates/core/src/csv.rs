//! Minimal CSV support for `checkout -f` / `commit -f` (Section 2.2):
//! export a version to a CSV file for editing in Python/R, and read it
//! back with an explicit schema file (`-s`) describing the column types.
//!
//! Format: RFC-4180-style quoting (fields containing commas, quotes, or
//! newlines are wrapped in `"` with `""` escapes); the first row is the
//! header. The hidden `rid` column round-trips so commit can diff against
//! parents; an empty `rid` field marks a newly inserted row.

use orpheus_engine::{Column, DataType, Schema, Value};

use crate::error::{CoreError, Result};

/// Serialize rows (with header) to CSV text.
pub fn to_csv(schema: &Schema, rows: &[Vec<Value>]) -> String {
    let mut out = String::new();
    let header: Vec<String> = schema.columns.iter().map(|c| escape(&c.name)).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let fields: Vec<String> = row.iter().map(value_to_field).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn value_to_field(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Text(s) => escape(s),
        other => escape(&other.to_string()),
    }
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse CSV text into (header, string rows).
pub fn parse_csv(text: &str) -> Result<(Vec<String>, Vec<Vec<String>>)> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CoreError::Csv("unterminated quoted field".into()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        rows.push(record);
    }
    if rows.is_empty() {
        return Err(CoreError::Csv("empty csv".into()));
    }
    let header = rows.remove(0);
    for (i, r) in rows.iter().enumerate() {
        if r.len() != header.len() {
            return Err(CoreError::Csv(format!(
                "row {} has {} fields, header has {}",
                i + 2,
                r.len(),
                header.len()
            )));
        }
    }
    Ok((header, rows))
}

/// Convert parsed string rows to typed values under a schema. Empty fields
/// become NULL.
pub fn typed_rows(
    schema: &Schema,
    header: &[String],
    rows: &[Vec<String>],
) -> Result<Vec<Vec<Value>>> {
    // Map schema columns to csv columns by name.
    let mut mapping = Vec::with_capacity(schema.arity());
    for col in &schema.columns {
        let idx = header
            .iter()
            .position(|h| h.eq_ignore_ascii_case(&col.name))
            .ok_or_else(|| {
                CoreError::SchemaMismatch(format!("csv is missing column {}", col.name))
            })?;
        mapping.push(idx);
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut values = Vec::with_capacity(schema.arity());
        for (ci, col) in schema.columns.iter().enumerate() {
            let field = &row[mapping[ci]];
            values.push(parse_field(field, col.dtype)?);
        }
        out.push(values);
    }
    Ok(out)
}

fn parse_field(field: &str, dtype: DataType) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match dtype {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| CoreError::Csv(format!("invalid INT: {field}"))),
        DataType::Double => field
            .parse::<f64>()
            .map(Value::Double)
            .map_err(|_| CoreError::Csv(format!("invalid DOUBLE: {field}"))),
        DataType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(CoreError::Csv(format!("invalid BOOL: {field}"))),
        },
        DataType::Text => Ok(Value::Text(field.to_string())),
        DataType::IntArray => {
            let trimmed = field.trim_start_matches('{').trim_end_matches('}');
            if trimmed.is_empty() {
                return Ok(Value::IntArray(vec![]));
            }
            let parts: std::result::Result<Vec<i64>, _> = trimmed
                .split(',')
                .map(|p| p.trim().parse::<i64>())
                .collect();
            parts
                .map(Value::IntArray)
                .map_err(|_| CoreError::Csv(format!("invalid INT[]: {field}")))
        }
    }
}

/// Parse a schema file: one `name:type` per line (or comma-separated), with
/// an optional `!pk` suffix marking primary-key columns, e.g.
/// `protein1:text!pk`.
pub fn parse_schema_file(text: &str) -> Result<Schema> {
    let mut cols = Vec::new();
    let mut pk: Vec<String> = Vec::new();
    for raw in text.split(['\n', ',']) {
        let spec = raw.trim();
        if spec.is_empty() || spec.starts_with('#') {
            continue;
        }
        let (name_part, ty_part) = spec
            .split_once(':')
            .ok_or_else(|| CoreError::Csv(format!("bad schema entry: {spec}")))?;
        let (ty_name, is_pk) = match ty_part.strip_suffix("!pk") {
            Some(t) => (t.trim(), true),
            None => (ty_part.trim(), false),
        };
        let dtype = DataType::parse(ty_name)
            .map_err(|e| CoreError::Csv(format!("bad schema type: {e}")))?;
        let name = name_part.trim().to_string();
        if is_pk {
            pk.push(name.clone());
        }
        cols.push(Column::new(name, dtype));
    }
    if cols.is_empty() {
        return Err(CoreError::Csv("schema file has no columns".into()));
    }
    let schema = Schema::new(cols);
    if pk.is_empty() {
        Ok(schema)
    } else {
        let names: Vec<&str> = pk.iter().map(|s| s.as_str()).collect();
        schema.with_primary_key(&names).map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("rid", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Double),
        ])
    }

    #[test]
    fn roundtrip_with_quoting() {
        let rows = vec![
            vec![
                Value::Int(1),
                Value::Text("plain".into()),
                Value::Double(1.5),
            ],
            vec![
                Value::Int(2),
                Value::Text("has, comma and \"quotes\"".into()),
                Value::Null,
            ],
        ];
        let text = to_csv(&schema(), &rows);
        let (header, parsed) = parse_csv(&text).unwrap();
        assert_eq!(header, vec!["rid", "name", "score"]);
        let typed = typed_rows(&schema(), &header, &parsed).unwrap();
        assert_eq!(typed, rows);
    }

    #[test]
    fn empty_field_is_null_and_new_rows_have_no_rid() {
        let text = "rid,name,score\n,newrow,2.0\n";
        let (h, rows) = parse_csv(text).unwrap();
        let typed = typed_rows(&schema(), &h, &rows).unwrap();
        assert_eq!(typed[0][0], Value::Null);
        assert_eq!(typed[0][1], Value::Text("newrow".into()));
    }

    #[test]
    fn header_reordering_is_tolerated() {
        let text = "score,rid,name\n3.5,7,x\n";
        let (h, rows) = parse_csv(text).unwrap();
        let typed = typed_rows(&schema(), &h, &rows).unwrap();
        assert_eq!(
            typed[0],
            vec![Value::Int(7), Value::Text("x".into()), Value::Double(3.5)]
        );
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b\n\"unterminated").is_err());
        assert!(parse_csv("a,b\n1\n").is_err()); // ragged row
        let (h, rows) = parse_csv("rid,name,score\nx,y,z\n").unwrap();
        assert!(typed_rows(&schema(), &h, &rows).is_err()); // bad int
        let text = "other,cols\n1,2\n";
        let (h, rows) = parse_csv(text).unwrap();
        assert!(matches!(
            typed_rows(&schema(), &h, &rows),
            Err(CoreError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn schema_file_parsing() {
        let s = parse_schema_file("protein1:text!pk\nprotein2:text!pk\nscore:int\n").unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.primary_key, vec![0, 1]);
        assert!(parse_schema_file("").is_err());
        assert!(parse_schema_file("name").is_err());
        assert!(parse_schema_file("name:blob").is_err());
        let s = parse_schema_file("a:int, b:double").unwrap();
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn int_array_fields() {
        let s = Schema::new(vec![Column::new("arr", DataType::IntArray)]);
        let (h, rows) = parse_csv("arr\n\"{1, 2, 3}\"\n{}\n").unwrap();
        let typed = typed_rows(&s, &h, &rows).unwrap();
        assert_eq!(typed[0][0], Value::IntArray(vec![1, 2, 3]));
        assert_eq!(typed[1][0], Value::IntArray(vec![]));
    }
}
