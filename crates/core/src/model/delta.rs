//! Delta-based model (Section 3.1, Approach 4): each version stores only
//! its modifications relative to a *base* parent, as a per-version table
//! with a `tombstone` flag for deletions, plus a precedent metadata table
//! `(vid PK, base)`.
//!
//! Checkout replays the lineage from the version back to the root,
//! discarding records already seen (deleted-or-superseded semantics).
//! Advanced cross-version queries cannot be rewritten against this model
//! without reconstructing versions — the qualitative drawback the paper
//! weighs against its storage economy.

use std::collections::HashSet;

use orpheus_engine::{Column, DataType, Database, Schema, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{self, insert_rows_bulk, insert_rows_sql, CommitData};

/// Schema of a delta table: rid PK ++ attrs ++ tombstone flag.
pub fn delta_schema(cvd: &Cvd) -> Schema {
    let mut cols = vec![Column::new("rid", DataType::Int).not_null()];
    cols.extend(cvd.schema.columns.iter().cloned());
    cols.push(Column::new("tombstone", DataType::Bool).not_null());
    let mut s = Schema::new(cols);
    s.primary_key = vec![0];
    s
}

pub fn init(db: &mut Database, cvd: &Cvd) -> Result<()> {
    db.execute(&format!(
        "CREATE TABLE {} (vid INT PRIMARY KEY, base INT)",
        cvd.precedent_table()
    ))?;
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    let table = cvd.delta_table(data.vid);
    db.create_table(&table, delta_schema(cvd))?;
    let attr_count = cvd.schema.arity();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    // The delta stores every record not present in the base parent — for a
    // merge that includes records inherited from the *other* parent, since
    // reconstruction only walks the base lineage.
    let base_set: std::collections::HashSet<i64> = match data.base {
        Some(b) => cvd.rids_of(b)?.iter().copied().collect(),
        None => std::collections::HashSet::new(),
    };
    for (rid, values) in &data.all_records {
        if base_set.contains(rid) {
            continue;
        }
        let mut row = Vec::with_capacity(attr_count + 2);
        row.push(Value::Int(*rid));
        row.extend(values.iter().cloned());
        row.push(Value::Bool(false));
        rows.push(row);
    }
    for rid in &data.deleted_from_base {
        let mut row = Vec::with_capacity(attr_count + 2);
        row.push(Value::Int(*rid));
        row.resize(attr_count + 1, Value::Null);
        row.push(Value::Bool(true));
        rows.push(row);
    }
    if !rows.is_empty() {
        if bulk {
            insert_rows_bulk(db, &table, rows)?;
        } else {
            insert_rows_sql(db, &table, &rows)?;
        }
    }
    let base_sql = data
        .base
        .map(|b| b.0.to_string())
        .unwrap_or_else(|| "NULL".to_string());
    db.execute(&format!(
        "INSERT INTO {} VALUES ({}, {})",
        cvd.precedent_table(),
        data.vid.0,
        base_sql
    ))?;
    Ok(())
}

/// Reconstruct a version by tracing the `base` lineage back to the root
/// (Section 3.1: "if an incoming record has occurred before, it is
/// discarded; otherwise, if it is marked as insert, insert it").
pub fn reconstruct(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let mut chain = Vec::new();
    let mut cur = Some(vid);
    while let Some(v) = cur {
        chain.push(v);
        cur = cvd.meta(v)?.base;
    }
    let mut seen: HashSet<i64> = HashSet::new();
    let mut out: Vec<(i64, Vec<Value>)> = Vec::new();
    for v in chain {
        let r = db.query(&format!("SELECT * FROM {}", cvd.delta_table(v)))?;
        for mut row in r.rows {
            let tombstone = row.pop().expect("tombstone column").as_bool()?;
            let values = row.split_off(1);
            let rid = row.pop().expect("rid column").as_int()?;
            if seen.insert(rid) && !tombstone {
                out.push((rid, values));
            }
        }
    }
    out.sort_by_key(|(rid, _)| *rid);
    Ok(out)
}

/// Fast lineage replay: the same base-chain walk as [`reconstruct`], but
/// reading delta-table heaps directly through the table API — no SQL
/// parse/plan per chain link. `None` (fallback to [`reconstruct`]) when a
/// chain table is missing or has drifted from the delta layout.
pub fn version_row_refs<'a>(db: &'a Database, cvd: &Cvd, vid: Vid) -> Option<model::RowRefs<'a>> {
    let mut chain = Vec::new();
    let mut cur = Some(vid);
    while let Some(v) = cur {
        chain.push(v);
        cur = cvd.meta(v).ok()?.base;
    }
    let mut seen: HashSet<i64> = HashSet::new();
    let mut out: model::RowRefs<'a> = Vec::new();
    for v in chain {
        let t = db.table(&cvd.delta_table(v)).ok()?;
        let width = model::attr_prefix_len(&t.schema, cvd, 1)?;
        for row in t.rows() {
            let Value::Int(rid) = row[0] else { return None };
            let Value::Bool(tombstone) = row[width + 1] else {
                return None;
            };
            if seen.insert(rid) && !tombstone {
                out.push((rid, &row[1..1 + width]));
            }
        }
    }
    out.sort_by_key(|(rid, _)| *rid);
    Some(out)
}

pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    let records: Vec<(i64, Vec<Value>)> = match version_row_refs(db, cvd, vid) {
        Some(refs) => refs
            .into_iter()
            .map(|(rid, values)| (rid, values.to_vec()))
            .collect(),
        None => reconstruct(db, cvd, vid)?,
    };
    materialize(db, cvd, records, target)
}

/// The SQL-layer checkout formulation: lineage replay through per-table
/// `SELECT *` statements (the delta model has no single Table 1
/// statement), materialized like [`checkout`].
pub fn checkout_sql_replay(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    let records = reconstruct(db, cvd, vid)?;
    materialize(db, cvd, records, target)
}

fn materialize(
    db: &mut Database,
    cvd: &Cvd,
    records: Vec<(i64, Vec<Value>)>,
    target: &str,
) -> Result<()> {
    db.create_table(target, cvd.staged_schema())?;
    let width = cvd.schema.arity() + 1;
    let rows: Vec<Vec<Value>> = records
        .into_iter()
        .map(|(rid, values)| {
            let mut row = Vec::with_capacity(width);
            row.push(Value::Int(rid));
            row.extend(values);
            // Records replayed from tables frozen before a schema
            // evolution are narrower; the staged table carries NULL for
            // the attributes they predate.
            row.resize(width, Value::Null);
            row
        })
        .collect();
    insert_rows_bulk(db, target, rows)?;
    Ok(())
}

/// The replay read via the SQL layer ([`reconstruct`]) — the spec path.
pub fn version_rows_sql(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    reconstruct(db, cvd, vid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::{storage_bytes, ModelKind};

    #[test]
    fn unchanged_commit_is_nearly_free() {
        let (mut db, mut cvd) = make_cvd(ModelKind::DeltaBased);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        let s1 = storage_bytes(&db, &cvd);
        // Identical content: delta table is empty.
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        let s2 = storage_bytes(&db, &cvd);
        assert!(s2 - s1 < 64, "empty delta should cost almost nothing");
        assert_eq!(model::version_rows(&mut db, &cvd, Vid(2)).unwrap().len(), 2);
    }

    #[test]
    fn deletions_become_tombstones() {
        let (mut db, mut cvd) = make_cvd(ModelKind::DeltaBased);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[Vid(1)]);
        // The delta table of v2 holds one tombstone.
        let r = db
            .query(&format!(
                "SELECT count(*) FROM {} WHERE tombstone = TRUE",
                cvd.delta_table(Vid(2))
            ))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
        let rows = model::version_rows(&mut db, &cvd, Vid(2)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[0], Value::Text("a".into()));
    }

    #[test]
    fn lineage_replay_across_three_versions() {
        let (mut db, mut cvd) = make_cvd(ModelKind::DeltaBased);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 7), record("b", 2), record("c", 3)],
            &[Vid(2)],
        );
        let rows = model::version_rows(&mut db, &cvd, Vid(3)).unwrap();
        assert_eq!(rows.len(), 3);
        // "a" was modified: its reconstructed score is the new one.
        let a = rows
            .iter()
            .find(|(_, v)| v[0] == Value::Text("a".into()))
            .unwrap();
        assert_eq!(a.1[1], Value::Int(7));

        checkout(&mut db, &cvd, Vid(3), "t3").unwrap();
        let r = db.query("SELECT count(*) FROM t3").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn precedent_table_records_bases() {
        let (mut db, mut cvd) = make_cvd(ModelKind::DeltaBased);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        let r = db
            .query(&format!(
                "SELECT base FROM {} WHERE vid = 2",
                cvd.precedent_table()
            ))
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(1));
        let r = db
            .query(&format!(
                "SELECT base FROM {} WHERE vid = 1",
                cvd.precedent_table()
            ))
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }
}
