//! The five data models for representing CVDs inside the relational engine
//! (Section 3.1, Figure 1), behind a single dispatch interface.
//!
//! | model               | storage                         | commit            | checkout          |
//! |---------------------|---------------------------------|-------------------|-------------------|
//! | a-table-per-version | one table per version (~10×)    | copy all records  | copy one table    |
//! | combined-table      | one table, `vlist` per record   | array append scan | containment scan  |
//! | split-by-vlist      | data + (rid → vlist)            | array append scan | containment + join|
//! | split-by-rlist      | data + (vid → rlist) (default)  | one insert        | index + join      |
//! | delta-based         | per-version delta tables        | delta insert      | lineage replay    |
//!
//! All commit/checkout operations go through SQL statements executed by the
//! engine — the "bolt-on" property. Dataset loading additionally has a bulk
//! path (`bulk = true`) that writes through the engine's table API directly;
//! benchmarks use it for setup but never for the timed operations.

pub mod combined;
pub mod delta;
pub mod split_rlist;
pub mod split_vlist;
pub mod table_per_version;

use orpheus_engine::{Database, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;

/// Which data model a CVD uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    TablePerVersion,
    CombinedTable,
    SplitByVlist,
    /// The paper's recommendation (Section 3.2) and our default.
    #[default]
    SplitByRlist,
    DeltaBased,
}

impl ModelKind {
    pub const ALL: [ModelKind; 5] = [
        ModelKind::TablePerVersion,
        ModelKind::CombinedTable,
        ModelKind::SplitByVlist,
        ModelKind::SplitByRlist,
        ModelKind::DeltaBased,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::TablePerVersion => "a-table-per-version",
            ModelKind::CombinedTable => "combined-table",
            ModelKind::SplitByVlist => "split-by-vlist",
            ModelKind::SplitByRlist => "split-by-rlist",
            ModelKind::DeltaBased => "delta-based",
        }
    }

    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "a-table-per-version" | "table-per-version" | "tpv" => Some(ModelKind::TablePerVersion),
            "combined-table" | "combined" => Some(ModelKind::CombinedTable),
            "split-by-vlist" | "vlist" => Some(ModelKind::SplitByVlist),
            "split-by-rlist" | "rlist" => Some(ModelKind::SplitByRlist),
            "delta-based" | "delta" => Some(ModelKind::DeltaBased),
            _ => None,
        }
    }
}

/// Everything a model needs to persist one committed version.
#[derive(Debug, Clone)]
pub struct CommitData {
    pub vid: Vid,
    /// All rids of the new version, sorted.
    pub rlist: Vec<i64>,
    /// Rids inherited unchanged from parent versions.
    pub kept: Vec<i64>,
    /// Freshly created records: (rid, data attribute values).
    pub new_records: Vec<(i64, Vec<Value>)>,
    /// Full contents of the new version (needed by a-table-per-version).
    pub all_records: Vec<(i64, Vec<Value>)>,
    /// The parent this version's delta is based on (delta model); the
    /// parent sharing the largest number of records.
    pub base: Option<Vid>,
    /// Rids present in `base` but absent here (delta tombstones).
    pub deleted_from_base: Vec<i64>,
}

// -- dispatch ----------------------------------------------------------------

/// Create the model's backing tables for a fresh CVD.
pub fn init_storage(db: &mut Database, cvd: &Cvd) -> Result<()> {
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::init(db, cvd),
        ModelKind::CombinedTable => combined::init(db, cvd),
        ModelKind::SplitByVlist => split_vlist::init(db, cvd),
        ModelKind::SplitByRlist => split_rlist::init(db, cvd),
        ModelKind::DeltaBased => delta::init(db, cvd),
    }
}

/// Persist a committed version. With `bulk = true`, record insertion goes
/// through the engine's table API instead of SQL (used for dataset loading
/// only — the Table 1 statements remain the production path).
pub fn persist_commit(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::persist(db, cvd, data, bulk),
        ModelKind::CombinedTable => combined::persist(db, cvd, data, bulk),
        ModelKind::SplitByVlist => split_vlist::persist(db, cvd, data, bulk),
        ModelKind::SplitByRlist => split_rlist::persist(db, cvd, data, bulk),
        ModelKind::DeltaBased => delta::persist(db, cvd, data, bulk),
    }
}

/// Materialize a single version into `target` (the checkout of Table 1).
pub fn checkout_into(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    cvd.check_version(vid)?;
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::checkout(db, cvd, vid, target),
        ModelKind::CombinedTable => combined::checkout(db, cvd, vid, target),
        ModelKind::SplitByVlist => split_vlist::checkout(db, cvd, vid, target),
        ModelKind::SplitByRlist => split_rlist::checkout(db, cvd, vid, target),
        ModelKind::DeltaBased => delta::checkout(db, cvd, vid, target),
    }
}

/// The records of a version as (rid, data values) pairs, via the model's
/// native read path.
pub fn version_rows(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    cvd.check_version(vid)?;
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::version_rows(db, cvd, vid),
        ModelKind::CombinedTable => combined::version_rows(db, cvd, vid),
        ModelKind::SplitByVlist => split_vlist::version_rows(db, cvd, vid),
        ModelKind::SplitByRlist => split_rlist::version_rows(db, cvd, vid),
        ModelKind::DeltaBased => delta::version_rows(db, cvd, vid),
    }
}

/// Total backing storage (heap + indexes) in bytes.
pub fn storage_bytes(db: &Database, cvd: &Cvd) -> u64 {
    let tables = backing_tables(cvd);
    tables
        .iter()
        .filter_map(|t| db.table(t).ok())
        .map(|t| t.storage_bytes() as u64)
        .sum()
}

/// Names of the model's backing tables (existing ones only are counted by
/// [`storage_bytes`]).
pub fn backing_tables(cvd: &Cvd) -> Vec<String> {
    match cvd.model {
        ModelKind::TablePerVersion => (1..=cvd.num_versions() as u64)
            .map(|v| cvd.version_table(Vid(v)))
            .collect(),
        ModelKind::CombinedTable => vec![cvd.combined_table()],
        ModelKind::SplitByVlist => vec![cvd.data_table(), cvd.vlist_table()],
        ModelKind::SplitByRlist => vec![cvd.data_table(), cvd.rlist_table()],
        ModelKind::DeltaBased => {
            let mut v: Vec<String> = (1..=cvd.num_versions() as u64)
                .map(|v| cvd.delta_table(Vid(v)))
                .collect();
            v.push(cvd.precedent_table());
            v
        }
    }
}

/// Drop all backing tables (used by `drop <cvd>`).
pub fn drop_storage(db: &mut Database, cvd: &Cvd) {
    for t in backing_tables(cvd) {
        let _ = db.drop_table(&t);
    }
}

// -- SQL helpers shared by the model implementations --------------------------

/// Render a value as a SQL literal.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            if d.fract() == 0.0 {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::IntArray(a) => format!(
            "ARRAY[{}]",
            a.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Render a comma-separated int list (for `IN (...)` and `ARRAY[...]`).
pub fn int_list(ids: &[i64]) -> String {
    let mut s = String::with_capacity(ids.len() * 8);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&id.to_string());
    }
    s
}

/// Insert rows through SQL in chunks (multi-row `INSERT INTO .. VALUES`).
pub fn insert_rows_sql(db: &mut Database, table: &str, rows: &[Vec<Value>]) -> Result<()> {
    const CHUNK: usize = 500;
    for chunk in rows.chunks(CHUNK) {
        let mut sql = format!("INSERT INTO {table} VALUES ");
        for (i, row) in chunk.iter().enumerate() {
            if i > 0 {
                sql.push_str(", ");
            }
            sql.push('(');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    sql.push_str(", ");
                }
                sql.push_str(&sql_literal(v));
            }
            sql.push(')');
        }
        db.execute(&sql)?;
    }
    Ok(())
}

/// Bulk-insert rows via the table API (load fast-path).
pub fn insert_rows_bulk(db: &mut Database, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
    let t = db.table_mut(table)?;
    t.insert_many(rows)?;
    Ok(())
}

/// Column-name list of a CVD's data attributes, prefixed with `rid`.
pub fn rid_and_attrs(cvd: &Cvd) -> String {
    let mut cols = vec!["rid".to_string()];
    cols.extend(cvd.schema.columns.iter().map(|c| c.name.clone()));
    cols.join(", ")
}

/// Append `vid` to the `vlist` of each row of `table` whose rid is in
/// `kept` — the expensive array-append commit of the combined-table and
/// split-by-vlist models (Table 1). SQL path issues the paper's UPDATE;
/// bulk path mutates rows directly.
pub fn append_vid_to_vlist(
    db: &mut Database,
    table: &str,
    vid: Vid,
    kept: &[i64],
    bulk: bool,
) -> Result<()> {
    if kept.is_empty() {
        return Ok(());
    }
    if !bulk {
        db.execute(&format!(
            "UPDATE {table} SET vlist = vlist + {} WHERE rid IN ({})",
            vid.0,
            int_list(kept)
        ))?;
        return Ok(());
    }
    let kept_set: std::collections::HashSet<i64> = kept.iter().copied().collect();
    let t = db.table_mut(table)?;
    let rid_col = t.schema.column_index("rid")?;
    let vlist_col = t.schema.column_index("vlist")?;
    let mut updates = Vec::new();
    for (slot, row) in t.rows().iter().enumerate() {
        if let Value::Int(r) = row[rid_col] {
            if kept_set.contains(&r) {
                let mut new_row = row.clone();
                if let Value::IntArray(arr) = &mut new_row[vlist_col] {
                    arr.push(vid.0 as i64);
                }
                updates.push((slot, new_row));
            }
        }
    }
    for (slot, row) in updates {
        t.replace_row(slot, row)?;
    }
    Ok(())
}

/// Shared fixtures for the per-model unit tests: a tiny CVD with schema
/// `(name TEXT PRIMARY KEY, score INT)` and a value-diffing commit helper
/// that exercises the real persistence paths.
#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::HashMap;

    use orpheus_engine::{Column, DataType, Database, Schema, Value};

    use crate::cvd::{Cvd, VersionMeta};
    use crate::ids::Vid;
    use crate::model::{self, CommitData, ModelKind};

    pub fn record(name: &str, score: i64) -> Vec<Value> {
        vec![Value::Text(name.to_string()), Value::Int(score)]
    }

    pub fn make_cvd(model: ModelKind) -> (Database, Cvd) {
        let schema = Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Int),
        ])
        .with_primary_key(&["name"])
        .unwrap();
        let mut db = Database::new();
        let cvd = Cvd::new("t", schema, model);
        model::init_storage(&mut db, &cvd).unwrap();
        (db, cvd)
    }

    /// Commit `rows` as a new version: rows matching a parent record by
    /// value keep that record's rid; everything else gets a fresh rid.
    pub fn commit(db: &mut Database, cvd: &mut Cvd, rows: &[Vec<Value>], parents: &[Vid]) -> Vid {
        let vid = Vid(cvd.num_versions() as u64 + 1);
        // Parent record map: values → rid (first parent wins).
        let mut val2rid: HashMap<Vec<Value>, i64> = HashMap::new();
        for p in parents {
            for (rid, values) in model::version_rows(db, cvd, *p).unwrap() {
                val2rid.entry(values).or_insert(rid);
            }
        }
        let mut kept = Vec::new();
        let mut new_records = Vec::new();
        let mut all_records = Vec::new();
        let mut fresh = cvd.alloc_rids(rows.len()).into_iter();
        for row in rows {
            match val2rid.get(row) {
                Some(&rid) => {
                    kept.push(rid);
                    all_records.push((rid, row.clone()));
                }
                None => {
                    let rid = fresh.next().unwrap();
                    new_records.push((rid, row.clone()));
                    all_records.push((rid, row.clone()));
                }
            }
        }
        let mut rlist: Vec<i64> = all_records.iter().map(|(r, _)| *r).collect();
        rlist.sort_unstable();
        // Base parent: the one sharing the most records.
        let base = parents
            .iter()
            .copied()
            .max_by_key(|p| cvd.shared_with(&rlist, *p))
            .or(None);
        let deleted_from_base = match base {
            Some(b) => {
                let have: std::collections::HashSet<i64> = rlist.iter().copied().collect();
                cvd.rids_of(b)
                    .unwrap()
                    .iter()
                    .copied()
                    .filter(|r| !have.contains(r))
                    .collect()
            }
            None => Vec::new(),
        };
        let data = CommitData {
            vid,
            rlist: rlist.clone(),
            kept,
            new_records,
            all_records,
            base,
            deleted_from_base,
        };
        model::persist_commit(db, cvd, &data, false).unwrap();
        let parent_weights: Vec<u64> = parents
            .iter()
            .map(|p| cvd.shared_with(&rlist, *p))
            .collect();
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid,
            parents: parents.to_vec(),
            parent_weights,
            checkout_t: None,
            commit_t: vid.0,
            message: format!("commit {vid}"),
            attributes,
            num_records: rlist.len() as u64,
            base,
        });
        cvd.version_rids.push(rlist);
        vid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_roundtrip() {
        for m in ModelKind::ALL {
            assert_eq!(ModelKind::parse(m.name()), Some(m));
        }
        assert_eq!(ModelKind::parse("rlist"), Some(ModelKind::SplitByRlist));
        assert_eq!(ModelKind::parse("bogus"), None);
        assert_eq!(ModelKind::default(), ModelKind::SplitByRlist);
    }

    #[test]
    fn sql_literals() {
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Int(-5)), "-5");
        assert_eq!(sql_literal(&Value::Double(2.5)), "2.5");
        assert_eq!(sql_literal(&Value::Double(2.0)), "2.0");
        assert_eq!(sql_literal(&Value::Text("it's".into())), "'it''s'");
        assert_eq!(sql_literal(&Value::IntArray(vec![1, 2])), "ARRAY[1, 2]");
        assert_eq!(sql_literal(&Value::Bool(true)), "TRUE");
    }

    #[test]
    fn int_list_rendering() {
        assert_eq!(int_list(&[]), "");
        assert_eq!(int_list(&[1]), "1");
        assert_eq!(int_list(&[1, 2, 3]), "1, 2, 3");
    }

    #[test]
    fn chunked_sql_insert() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let rows: Vec<Vec<Value>> = (0..1203)
            .map(|i| vec![Value::Int(i), Value::Text(format!("s{i}"))])
            .collect();
        insert_rows_sql(&mut db, "t", &rows).unwrap();
        let r = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1203)));
    }
}
