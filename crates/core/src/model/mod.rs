//! The five data models for representing CVDs inside the relational engine
//! (Section 3.1, Figure 1), behind a single dispatch interface.
//!
//! | model               | storage                         | commit            | checkout          |
//! |---------------------|---------------------------------|-------------------|-------------------|
//! | a-table-per-version | one table per version (~10×)    | copy all records  | copy one table    |
//! | combined-table      | one table, `vlist` per record   | array append scan | containment scan  |
//! | split-by-vlist      | data + (rid → vlist)            | array append scan | containment + join|
//! | split-by-rlist      | data + (vid → rlist) (default)  | one insert        | index + join      |
//! | delta-based         | per-version delta tables        | delta insert      | lineage replay    |
//!
//! All commit/checkout operations are *expressible* as the SQL statements
//! of Table 1 — the "bolt-on" property — and those statements remain the
//! documented spec path ([`version_rows_sql`], the per-model
//! `checkout_sql`). The versioning layer's own reads, however, take a
//! **record-access fast path** ([`version_row_refs`]) that resolves a
//! version's sorted rlist to heap slots through the backing table's rid
//! index and borrows rows in place, skipping SQL parse/plan/join entirely;
//! it falls back to the SQL formulation whenever the physical layout has
//! drifted from what `init_storage` created (the
//! `checkout_commit` bench gates the speedup, and
//! `tests/fastpath_equivalence.rs` pins row-for-row equality). Dataset
//! loading additionally has a bulk path (`bulk = true`) that writes through
//! the engine's table API directly; benchmarks use it for setup but never
//! for the timed operations.

pub mod combined;
pub mod delta;
pub mod split_rlist;
pub mod split_vlist;
pub mod table_per_version;

use orpheus_engine::{Database, Schema, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;

/// Which data model a CVD uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    TablePerVersion,
    CombinedTable,
    SplitByVlist,
    /// The paper's recommendation (Section 3.2) and our default.
    #[default]
    SplitByRlist,
    DeltaBased,
}

impl ModelKind {
    pub const ALL: [ModelKind; 5] = [
        ModelKind::TablePerVersion,
        ModelKind::CombinedTable,
        ModelKind::SplitByVlist,
        ModelKind::SplitByRlist,
        ModelKind::DeltaBased,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::TablePerVersion => "a-table-per-version",
            ModelKind::CombinedTable => "combined-table",
            ModelKind::SplitByVlist => "split-by-vlist",
            ModelKind::SplitByRlist => "split-by-rlist",
            ModelKind::DeltaBased => "delta-based",
        }
    }

    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "a-table-per-version" | "table-per-version" | "tpv" => Some(ModelKind::TablePerVersion),
            "combined-table" | "combined" => Some(ModelKind::CombinedTable),
            "split-by-vlist" | "vlist" => Some(ModelKind::SplitByVlist),
            "split-by-rlist" | "rlist" => Some(ModelKind::SplitByRlist),
            "delta-based" | "delta" => Some(ModelKind::DeltaBased),
            _ => None,
        }
    }
}

/// Everything a model needs to persist one committed version.
#[derive(Debug, Clone)]
pub struct CommitData {
    pub vid: Vid,
    /// All rids of the new version, sorted.
    pub rlist: Vec<i64>,
    /// Rids inherited unchanged from parent versions.
    pub kept: Vec<i64>,
    /// Freshly created records: (rid, data attribute values).
    pub new_records: Vec<(i64, Vec<Value>)>,
    /// Full contents of the new version (needed by a-table-per-version).
    pub all_records: Vec<(i64, Vec<Value>)>,
    /// The parent this version's delta is based on (delta model); the
    /// parent sharing the largest number of records.
    pub base: Option<Vid>,
    /// Rids present in `base` but absent here (delta tombstones).
    pub deleted_from_base: Vec<i64>,
}

// -- dispatch ----------------------------------------------------------------

/// Create the model's backing tables for a fresh CVD.
pub fn init_storage(db: &mut Database, cvd: &Cvd) -> Result<()> {
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::init(db, cvd),
        ModelKind::CombinedTable => combined::init(db, cvd),
        ModelKind::SplitByVlist => split_vlist::init(db, cvd),
        ModelKind::SplitByRlist => split_rlist::init(db, cvd),
        ModelKind::DeltaBased => delta::init(db, cvd),
    }
}

/// Persist a committed version. With `bulk = true`, record insertion goes
/// through the engine's table API instead of SQL (used for dataset loading
/// only — the Table 1 statements remain the production path).
pub fn persist_commit(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::persist(db, cvd, data, bulk),
        ModelKind::CombinedTable => combined::persist(db, cvd, data, bulk),
        ModelKind::SplitByVlist => split_vlist::persist(db, cvd, data, bulk),
        ModelKind::SplitByRlist => split_rlist::persist(db, cvd, data, bulk),
        ModelKind::DeltaBased => delta::persist(db, cvd, data, bulk),
    }
}

/// Best-effort undo of [`persist_commit`] for a version whose commit
/// failed after (or while) writing backing storage: removes the version's
/// rows/tables so its vid can be reused by a retried commit. Without this,
/// a failed commit would leave e.g. the vid's rlist tuple behind and every
/// retry would die on a duplicate-key violation — the CVD would be
/// permanently unable to commit. Errors are swallowed: rollback runs on an
/// already-failing path and must not mask the original error.
pub fn rollback_commit(db: &mut Database, cvd: &Cvd, data: &CommitData) {
    let vid = data.vid;
    match cvd.model {
        ModelKind::TablePerVersion => {
            let _ = db.drop_table(&cvd.version_table(vid));
        }
        ModelKind::DeltaBased => {
            let _ = db.drop_table(&cvd.delta_table(vid));
            let _ = db.execute(&format!(
                "DELETE FROM {} WHERE vid = {}",
                cvd.precedent_table(),
                vid.0
            ));
        }
        ModelKind::SplitByRlist => {
            let _ = db.execute(&format!(
                "DELETE FROM {} WHERE vid = {}",
                cvd.rlist_table(),
                vid.0
            ));
            delete_rows_by_rid(db, &cvd.data_table(), &data.new_records);
        }
        ModelKind::SplitByVlist => {
            strip_vid_from_vlists(db, &cvd.vlist_table(), vid);
            delete_rows_by_rid(db, &cvd.data_table(), &data.new_records);
        }
        ModelKind::CombinedTable => {
            strip_vid_from_vlists(db, &cvd.combined_table(), vid);
        }
    }
}

/// Delete the rows whose rid appears in `records` (rollback of freshly
/// inserted records). Best-effort.
fn delete_rows_by_rid(db: &mut Database, table: &str, records: &[(i64, Vec<Value>)]) {
    let Ok(t) = db.table_mut(table) else { return };
    let rids: Vec<i64> = records.iter().map(|(rid, _)| *rid).collect();
    if let Some(pairs) = t.resolve_int_keys(0, &rids) {
        t.delete_slots(pairs.into_iter().map(|(_, slot)| slot).collect());
    }
}

/// Remove `vid` from every row's `vlist`, deleting rows whose vlist
/// becomes empty (records that existed only in the rolled-back version).
/// Best-effort.
fn strip_vid_from_vlists(db: &mut Database, table: &str, vid: Vid) {
    let Ok(t) = db.table_mut(table) else { return };
    let Ok(vlist_col) = t.schema.column_index("vlist") else {
        return;
    };
    let target = vid.0 as i64;
    let mut updates = Vec::new();
    let mut deletes = Vec::new();
    for (slot, row) in t.rows().iter().enumerate() {
        let Value::IntArray(vlist) = &row[vlist_col] else {
            continue;
        };
        if !vlist.contains(&target) {
            continue;
        }
        let stripped: Vec<i64> = vlist.iter().copied().filter(|&v| v != target).collect();
        if stripped.is_empty() {
            deletes.push(slot);
        } else {
            let mut new_row = row.clone();
            new_row[vlist_col] = Value::IntArray(stripped);
            updates.push((slot, new_row));
        }
    }
    for (slot, row) in updates {
        let _ = t.replace_row(slot, row);
    }
    t.delete_slots(deletes);
}

/// Materialize a single version into `target` (the checkout of Table 1).
/// Each model tries its record-access fast path first and falls back to
/// the Table 1 SQL statement (see [`checkout_into_sql`]) when the layout
/// cannot be fast-read.
pub fn checkout_into(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    cvd.check_version(vid)?;
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::checkout(db, cvd, vid, target),
        ModelKind::CombinedTable => combined::checkout(db, cvd, vid, target),
        ModelKind::SplitByVlist => split_vlist::checkout(db, cvd, vid, target),
        ModelKind::SplitByRlist => split_rlist::checkout(db, cvd, vid, target),
        ModelKind::DeltaBased => delta::checkout(db, cvd, vid, target),
    }
}

/// The checkout of Table 1 executed verbatim through the SQL layer — the
/// documented spec path, kept callable so the equivalence tests and the
/// latency benchmark can compare the fast path against it. (The delta
/// model has no single-statement checkout; its SQL formulation is the
/// per-table `SELECT *` lineage replay.)
pub fn checkout_into_sql(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    cvd.check_version(vid)?;
    match cvd.model {
        ModelKind::TablePerVersion => {
            db.execute(&table_per_version::checkout_sql(cvd, vid, target))?;
        }
        ModelKind::CombinedTable => {
            db.execute(&combined::checkout_sql(cvd, vid, target))?;
        }
        ModelKind::SplitByVlist => {
            db.execute(&split_vlist::checkout_sql(cvd, vid, target))?;
        }
        ModelKind::SplitByRlist => {
            db.execute(&split_rlist::checkout_sql(cvd, vid, target))?;
        }
        ModelKind::DeltaBased => {
            return delta::checkout_sql_replay(db, cvd, vid, target);
        }
    }
    Ok(())
}

/// The records of a version as (rid, data values) pairs: the record-access
/// fast path when the layout admits it, the Table 1 SQL formulation
/// otherwise.
pub fn version_rows(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    cvd.check_version(vid)?;
    if let Some(refs) = version_row_refs(db, cvd, vid)? {
        return Ok(refs
            .into_iter()
            .map(|(rid, values)| (rid, values.to_vec()))
            .collect());
    }
    version_rows_sql(db, cvd, vid)
}

/// The records of a version via the model's SQL formulation (Table 1) —
/// the retained spec path the fast path is checked against.
pub fn version_rows_sql(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    cvd.check_version(vid)?;
    match cvd.model {
        ModelKind::TablePerVersion => table_per_version::version_rows_sql(db, cvd, vid),
        ModelKind::CombinedTable => combined::version_rows_sql(db, cvd, vid),
        ModelKind::SplitByVlist => split_vlist::version_rows_sql(db, cvd, vid),
        ModelKind::SplitByRlist => split_rlist::version_rows_sql(db, cvd, vid),
        ModelKind::DeltaBased => delta::version_rows_sql(db, cvd, vid),
    }
}

// -- the record-access fast path ----------------------------------------------

/// Borrowed `(rid, data values)` pairs — the return shape of the
/// record-access fast path.
pub type RowRefs<'a> = Vec<(i64, &'a [Value])>;

/// Borrowed `(rid, data values)` pairs of one version, resolved without
/// SQL: the rlist comes from the version manager's sorted cache
/// ([`Cvd::rids_of`]), records from direct heap-slot lookup through the
/// backing table's rid index ([`orpheus_engine::Table::resolve_int_keys`]).
/// Returns
/// `Ok(None)` when the physical layout cannot be fast-read (missing table
/// or index, schema drift such as a data column appended after combined's
/// `vlist`) — callers then fall back to [`version_rows_sql`].
///
/// Value slices may be *narrower* than the current schema for models that
/// freeze per-version tables (a-table-per-version, delta) — exactly what
/// their SQL `SELECT *` returns; consumers null-extend.
pub fn version_row_refs<'a>(db: &'a Database, cvd: &Cvd, vid: Vid) -> Result<Option<RowRefs<'a>>> {
    cvd.check_version(vid)?;
    let rlist = cvd.rids_of(vid)?;
    Ok(match cvd.model {
        ModelKind::TablePerVersion => table_per_version::version_row_refs(db, cvd, vid),
        ModelKind::CombinedTable => rid_index_rows(db, &cvd.combined_table(), cvd, rlist, 1),
        ModelKind::SplitByVlist | ModelKind::SplitByRlist => {
            rid_index_rows(db, &cvd.data_table(), cvd, rlist, 0)
        }
        ModelKind::DeltaBased => delta::version_row_refs(db, cvd, vid),
    })
}

/// Width of the `rid + data attributes` prefix of a backing table's rows:
/// `Some(n)` when the columns are `[rid, a0..a(n-1), <trailing>..]` with
/// `a0..a(n-1)` matching a prefix of the CVD schema in order (`trailing`
/// is the count of versioning columns at the tail — combined's `vlist`,
/// delta's `tombstone`). `None` marks layout drift and sends the caller to
/// the SQL path.
pub(crate) fn attr_prefix_len(table: &Schema, cvd: &Cvd, trailing: usize) -> Option<usize> {
    let n = table.arity().checked_sub(1 + trailing)?;
    if n > cvd.schema.arity() || !table.columns[0].name.eq_ignore_ascii_case("rid") {
        return None;
    }
    for i in 0..n {
        if !table.columns[i + 1]
            .name
            .eq_ignore_ascii_case(&cvd.schema.columns[i].name)
        {
            return None;
        }
    }
    Some(n)
}

/// Resolve a sorted rlist to borrowed rows through `table`'s rid index.
pub(crate) fn rid_index_rows<'a>(
    db: &'a Database,
    table: &str,
    cvd: &Cvd,
    rlist: &[i64],
    trailing: usize,
) -> Option<RowRefs<'a>> {
    let t = db.table(table).ok()?;
    let width = attr_prefix_len(&t.schema, cvd, trailing)?;
    let pairs = t.resolve_int_keys(0, rlist)?;
    Some(
        pairs
            .into_iter()
            .map(|(rid, slot)| (rid, &t.row(slot)[1..1 + width]))
            .collect(),
    )
}

/// Fast-path checkout: copy the resolved rows of one version from `source`
/// into a fresh `target` with exactly the shape `SELECT .. INTO` produces
/// (source column types, no primary key, everything nullable). `rlist` of
/// `None` copies the whole table (a-table-per-version). Returns `false` —
/// having touched nothing — when the layout cannot be fast-read, so the
/// caller can run the Table 1 statement instead.
pub(crate) fn checkout_resolved(
    db: &mut Database,
    source: &str,
    cvd: &Cvd,
    rlist: Option<&[i64]>,
    trailing: usize,
    target: &str,
) -> Result<bool> {
    let (schema, rows) = {
        let Ok(t) = db.table(source) else {
            return Ok(false);
        };
        let Some(width) = attr_prefix_len(&t.schema, cvd, trailing) else {
            return Ok(false);
        };
        let rows: Vec<Vec<Value>> = match rlist {
            Some(rids) => {
                let Some(pairs) = t.resolve_int_keys(0, rids) else {
                    return Ok(false);
                };
                pairs
                    .into_iter()
                    .map(|(_, slot)| t.row(slot)[..=width].to_vec())
                    .collect()
            }
            None => t.rows().iter().map(|r| r[..=width].to_vec()).collect(),
        };
        let mut schema = t.schema.project(&(0..=width).collect::<Vec<_>>());
        schema.primary_key.clear();
        for c in &mut schema.columns {
            c.nullable = true;
        }
        (schema, rows)
    };
    db.create_table(target, schema)?;
    db.table_mut(target)?.insert_many(rows)?;
    Ok(true)
}

/// Whether the record-access fast path would engage for this version right
/// now (used by tests and the latency benchmark to assert the timed arm
/// actually exercised the fast path).
pub fn fast_path_ready(db: &Database, cvd: &Cvd, vid: Vid) -> bool {
    matches!(version_row_refs(db, cvd, vid), Ok(Some(_)))
}

/// Total backing storage (heap + indexes) in bytes.
pub fn storage_bytes(db: &Database, cvd: &Cvd) -> u64 {
    let tables = backing_tables(cvd);
    tables
        .iter()
        .filter_map(|t| db.table(t).ok())
        .map(|t| t.storage_bytes() as u64)
        .sum()
}

/// Names of the model's backing tables (existing ones only are counted by
/// [`storage_bytes`]).
pub fn backing_tables(cvd: &Cvd) -> Vec<String> {
    match cvd.model {
        ModelKind::TablePerVersion => (1..=cvd.num_versions() as u64)
            .map(|v| cvd.version_table(Vid(v)))
            .collect(),
        ModelKind::CombinedTable => vec![cvd.combined_table()],
        ModelKind::SplitByVlist => vec![cvd.data_table(), cvd.vlist_table()],
        ModelKind::SplitByRlist => vec![cvd.data_table(), cvd.rlist_table()],
        ModelKind::DeltaBased => {
            let mut v: Vec<String> = (1..=cvd.num_versions() as u64)
                .map(|v| cvd.delta_table(Vid(v)))
                .collect();
            v.push(cvd.precedent_table());
            v
        }
    }
}

/// Drop all backing tables (used by `drop <cvd>`).
pub fn drop_storage(db: &mut Database, cvd: &Cvd) {
    for t in backing_tables(cvd) {
        let _ = db.drop_table(&t);
    }
}

// -- SQL helpers shared by the model implementations --------------------------

/// Render a value as a SQL literal.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Double(d) => {
            if d.fract() == 0.0 {
                format!("{d:.1}")
            } else {
                format!("{d}")
            }
        }
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::IntArray(a) => format!(
            "ARRAY[{}]",
            a.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Render a comma-separated int list (for `IN (...)` and `ARRAY[...]`).
pub fn int_list(ids: &[i64]) -> String {
    let mut s = String::with_capacity(ids.len() * 8);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&id.to_string());
    }
    s
}

/// Insert rows through SQL in chunks (multi-row `INSERT INTO .. VALUES`).
pub fn insert_rows_sql(db: &mut Database, table: &str, rows: &[Vec<Value>]) -> Result<()> {
    const CHUNK: usize = 500;
    for chunk in rows.chunks(CHUNK) {
        let mut sql = format!("INSERT INTO {table} VALUES ");
        for (i, row) in chunk.iter().enumerate() {
            if i > 0 {
                sql.push_str(", ");
            }
            sql.push('(');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    sql.push_str(", ");
                }
                sql.push_str(&sql_literal(v));
            }
            sql.push(')');
        }
        db.execute(&sql)?;
    }
    Ok(())
}

/// Bulk-insert rows via the table API (load fast-path).
pub fn insert_rows_bulk(db: &mut Database, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
    let t = db.table_mut(table)?;
    t.insert_many(rows)?;
    Ok(())
}

/// Column-name list of a CVD's data attributes, prefixed with `rid`.
pub fn rid_and_attrs(cvd: &Cvd) -> String {
    let mut cols = vec!["rid".to_string()];
    cols.extend(cvd.schema.columns.iter().map(|c| c.name.clone()));
    cols.join(", ")
}

/// Append `vid` to the `vlist` of each row of `table` whose rid is in
/// `kept` — the expensive array-append commit of the combined-table and
/// split-by-vlist models (Table 1). SQL path issues the paper's UPDATE;
/// bulk path mutates rows directly.
pub fn append_vid_to_vlist(
    db: &mut Database,
    table: &str,
    vid: Vid,
    kept: &[i64],
    bulk: bool,
) -> Result<()> {
    if kept.is_empty() {
        return Ok(());
    }
    if !bulk {
        db.execute(&format!(
            "UPDATE {table} SET vlist = vlist + {} WHERE rid IN ({})",
            vid.0,
            int_list(kept)
        ))?;
        return Ok(());
    }
    let kept_set: std::collections::HashSet<i64> = kept.iter().copied().collect();
    let t = db.table_mut(table)?;
    let rid_col = t.schema.column_index("rid")?;
    let vlist_col = t.schema.column_index("vlist")?;
    let mut updates = Vec::new();
    for (slot, row) in t.rows().iter().enumerate() {
        if let Value::Int(r) = row[rid_col] {
            if kept_set.contains(&r) {
                let mut new_row = row.clone();
                if let Value::IntArray(arr) = &mut new_row[vlist_col] {
                    arr.push(vid.0 as i64);
                }
                updates.push((slot, new_row));
            }
        }
    }
    for (slot, row) in updates {
        t.replace_row(slot, row)?;
    }
    Ok(())
}

/// Shared fixtures for the per-model unit tests: a tiny CVD with schema
/// `(name TEXT PRIMARY KEY, score INT)` and a value-diffing commit helper
/// that exercises the real persistence paths.
#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::HashMap;

    use orpheus_engine::{Column, DataType, Database, Schema, Value};

    use crate::cvd::{Cvd, VersionMeta};
    use crate::ids::Vid;
    use crate::model::{self, CommitData, ModelKind};

    pub fn record(name: &str, score: i64) -> Vec<Value> {
        vec![Value::Text(name.to_string()), Value::Int(score)]
    }

    pub fn make_cvd(model: ModelKind) -> (Database, Cvd) {
        let schema = Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Int),
        ])
        .with_primary_key(&["name"])
        .unwrap();
        let mut db = Database::new();
        let cvd = Cvd::new("t", schema, model);
        model::init_storage(&mut db, &cvd).unwrap();
        (db, cvd)
    }

    /// Commit `rows` as a new version: rows matching a parent record by
    /// value keep that record's rid; everything else gets a fresh rid.
    pub fn commit(db: &mut Database, cvd: &mut Cvd, rows: &[Vec<Value>], parents: &[Vid]) -> Vid {
        let vid = Vid(cvd.num_versions() as u64 + 1);
        // Parent record map: values → rid (first parent wins).
        let mut val2rid: HashMap<Vec<Value>, i64> = HashMap::new();
        for p in parents {
            for (rid, values) in model::version_rows(db, cvd, *p).unwrap() {
                val2rid.entry(values).or_insert(rid);
            }
        }
        let mut kept = Vec::new();
        let mut new_records = Vec::new();
        let mut all_records = Vec::new();
        let mut fresh = cvd.alloc_rids(rows.len()).into_iter();
        for row in rows {
            match val2rid.get(row) {
                Some(&rid) => {
                    kept.push(rid);
                    all_records.push((rid, row.clone()));
                }
                None => {
                    let rid = fresh.next().unwrap();
                    new_records.push((rid, row.clone()));
                    all_records.push((rid, row.clone()));
                }
            }
        }
        let mut rlist: Vec<i64> = all_records.iter().map(|(r, _)| *r).collect();
        rlist.sort_unstable();
        // One overlap pass per parent serves both the base-parent choice
        // and the stored weights (mirrors the production commit core).
        let parent_weights = cvd.parent_overlaps(&rlist, parents);
        let base = crate::db::base_parent(parents, &parent_weights);
        let deleted_from_base = match base {
            Some(b) => crate::cvd::sorted_difference(cvd.rids_of(b).unwrap(), &rlist),
            None => Vec::new(),
        };
        let data = CommitData {
            vid,
            rlist: rlist.clone(),
            kept,
            new_records,
            all_records,
            base,
            deleted_from_base,
        };
        model::persist_commit(db, cvd, &data, false).unwrap();
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid,
            parents: parents.to_vec(),
            parent_weights,
            checkout_t: None,
            commit_t: vid.0,
            message: format!("commit {vid}"),
            attributes,
            num_records: rlist.len() as u64,
            base,
        });
        cvd.version_rids.push(std::sync::Arc::new(rlist));
        vid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_roundtrip() {
        for m in ModelKind::ALL {
            assert_eq!(ModelKind::parse(m.name()), Some(m));
        }
        assert_eq!(ModelKind::parse("rlist"), Some(ModelKind::SplitByRlist));
        assert_eq!(ModelKind::parse("bogus"), None);
        assert_eq!(ModelKind::default(), ModelKind::SplitByRlist);
    }

    #[test]
    fn sql_literals() {
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Int(-5)), "-5");
        assert_eq!(sql_literal(&Value::Double(2.5)), "2.5");
        assert_eq!(sql_literal(&Value::Double(2.0)), "2.0");
        assert_eq!(sql_literal(&Value::Text("it's".into())), "'it''s'");
        assert_eq!(sql_literal(&Value::IntArray(vec![1, 2])), "ARRAY[1, 2]");
        assert_eq!(sql_literal(&Value::Bool(true)), "TRUE");
    }

    #[test]
    fn int_list_rendering() {
        assert_eq!(int_list(&[]), "");
        assert_eq!(int_list(&[1]), "1");
        assert_eq!(int_list(&[1, 2, 3]), "1, 2, 3");
    }

    #[test]
    fn chunked_sql_insert() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let rows: Vec<Vec<Value>> = (0..1203)
            .map(|i| vec![Value::Int(i), Value::Text(format!("s{i}"))])
            .collect();
        insert_rows_sql(&mut db, "t", &rows).unwrap();
        let r = db.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1203)));
    }
}
