//! Combined-table (Figure 1b): a single table `(rid PK, attrs..., vlist)`
//! where each record carries the array of versions containing it. Checkout
//! is a containment scan; commit appends the new vid to every inherited
//! record's vlist — the expensive operation that motivates the split
//! models (Section 3.2).

use orpheus_engine::{Column, DataType, Database, Schema, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{
    append_vid_to_vlist, insert_rows_bulk, insert_rows_sql, rid_and_attrs,
    split_rlist::rows_to_records, CommitData,
};

/// Physical schema: rid PK ++ data attrs ++ vlist.
pub fn physical_schema(cvd: &Cvd) -> Schema {
    let mut cols = vec![Column::new("rid", DataType::Int).not_null()];
    cols.extend(cvd.schema.columns.iter().cloned());
    cols.push(Column::new("vlist", DataType::IntArray));
    let mut s = Schema::new(cols);
    s.primary_key = vec![0];
    s
}

pub fn init(db: &mut Database, cvd: &Cvd) -> Result<()> {
    db.create_table(&cvd.combined_table(), physical_schema(cvd))?;
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    append_vid_to_vlist(db, &cvd.combined_table(), data.vid, &data.kept, bulk)?;
    if !data.new_records.is_empty() {
        let rows: Vec<Vec<Value>> = data
            .new_records
            .iter()
            .map(|(rid, values)| {
                let mut row = Vec::with_capacity(values.len() + 2);
                row.push(Value::Int(*rid));
                row.extend(values.iter().cloned());
                row.push(Value::IntArray(vec![data.vid.0 as i64]));
                row
            })
            .collect();
        if bulk {
            insert_rows_bulk(db, &cvd.combined_table(), rows)?;
        } else {
            insert_rows_sql(db, &cvd.combined_table(), &rows)?;
        }
    }
    Ok(())
}

/// The Table 1 checkout statement (projecting away the versioning
/// attribute so the staged table matches the logical schema).
pub fn checkout_sql(cvd: &Cvd, vid: Vid, target: &str) -> String {
    format!(
        "SELECT {} INTO {target} FROM {} WHERE ARRAY[{}] <@ vlist",
        rid_and_attrs(cvd),
        cvd.combined_table(),
        vid.0
    )
}

pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    db.execute(&checkout_sql(cvd, vid, target))?;
    Ok(())
}

pub fn version_rows(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let r = db.query(&format!(
        "SELECT {} FROM {} WHERE ARRAY[{}] <@ vlist",
        rid_and_attrs(cvd),
        cvd.combined_table(),
        vid.0
    ))?;
    rows_to_records(r.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::ModelKind;

    #[test]
    fn roundtrip_with_modified_record() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        // Modify b's score: becomes a *new* record (immutability).
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 99)],
            &[Vid(1)],
        );

        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        checkout(&mut db, &cvd, Vid(2), "t2").unwrap();
        let r1 = db.query("SELECT score FROM t1 ORDER BY name").unwrap();
        let r2 = db.query("SELECT score FROM t2 ORDER BY name").unwrap();
        assert_eq!(r1.rows[1][0], Value::Int(2));
        assert_eq!(r2.rows[1][0], Value::Int(99));

        // The combined table holds 3 records: a, b(2), b(99); a's vlist
        // covers both versions.
        let r = db
            .query(&format!("SELECT count(*) FROM {}", cvd.combined_table()))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        let r = db
            .query(&format!(
                "SELECT vlist FROM {} WHERE name = 'a'",
                cvd.combined_table()
            ))
            .unwrap();
        assert_eq!(r.rows[0][0], Value::IntArray(vec![1, 2]));
    }

    #[test]
    fn checkout_excludes_vlist_column() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        let schema = &db.table("t1").unwrap().schema;
        assert!(!schema.has_column("vlist"));
        assert!(schema.has_column("rid"));
    }

    #[test]
    fn version_rows_by_containment() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(&mut db, &mut cvd, &[record("b", 2)], &[Vid(1)]);
        assert_eq!(version_rows(&mut db, &cvd, Vid(2)).unwrap().len(), 1);
    }
}
