//! Combined-table (Figure 1b): a single table `(rid PK, attrs..., vlist)`
//! where each record carries the array of versions containing it. Checkout
//! is a containment scan; commit appends the new vid to every inherited
//! record's vlist — the expensive operation that motivates the split
//! models (Section 3.2).

use orpheus_engine::{Column, DataType, Database, Schema, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{
    self, append_vid_to_vlist, insert_rows_bulk, insert_rows_sql, rid_and_attrs,
    split_rlist::rows_to_records, CommitData,
};

/// Physical schema: rid PK ++ data attrs ++ vlist.
pub fn physical_schema(cvd: &Cvd) -> Schema {
    let mut cols = vec![Column::new("rid", DataType::Int).not_null()];
    cols.extend(cvd.schema.columns.iter().cloned());
    cols.push(Column::new("vlist", DataType::IntArray));
    let mut s = Schema::new(cols);
    s.primary_key = vec![0];
    s
}

pub fn init(db: &mut Database, cvd: &Cvd) -> Result<()> {
    db.create_table(&cvd.combined_table(), physical_schema(cvd))?;
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    append_vid_to_vlist(db, &cvd.combined_table(), data.vid, &data.kept, bulk)?;
    if !data.new_records.is_empty() {
        // Build rows in the table's *physical* column order: schema
        // evolution appends new data columns after `vlist`, so the
        // rid ++ attrs ++ vlist layout cannot be assumed. The name
        // resolution is loop-invariant — map each physical column to its
        // source once, not per row.
        enum Source {
            Rid,
            Vlist,
            Attr(usize),
            Missing,
        }
        let sources: Vec<Source> = {
            let columns = &db.table(&cvd.combined_table())?.schema.columns;
            columns
                .iter()
                .map(|c| {
                    if c.name.eq_ignore_ascii_case("rid") {
                        Source::Rid
                    } else if c.name.eq_ignore_ascii_case("vlist") {
                        Source::Vlist
                    } else {
                        match cvd.schema.column_index(&c.name) {
                            Ok(i) => Source::Attr(i),
                            Err(_) => Source::Missing,
                        }
                    }
                })
                .collect()
        };
        let rows: Vec<Vec<Value>> = data
            .new_records
            .iter()
            .map(|(rid, values)| {
                sources
                    .iter()
                    .map(|s| match s {
                        Source::Rid => Value::Int(*rid),
                        Source::Vlist => Value::IntArray(vec![data.vid.0 as i64]),
                        Source::Attr(i) => values.get(*i).cloned().unwrap_or(Value::Null),
                        Source::Missing => Value::Null,
                    })
                    .collect()
            })
            .collect();
        if bulk {
            insert_rows_bulk(db, &cvd.combined_table(), rows)?;
        } else {
            insert_rows_sql(db, &cvd.combined_table(), &rows)?;
        }
    }
    Ok(())
}

/// The Table 1 checkout statement (projecting away the versioning
/// attribute so the staged table matches the logical schema).
pub fn checkout_sql(cvd: &Cvd, vid: Vid, target: &str) -> String {
    format!(
        "SELECT {} INTO {target} FROM {} WHERE ARRAY[{}] <@ vlist",
        rid_and_attrs(cvd),
        cvd.combined_table(),
        vid.0
    )
}

/// Checkout: rid-index fast path over the combined table (the trailing
/// `vlist` column is projected away, exactly like the SQL statement); the
/// Table 1 containment scan is the fallback — and the only path once
/// schema evolution has appended a data column after `vlist`.
pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    let rlist = cvd.rids_of(vid)?;
    if model::checkout_resolved(db, &cvd.combined_table(), cvd, Some(rlist), 1, target)? {
        return Ok(());
    }
    db.execute(&checkout_sql(cvd, vid, target))?;
    Ok(())
}

/// The Table 1 read formulation, executed through the SQL layer.
pub fn version_rows_sql(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let r = db.query(&format!(
        "SELECT {} FROM {} WHERE ARRAY[{}] <@ vlist",
        rid_and_attrs(cvd),
        cvd.combined_table(),
        vid.0
    ))?;
    rows_to_records(r.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::ModelKind;

    #[test]
    fn roundtrip_with_modified_record() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        // Modify b's score: becomes a *new* record (immutability).
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 99)],
            &[Vid(1)],
        );

        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        checkout(&mut db, &cvd, Vid(2), "t2").unwrap();
        let r1 = db.query("SELECT score FROM t1 ORDER BY name").unwrap();
        let r2 = db.query("SELECT score FROM t2 ORDER BY name").unwrap();
        assert_eq!(r1.rows[1][0], Value::Int(2));
        assert_eq!(r2.rows[1][0], Value::Int(99));

        // The combined table holds 3 records: a, b(2), b(99); a's vlist
        // covers both versions.
        let r = db
            .query(&format!("SELECT count(*) FROM {}", cvd.combined_table()))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
        let r = db
            .query(&format!(
                "SELECT vlist FROM {} WHERE name = 'a'",
                cvd.combined_table()
            ))
            .unwrap();
        assert_eq!(r.rows[0][0], Value::IntArray(vec![1, 2]));
    }

    #[test]
    fn checkout_excludes_vlist_column() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        let schema = &db.table("t1").unwrap().schema;
        assert!(!schema.has_column("vlist"));
        assert!(schema.has_column("rid"));
    }

    #[test]
    fn version_rows_by_containment() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(&mut db, &mut cvd, &[record("b", 2)], &[Vid(1)]);
        assert_eq!(model::version_rows(&mut db, &cvd, Vid(2)).unwrap().len(), 1);
        // The fast path strips the vlist column, like the SQL projection.
        let fast: Vec<(i64, Vec<Value>)> = model::version_row_refs(&db, &cvd, Vid(1))
            .unwrap()
            .expect("fast path ready")
            .into_iter()
            .map(|(r, vals)| (r, vals.to_vec()))
            .collect();
        let mut sql = version_rows_sql(&mut db, &cvd, Vid(1)).unwrap();
        sql.sort_by_key(|(r, _)| *r);
        assert_eq!(fast, sql);
        assert!(fast.iter().all(|(_, vals)| vals.len() == 2));
    }

    #[test]
    fn layout_drift_falls_back_to_sql() {
        let (mut db, mut cvd) = make_cvd(ModelKind::CombinedTable);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        // Simulate schema evolution appending a data column *after* the
        // combined table's vlist: the prefix check must refuse the fast
        // path and both reads route through the containment scan.
        db.execute(&format!(
            "ALTER TABLE {} ADD COLUMN extra INT",
            cvd.combined_table()
        ))
        .unwrap();
        cvd.schema
            .columns
            .push(orpheus_engine::Column::new("extra", DataType::Int));
        assert!(!model::fast_path_ready(&db, &cvd, Vid(1)));
        let rows = model::version_rows(&mut db, &cvd, Vid(1)).unwrap();
        assert_eq!(rows.len(), 1);
        checkout(&mut db, &cvd, Vid(1), "fallback_t").unwrap();
        let r = db.query("SELECT count(*) FROM fallback_t").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }
}
