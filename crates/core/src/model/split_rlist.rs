//! Split-by-rlist (Figure 1c.ii) — the paper's chosen model.
//!
//! Two tables: the **data table** `(rid PK, attrs...)` holding every record
//! appearing in any version, and the **versioning table** `(vid PK,
//! rlist INT[])` mapping each version to its records. Commit appends *one*
//! tuple to the versioning table; checkout resolves the version's rlist via
//! the primary-key index on `vid`, unnests it, and hash-joins with the data
//! table (Table 1, right column). The fast path short-circuits that join:
//! the sorted rlist resolves to data-table heap slots directly through the
//! rid primary-key index ([`crate::model::version_row_refs`]).

use orpheus_engine::{Database, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{self, insert_rows_bulk, insert_rows_sql, int_list, CommitData};

pub fn init(db: &mut Database, cvd: &Cvd) -> Result<()> {
    db.create_table(&cvd.data_table(), cvd.physical_data_schema())?;
    db.execute(&format!(
        "CREATE TABLE {} (vid INT PRIMARY KEY, rlist INT[])",
        cvd.rlist_table()
    ))?;
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    // New records go into the data table.
    if !data.new_records.is_empty() {
        let rows: Vec<Vec<Value>> = data
            .new_records
            .iter()
            .map(|(rid, values)| {
                let mut row = Vec::with_capacity(values.len() + 1);
                row.push(Value::Int(*rid));
                row.extend(values.iter().cloned());
                row
            })
            .collect();
        if bulk {
            insert_rows_bulk(db, &cvd.data_table(), rows)?;
        } else {
            insert_rows_sql(db, &cvd.data_table(), &rows)?;
        }
    }
    // One tuple into the versioning table — the cheap commit of Table 1.
    if bulk {
        let t = db.table_mut(&cvd.rlist_table())?;
        t.insert(vec![
            Value::Int(data.vid.0 as i64),
            Value::IntArray(data.rlist.clone()),
        ])?;
    } else {
        db.execute(&format!(
            "INSERT INTO {} VALUES ({}, ARRAY[{}])",
            cvd.rlist_table(),
            data.vid.0,
            int_list(&data.rlist)
        ))?;
    }
    Ok(())
}

/// The Table 1 checkout statement for this model.
pub fn checkout_sql(cvd: &Cvd, vid: Vid, target: &str) -> String {
    format!(
        "SELECT d.* INTO {target} FROM {} AS d, \
         (SELECT unnest(rlist) AS rid_tmp FROM {} WHERE vid = {}) AS tmp \
         WHERE rid = rid_tmp",
        cvd.data_table(),
        cvd.rlist_table(),
        vid.0
    )
}

/// Checkout: rid-index fast path, Table 1 SQL as the fallback spec path.
pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    let rlist = cvd.rids_of(vid)?;
    if model::checkout_resolved(db, &cvd.data_table(), cvd, Some(rlist), 0, target)? {
        return Ok(());
    }
    db.execute(&checkout_sql(cvd, vid, target))?;
    Ok(())
}

/// The Table 1 read formulation, executed through the SQL layer.
pub fn version_rows_sql(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let r = db.query(&format!(
        "SELECT d.* FROM {} AS d, \
         (SELECT unnest(rlist) AS rid_tmp FROM {} WHERE vid = {}) AS tmp \
         WHERE rid = rid_tmp",
        cvd.data_table(),
        cvd.rlist_table(),
        vid.0
    ))?;
    rows_to_records(r.rows)
}

/// Split engine rows (rid ++ attrs) into (rid, attrs) pairs.
pub fn rows_to_records(rows: Vec<Vec<Value>>) -> Result<Vec<(i64, Vec<Value>)>> {
    let mut out = Vec::with_capacity(rows.len());
    for mut row in rows {
        let rest = row.split_off(1);
        let rid = row.pop().expect("rid column").as_int()?;
        out.push((rid, rest));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::ModelKind;

    #[test]
    fn init_creates_both_tables() {
        let (db, cvd) = make_cvd(ModelKind::SplitByRlist);
        assert!(db.has_table(&cvd.data_table()));
        assert!(db.has_table(&cvd.rlist_table()));
    }

    #[test]
    fn commit_and_checkout_roundtrip() {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByRlist);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("c", 3)],
            &[Vid(1)],
        );

        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        let r = db
            .query("SELECT name, score FROM t1 ORDER BY name")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][0], Value::Text("b".into()));

        checkout(&mut db, &cvd, Vid(2), "t2").unwrap();
        let r = db.query("SELECT name FROM t2 ORDER BY name").unwrap();
        assert_eq!(r.rows[0][0], Value::Text("a".into()));
        assert_eq!(r.rows[1][0], Value::Text("c".into()));
    }

    #[test]
    fn version_rows_match_rlist() {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByRlist);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        let rows = model::version_rows(&mut db, &cvd, Vid(1)).unwrap();
        assert_eq!(rows.len(), 2);
        let rids: Vec<i64> = rows.iter().map(|(r, _)| *r).collect();
        assert_eq!(rids, cvd.rids_of(Vid(1)).unwrap());
    }

    #[test]
    fn fast_path_matches_sql_formulation() {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByRlist);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("c", 3)],
            &[Vid(1)],
        );
        for v in [Vid(1), Vid(2)] {
            assert!(model::fast_path_ready(&db, &cvd, v));
            let fast = model::version_row_refs(&db, &cvd, v).unwrap().unwrap();
            let fast: Vec<(i64, Vec<Value>)> = fast
                .into_iter()
                .map(|(r, vals)| (r, vals.to_vec()))
                .collect();
            let mut sql = version_rows_sql(&mut db, &cvd, v).unwrap();
            sql.sort_by_key(|(r, _)| *r);
            assert_eq!(fast, sql, "{v}");
        }
    }

    #[test]
    fn versioning_table_has_one_row_per_version() {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByRlist);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        let r = db
            .query(&format!("SELECT count(*) FROM {}", cvd.rlist_table()))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
        // Shared records are stored once in the data table.
        let r = db
            .query(&format!("SELECT count(*) FROM {}", cvd.data_table()))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }
}
