//! A-table-per-version (Section 3.1, Approach 5): every version is its own
//! table. Minimal checkout cost, maximal storage — the paper includes it as
//! the baseline both extremes are compared against (Figure 3).

use orpheus_engine::{Database, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{
    self, insert_rows_bulk, insert_rows_sql, split_rlist::rows_to_records, CommitData,
};

pub fn init(_db: &mut Database, _cvd: &Cvd) -> Result<()> {
    // Tables are created per commit.
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    let table = cvd.version_table(data.vid);
    db.create_table(&table, cvd.physical_data_schema())?;
    let rows: Vec<Vec<Value>> = data
        .all_records
        .iter()
        .map(|(rid, values)| {
            let mut row = Vec::with_capacity(values.len() + 1);
            row.push(Value::Int(*rid));
            row.extend(values.iter().cloned());
            row
        })
        .collect();
    if bulk {
        insert_rows_bulk(db, &table, rows)?;
    } else {
        insert_rows_sql(db, &table, &rows)?;
    }
    Ok(())
}

/// Checkout is a plain table copy.
pub fn checkout_sql(cvd: &Cvd, vid: Vid, target: &str) -> String {
    format!("SELECT * INTO {target} FROM {}", cvd.version_table(vid))
}

/// Checkout: straight table-API copy of the version's table (no SQL
/// parse/plan for a plain `SELECT * INTO`); SQL fallback on layout drift.
pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    if model::checkout_resolved(db, &cvd.version_table(vid), cvd, None, 0, target)? {
        return Ok(());
    }
    db.execute(&checkout_sql(cvd, vid, target))?;
    Ok(())
}

/// The Table 1 read formulation, executed through the SQL layer.
pub fn version_rows_sql(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let r = db.query(&format!("SELECT * FROM {}", cvd.version_table(vid)))?;
    rows_to_records(r.rows)
}

/// Fast read: the version's table holds exactly its records; borrow them
/// in heap order (what `SELECT *` returns). Old tables frozen before a
/// schema evolution yield narrower slices, as their SQL reads do.
pub fn version_row_refs<'a>(db: &'a Database, cvd: &Cvd, vid: Vid) -> Option<model::RowRefs<'a>> {
    let t = db.table(&cvd.version_table(vid)).ok()?;
    let width = model::attr_prefix_len(&t.schema, cvd, 0)?;
    let mut out = Vec::with_capacity(t.len());
    for row in t.rows() {
        let Value::Int(rid) = row[0] else { return None };
        out.push((rid, &row[1..1 + width]));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::{storage_bytes, ModelKind};

    #[test]
    fn each_version_is_a_table() {
        let (mut db, mut cvd) = make_cvd(ModelKind::TablePerVersion);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        assert!(db.has_table(&cvd.version_table(Vid(1))));
        assert!(db.has_table(&cvd.version_table(Vid(2))));
    }

    #[test]
    fn storage_grows_with_redundancy() {
        // Committing the identical content repeatedly doubles storage each
        // time — the 10× blow-up of Figure 3a in miniature.
        let (mut db, mut cvd) = make_cvd(ModelKind::TablePerVersion);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        let s1 = storage_bytes(&db, &cvd);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        let s2 = storage_bytes(&db, &cvd);
        assert!(s2 >= 2 * s1 - 16, "s1={s1} s2={s2}");
    }

    #[test]
    fn checkout_copies_one_table() {
        let (mut db, mut cvd) = make_cvd(ModelKind::TablePerVersion);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        let r = db.query("SELECT name, score FROM t1").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(model::version_rows(&mut db, &cvd, Vid(1)).unwrap().len(), 1);
        // Fast read equals the SELECT * formulation, row for row.
        let fast: Vec<(i64, Vec<Value>)> = version_row_refs(&db, &cvd, Vid(1))
            .expect("fast path ready")
            .into_iter()
            .map(|(r, vals)| (r, vals.to_vec()))
            .collect();
        assert_eq!(fast, version_rows_sql(&mut db, &cvd, Vid(1)).unwrap());
    }
}
