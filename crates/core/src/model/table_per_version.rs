//! A-table-per-version (Section 3.1, Approach 5): every version is its own
//! table. Minimal checkout cost, maximal storage — the paper includes it as
//! the baseline both extremes are compared against (Figure 3).

use orpheus_engine::{Database, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{insert_rows_bulk, insert_rows_sql, split_rlist::rows_to_records, CommitData};

pub fn init(_db: &mut Database, _cvd: &Cvd) -> Result<()> {
    // Tables are created per commit.
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    let table = cvd.version_table(data.vid);
    db.create_table(&table, cvd.physical_data_schema())?;
    let rows: Vec<Vec<Value>> = data
        .all_records
        .iter()
        .map(|(rid, values)| {
            let mut row = Vec::with_capacity(values.len() + 1);
            row.push(Value::Int(*rid));
            row.extend(values.iter().cloned());
            row
        })
        .collect();
    if bulk {
        insert_rows_bulk(db, &table, rows)?;
    } else {
        insert_rows_sql(db, &table, &rows)?;
    }
    Ok(())
}

/// Checkout is a plain table copy.
pub fn checkout_sql(cvd: &Cvd, vid: Vid, target: &str) -> String {
    format!("SELECT * INTO {target} FROM {}", cvd.version_table(vid))
}

pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    db.execute(&checkout_sql(cvd, vid, target))?;
    Ok(())
}

pub fn version_rows(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let r = db.query(&format!("SELECT * FROM {}", cvd.version_table(vid)))?;
    rows_to_records(r.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::{storage_bytes, ModelKind};

    #[test]
    fn each_version_is_a_table() {
        let (mut db, mut cvd) = make_cvd(ModelKind::TablePerVersion);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        assert!(db.has_table(&cvd.version_table(Vid(1))));
        assert!(db.has_table(&cvd.version_table(Vid(2))));
    }

    #[test]
    fn storage_grows_with_redundancy() {
        // Committing the identical content repeatedly doubles storage each
        // time — the 10× blow-up of Figure 3a in miniature.
        let (mut db, mut cvd) = make_cvd(ModelKind::TablePerVersion);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        let s1 = storage_bytes(&db, &cvd);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        let s2 = storage_bytes(&db, &cvd);
        assert!(s2 >= 2 * s1 - 16, "s1={s1} s2={s2}");
    }

    #[test]
    fn checkout_copies_one_table() {
        let (mut db, mut cvd) = make_cvd(ModelKind::TablePerVersion);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        checkout(&mut db, &cvd, Vid(1), "t1").unwrap();
        let r = db.query("SELECT name, score FROM t1").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(version_rows(&mut db, &cvd, Vid(1)).unwrap().len(), 1);
    }
}
