//! Split-by-vlist (Figure 1c.i): data table `(rid PK, attrs...)` plus a
//! versioning table `(rid PK, vlist INT[])` mapping each record to the
//! versions containing it. Commit must append the new vid to many vlist
//! arrays (expensive, like combined-table); checkout scans the versioning
//! table with a containment check, then joins with the data table.

use orpheus_engine::{Database, Value};

use crate::cvd::Cvd;
use crate::error::Result;
use crate::ids::Vid;
use crate::model::{
    self, append_vid_to_vlist, insert_rows_bulk, insert_rows_sql, split_rlist::rows_to_records,
    CommitData,
};

pub fn init(db: &mut Database, cvd: &Cvd) -> Result<()> {
    db.create_table(&cvd.data_table(), cvd.physical_data_schema())?;
    db.execute(&format!(
        "CREATE TABLE {} (rid INT PRIMARY KEY, vlist INT[])",
        cvd.vlist_table()
    ))?;
    Ok(())
}

pub fn persist(db: &mut Database, cvd: &Cvd, data: &CommitData, bulk: bool) -> Result<()> {
    // Append vid to the vlist of every inherited record (Table 1's
    // expensive UPDATE).
    append_vid_to_vlist(db, &cvd.vlist_table(), data.vid, &data.kept, bulk)?;
    // New records: data rows plus fresh vlist entries.
    if !data.new_records.is_empty() {
        let data_rows: Vec<Vec<Value>> = data
            .new_records
            .iter()
            .map(|(rid, values)| {
                let mut row = Vec::with_capacity(values.len() + 1);
                row.push(Value::Int(*rid));
                row.extend(values.iter().cloned());
                row
            })
            .collect();
        let vlist_rows: Vec<Vec<Value>> = data
            .new_records
            .iter()
            .map(|(rid, _)| vec![Value::Int(*rid), Value::IntArray(vec![data.vid.0 as i64])])
            .collect();
        if bulk {
            insert_rows_bulk(db, &cvd.data_table(), data_rows)?;
            insert_rows_bulk(db, &cvd.vlist_table(), vlist_rows)?;
        } else {
            insert_rows_sql(db, &cvd.data_table(), &data_rows)?;
            insert_rows_sql(db, &cvd.vlist_table(), &vlist_rows)?;
        }
    }
    Ok(())
}

/// The Table 1 checkout statement for this model.
pub fn checkout_sql(cvd: &Cvd, vid: Vid, target: &str) -> String {
    format!(
        "SELECT d.* INTO {target} FROM {} AS d, \
         (SELECT rid AS rid_tmp FROM {} WHERE ARRAY[{}] <@ vlist) AS tmp \
         WHERE d.rid = rid_tmp",
        cvd.data_table(),
        cvd.vlist_table(),
        vid.0
    )
}

/// Checkout: the version's sorted rlist (the same membership the vlist
/// containment scan would discover) resolves straight through the data
/// table's rid index; the Table 1 SQL statement is the fallback.
pub fn checkout(db: &mut Database, cvd: &Cvd, vid: Vid, target: &str) -> Result<()> {
    let rlist = cvd.rids_of(vid)?;
    if model::checkout_resolved(db, &cvd.data_table(), cvd, Some(rlist), 0, target)? {
        return Ok(());
    }
    db.execute(&checkout_sql(cvd, vid, target))?;
    Ok(())
}

/// The Table 1 read formulation, executed through the SQL layer.
pub fn version_rows_sql(db: &mut Database, cvd: &Cvd, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
    let r = db.query(&format!(
        "SELECT d.* FROM {} AS d, \
         (SELECT rid AS rid_tmp FROM {} WHERE ARRAY[{}] <@ vlist) AS tmp \
         WHERE d.rid = rid_tmp",
        cvd.data_table(),
        cvd.vlist_table(),
        vid.0
    ))?;
    rows_to_records(r.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{commit, make_cvd, record};
    use crate::model::ModelKind;

    #[test]
    fn roundtrip_and_vlist_growth() {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByVlist);
        commit(&mut db, &mut cvd, &[record("a", 1), record("b", 2)], &[]);
        // v2 keeps "a", drops "b", adds "c".
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("c", 3)],
            &[Vid(1)],
        );

        checkout(&mut db, &cvd, Vid(2), "t2").unwrap();
        let r = db.query("SELECT name FROM t2 ORDER BY name").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[1][0], Value::Text("c".into()));

        // Record "a" now lists both versions.
        let r = db
            .query(&format!(
                "SELECT count(*) FROM {} WHERE ARRAY[1, 2] <@ vlist",
                cvd.vlist_table()
            ))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn version_rows_and_counts() {
        let (mut db, mut cvd) = make_cvd(ModelKind::SplitByVlist);
        commit(&mut db, &mut cvd, &[record("a", 1)], &[]);
        commit(
            &mut db,
            &mut cvd,
            &[record("a", 1), record("b", 2)],
            &[Vid(1)],
        );
        assert_eq!(model::version_rows(&mut db, &cvd, Vid(1)).unwrap().len(), 1);
        assert_eq!(model::version_rows(&mut db, &cvd, Vid(2)).unwrap().len(), 2);
        // Fast path and containment-scan SQL agree record-for-record.
        for v in [Vid(1), Vid(2)] {
            let fast: Vec<(i64, Vec<Value>)> = model::version_row_refs(&db, &cvd, v)
                .unwrap()
                .expect("fast path ready")
                .into_iter()
                .map(|(r, vals)| (r, vals.to_vec()))
                .collect();
            let mut sql = version_rows_sql(&mut db, &cvd, v).unwrap();
            sql.sort_by_key(|(r, _)| *r);
            assert_eq!(fast, sql, "{v}");
        }
        // Deduplicated storage: 2 data rows, 2 vlist rows.
        let r = db
            .query(&format!("SELECT count(*) FROM {}", cvd.vlist_table()))
            .unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(2)));
    }
}
