//! The write-ahead log: durable records of every mutating operation.
//!
//! OrpheusDB keeps all state in memory and snapshots it with
//! [`crate::persist`]; before this module, a crash between snapshots lost
//! every commit since the last save. The WAL closes that window with the
//! classic logical-logging contract:
//!
//! 1. The operation is applied in memory (so its outcome — including a
//!    rejection — is known).
//! 2. On success, a record describing the operation is appended to the
//!    current log segment and **fsync'd before the call returns**. Only
//!    then is the operation acknowledged to the caller.
//! 3. On reopen, [`crate::recovery::open`] loads the latest snapshot and
//!    re-applies the log's records on top. Failed operations were never
//!    logged, so a failed commit can never resurface after a crash
//!    (PR 4's in-memory commit rollback is thereby durable).
//!
//! # On-disk layout
//!
//! A WAL directory holds *generations*. Generation `g` is one snapshot
//! (`snapshot-<g>.orpheus`, written by [`crate::persist::save`]) plus one
//! log segment (`wal-<g>.log`) containing everything applied since that
//! snapshot. The `CURRENT` file names the live generation and is updated
//! with an atomic rename, so a crash mid-checkpoint leaves the previous
//! generation intact and complete.
//!
//! A segment is a fixed 32-byte header (magic, format version,
//! generation, base sequence number, header CRC) followed by framed
//! records. Each frame is `[u32 len][u32 crc32(payload)][payload]` — the
//! same length-prefixed, checksummed idiom as the TCP wire protocol, and
//! the payload reuses the [`crate::codec`] vocabulary outright (a
//! [`WalOp::Request`] embeds an encoded [`Request`]). A record payload
//! carries `(seq, clock_before, user, op)`: `seq` is a monotonically
//! increasing sequence number (contiguous across generations), and
//! `clock_before` pins the instance's logical clock before replay of the
//! op, which makes recovered `commit_t`/`checkout_t` timestamps
//! bit-identical to the pre-crash instance.
//!
//! # Torn tails vs. corruption
//!
//! Appends are sequential, so a crash can only damage the *end* of the
//! live segment. [`read_segment`] therefore treats an incomplete final
//! frame (file ends inside a frame header or payload, or the checksum of
//! the very last frame fails) as a **torn tail**: the damaged suffix is
//! ignored and truncated away on reattach, and replay keeps everything
//! before it. Anything else — a bad checksum *followed by more data*, a
//! hostile length, an undecodable payload, a broken header — cannot come
//! from a torn append and is reported as a typed [`CoreError::Protocol`]
//! / [`CoreError::Storage`] error, never a panic.
//!
//! # Fault-injection hooks
//!
//! Setting `ORPHEUS_WAL_KILL=<point>:<n>` aborts the process at the
//! `n`-th crossing of a named kill point (`pre-append`, `torn-append`,
//! `post-append`, `pre-snapshot`, `pre-current`, `post-current`). The
//! `torn-append` point writes *half* a frame and syncs it first, which
//! simulates exactly the torn write the recovery path must survive. The
//! CI `crash-recovery` job and the `crash_storm` bench drive these hooks
//! (plus plain `kill -9`) and verify the reopened instance bit-for-bit.
//!
//! Kill points model a dying *process*; the [`IoFaultInjector`] models a
//! dying *disk*. Setting `ORPHEUS_WAL_FAULT=<point>:<n>` (or calling
//! [`WalSink::arm_fault`] in tests) makes the `n`-th crossing of a named
//! fault point (`append`, `fsync`, `rotate`) fail with an injected I/O
//! error instead of aborting. An `append`/`fsync` failure — injected or
//! real — flips the sink into **degraded mode**: the failing operation
//! returns [`CoreError::Degraded`] to its caller (never an ack, never a
//! panic), and every later mutation is refused up front by
//! [`crate::db::OrpheusDB`] before touching memory, while reads and
//! checkouts keep serving. Recovery is explicit: a successful
//! [`crate::recovery::checkpoint`] snapshots the full in-memory state
//! onto a fresh generation and the private `WalSink::switch_to` clears the
//! degraded flag. A `rotate` fault fails the checkpoint itself and
//! leaves the previous generation serving.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use orpheus_engine::storage::{crc32, fsync_dir, write_atomically};
use orpheus_engine::{Schema, Value};

use crate::codec::{self, put_str, put_u32, put_u64, Reader};
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::request::Request;
use crate::staging::StagedKind;

/// Magic bytes opening every segment file.
const MAGIC: &[u8; 8] = b"ORPHWAL\0";

/// Segment format version. Bump together with any payload layout change
/// (the payloads share [`crate::codec`] with the wire protocol, so a
/// codec change bumps both this and `orpheus-net`'s `PROTOCOL_VERSION`).
pub const WAL_VERSION: u32 = 1;

/// Fixed size of the segment header.
pub const HEADER_LEN: u64 = 32;

/// Upper bound on one record's payload. Frames claiming more are
/// corruption (a torn append cannot fabricate a length — it can only cut
/// a frame short), so larger lengths are a typed error, not a torn tail.
pub const MAX_RECORD: u32 = 1 << 28;

/// Environment variable arming the abort-at-kill-point hooks.
pub const KILL_ENV: &str = "ORPHEUS_WAL_KILL";

/// Environment variable arming the fail-at-fault-point I/O hooks
/// (`append`, `fsync`, `rotate`).
pub const FAULT_ENV: &str = "ORPHEUS_WAL_FAULT";

/// Environment variable overriding the checkpoint threshold in bytes.
pub const CHECKPOINT_BYTES_ENV: &str = "ORPHEUS_CHECKPOINT_BYTES";

/// Default log-segment size that makes [`WalSink::should_checkpoint`]
/// report true (4 MiB).
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 4 << 20;

// ---------------------------------------------------------------------------
// Kill points (fault injection)
// ---------------------------------------------------------------------------

struct KillSpec {
    point: String,
    countdown: AtomicU64,
}

static KILL: OnceLock<Option<KillSpec>> = OnceLock::new();

fn kill_spec() -> &'static Option<KillSpec> {
    KILL.get_or_init(|| {
        let raw = std::env::var(KILL_ENV).ok()?;
        let (point, count) = raw.split_once(':')?;
        let n: u64 = count.trim().parse().ok().filter(|n| *n >= 1)?;
        Some(KillSpec {
            point: point.trim().to_string(),
            countdown: AtomicU64::new(n),
        })
    })
}

/// True exactly once: on the `n`-th crossing of the armed kill point.
fn kill_armed(point: &str) -> bool {
    match kill_spec() {
        Some(spec) if spec.point == point => spec.countdown.fetch_sub(1, Ordering::SeqCst) == 1,
        _ => false,
    }
}

/// Abort the process here if the armed kill point says so.
pub(crate) fn kill_here(point: &str) {
    if kill_armed(point) {
        std::process::abort();
    }
}

// ---------------------------------------------------------------------------
// I/O fault points (disk-fault injection)
// ---------------------------------------------------------------------------

/// Makes the `n`-th crossing of one named I/O point (`append`, `fsync`,
/// `rotate`) *fail* with an injected error instead of performing the
/// operation — a dying disk, where the kill hooks are a dying process.
/// Armed per sink, either from `ORPHEUS_WAL_FAULT=<point>:<n>` at attach
/// time (subprocess harnesses like `chaos_storm`) or programmatically via
/// [`WalSink::arm_fault`] (in-process tests). Fires exactly once.
#[derive(Debug)]
pub struct IoFaultInjector {
    point: String,
    countdown: AtomicU64,
}

impl IoFaultInjector {
    /// Arm a fault at the `n`-th crossing (`n >= 1`) of `point`.
    pub fn new(point: &str, n: u64) -> IoFaultInjector {
        IoFaultInjector {
            point: point.trim().to_string(),
            countdown: AtomicU64::new(n.max(1)),
        }
    }

    /// Parse `ORPHEUS_WAL_FAULT=<point>:<n>` into an armed injector.
    pub fn from_env() -> Option<IoFaultInjector> {
        let raw = std::env::var(FAULT_ENV).ok()?;
        let (point, count) = raw.split_once(':')?;
        let n: u64 = count.trim().parse().ok().filter(|n| *n >= 1)?;
        Some(IoFaultInjector::new(point, n))
    }

    /// True exactly once: on the `n`-th crossing of the armed point.
    fn fires(&self, point: &str) -> bool {
        self.point == point && self.countdown.fetch_sub(1, Ordering::SeqCst) == 1
    }
}

// ---------------------------------------------------------------------------
// Paths and the CURRENT pointer
// ---------------------------------------------------------------------------

/// The `CURRENT` pointer file naming the live generation.
pub fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// The log segment of generation `gen`.
pub fn segment_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:06}.log"))
}

/// The snapshot of generation `gen`.
pub fn snapshot_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snapshot-{gen:06}.orpheus"))
}

/// Read the live generation, or `None` for a fresh directory.
pub fn read_current(dir: &Path) -> Result<Option<u64>> {
    let path = current_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(CoreError::Storage(format!(
                "cannot read {}: {e}",
                path.display()
            )))
        }
    };
    text.trim().parse::<u64>().map(Some).map_err(|_| {
        CoreError::Protocol(format!(
            "{} does not name a WAL generation: {text:?}",
            path.display()
        ))
    })
}

/// Atomically point `CURRENT` at `gen` (write-tmp + fsync + rename +
/// directory fsync, via the engine's `write_atomically`).
pub fn write_current(dir: &Path, gen: u64) -> Result<()> {
    write_atomically(&current_path(dir), format!("{gen}\n").as_bytes()).map_err(CoreError::from)
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A materialized commit: everything needed to re-run
/// `OrpheusDB::commit` deterministically without the staged table. The
/// staged rows are captured at commit time because staged-table edits
/// happen through raw SQL on the engine and are not themselves logged.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Target CVD (normalized key, as stored in the staging entry).
    pub cvd: String,
    /// Staged table name or CSV path being committed.
    pub staged_name: String,
    /// Whether the staged artifact was a table or a CSV file.
    pub kind: StagedKind,
    /// Parent versions, in precedence order.
    pub parents: Vec<Vid>,
    /// Owner of the staged artifact (commits replay under this user).
    pub owner: String,
    /// Logical checkout timestamp of the staged artifact.
    pub created_at: u64,
    /// Schema of the staged data (after any in-place `ALTER`s).
    pub schema: Schema,
    /// The staged rows exactly as committed.
    pub rows: Vec<Vec<Value>>,
    /// Commit message.
    pub message: String,
    /// The version id the live commit produced; replay asserts it gets
    /// the same one.
    pub vid: Vid,
}

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A self-contained command-bus request (init, drop, optimize,
    /// create_user, login, discard, ...), replayed through
    /// [`crate::Executor::execute`].
    Request(Request),
    /// A commit with its staged rows materialized into the record.
    Commit(CommitRecord),
}

/// One log record: `op` was applied by `user` when the instance's
/// logical clock read `clock_before`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic sequence number, contiguous across generations.
    pub seq: u64,
    /// Logical clock value immediately before the op applied; replay
    /// pins the clock to this so recovered timestamps match exactly.
    pub clock_before: u64,
    /// Identity the op ran under.
    pub user: String,
    /// The operation itself.
    pub op: WalOp,
}

const OP_REQUEST: u8 = 1;
const OP_COMMIT: u8 = 2;
const KIND_TABLE: u8 = 0;
const KIND_CSV: u8 = 1;

impl WalRecord {
    /// Encode the record payload (frame header not included).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_u64(&mut out, self.seq);
        put_u64(&mut out, self.clock_before);
        put_str(&mut out, &self.user);
        match &self.op {
            WalOp::Request(request) => {
                out.push(OP_REQUEST);
                codec::put_request(&mut out, request);
            }
            WalOp::Commit(c) => {
                out.push(OP_COMMIT);
                put_str(&mut out, &c.cvd);
                put_str(&mut out, &c.staged_name);
                out.push(match c.kind {
                    StagedKind::Table => KIND_TABLE,
                    StagedKind::Csv => KIND_CSV,
                });
                codec::put_vids(&mut out, &c.parents);
                put_str(&mut out, &c.owner);
                put_u64(&mut out, c.created_at);
                codec::put_schema(&mut out, &c.schema);
                codec::put_rows(&mut out, &c.rows);
                put_str(&mut out, &c.message);
                put_u64(&mut out, c.vid.0);
            }
        }
        out
    }

    /// Decode one record payload. Every malformation is a typed
    /// [`CoreError::Protocol`] error.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let clock_before = r.u64()?;
        let user = r.str()?;
        let op = match r.u8()? {
            OP_REQUEST => WalOp::Request(codec::read_request(&mut r)?),
            OP_COMMIT => {
                let cvd = r.str()?;
                let staged_name = r.str()?;
                let kind = match r.u8()? {
                    KIND_TABLE => StagedKind::Table,
                    KIND_CSV => StagedKind::Csv,
                    other => {
                        return Err(CoreError::Protocol(format!(
                            "unknown staged-artifact kind {other} in WAL commit record"
                        )))
                    }
                };
                let parents = codec::read_vids(&mut r)?;
                let owner = r.str()?;
                let created_at = r.u64()?;
                let schema = codec::read_schema(&mut r)?;
                let rows = codec::read_rows(&mut r)?;
                let message = r.str()?;
                let vid = Vid(r.u64()?);
                WalOp::Commit(CommitRecord {
                    cvd,
                    staged_name,
                    kind,
                    parents,
                    owner,
                    created_at,
                    schema,
                    rows,
                    message,
                    vid,
                })
            }
            other => return Err(CoreError::Protocol(format!("unknown WAL op tag {other}"))),
        };
        r.finish("WAL record")?;
        Ok(WalRecord {
            seq,
            clock_before,
            user,
            op,
        })
    }
}

/// Wrap a payload in a `[len][crc][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

fn encode_header(gen: u64, base_seq: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&gen.to_le_bytes());
    h[20..28].copy_from_slice(&base_seq.to_le_bytes());
    let crc = crc32(&h[8..28]);
    h[28..32].copy_from_slice(&crc.to_le_bytes());
    h
}

// ---------------------------------------------------------------------------
// Segment scanning (the recovery read path)
// ---------------------------------------------------------------------------

/// The result of scanning one segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// Decoded records, in log order.
    pub records: Vec<WalRecord>,
    /// Sequence number the segment's snapshot already covers; records
    /// start at `base_seq + 1`.
    pub base_seq: u64,
    /// Byte length of the valid prefix (header + intact frames).
    pub valid_len: u64,
    /// Whether a torn tail (incomplete final frame) was ignored.
    pub truncated_tail: bool,
}

/// Scan a segment, verifying the header, every frame checksum, and
/// record sequence contiguity. A torn tail is tolerated and reported via
/// [`SegmentScan::truncated_tail`]; everything else is a typed error.
pub fn read_segment(path: &Path, expected_gen: u64) -> Result<SegmentScan> {
    let bytes = std::fs::read(path).map_err(|e| {
        CoreError::Storage(format!("cannot read WAL segment {}: {e}", path.display()))
    })?;
    let corrupt =
        |what: &str| CoreError::Protocol(format!("corrupt WAL segment {}: {what}", path.display()));
    if bytes.len() < HEADER_LEN as usize {
        return Err(corrupt("file shorter than the segment header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WAL_VERSION {
        return Err(corrupt(&format!(
            "format version {version}, expected {WAL_VERSION}"
        )));
    }
    let gen = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let base_seq = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
    if crc != crc32(&bytes[8..28]) {
        return Err(corrupt("header checksum mismatch"));
    }
    if gen != expected_gen {
        return Err(corrupt(&format!(
            "header names generation {gen}, CURRENT names {expected_gen}"
        )));
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut truncated_tail = false;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            // The file ends inside a frame header: a torn append.
            truncated_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(corrupt(&format!(
                "frame at byte {pos} claims {len} bytes (max {MAX_RECORD})"
            )));
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let end = pos + 8 + len as usize;
        if end > bytes.len() {
            // The file ends inside the payload: a torn append.
            truncated_tail = true;
            break;
        }
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != crc {
            if end == bytes.len() {
                // A final frame whose tail sector never made it to disk.
                truncated_tail = true;
                break;
            }
            return Err(corrupt(&format!(
                "checksum mismatch in frame at byte {pos} (not the final frame)"
            )));
        }
        let record = WalRecord::decode(payload)?;
        let expected_seq = base_seq + records.len() as u64 + 1;
        if record.seq != expected_seq {
            return Err(corrupt(&format!(
                "record sequence jumped to {} where {expected_seq} was expected",
                record.seq
            )));
        }
        records.push(record);
        pos = end;
    }
    Ok(SegmentScan {
        records,
        base_seq,
        valid_len: pos as u64,
        truncated_tail,
    })
}

/// Create (truncating if present) the segment file for `gen`, fsync it
/// and its directory. Called before `CURRENT` ever names `gen`.
pub(crate) fn create_segment(dir: &Path, gen: u64, base_seq: u64) -> Result<()> {
    let path = segment_path(dir, gen);
    let io = |what: &str, e: std::io::Error| {
        CoreError::Storage(format!("cannot {what} {}: {e}", path.display()))
    };
    let mut file = File::create(&path).map_err(|e| io("create", e))?;
    file.write_all(&encode_header(gen, base_seq))
        .map_err(|e| io("write header of", e))?;
    file.sync_all().map_err(|e| io("fsync", e))?;
    fsync_dir(dir).map_err(CoreError::from)
}

// ---------------------------------------------------------------------------
// The sink (the write path)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct WalState {
    file: File,
    gen: u64,
    /// Sequence number the next record gets.
    next_seq: u64,
    /// Current segment length in bytes.
    bytes: u64,
    /// Set when an append or fsync failed: the log's tail is suspect, so
    /// further appends are refused ([`CoreError::Degraded`]) until a
    /// checkpoint rotates onto a fresh segment. Carries the original
    /// I/O failure.
    poisoned: Option<String>,
    /// Armed I/O fault, if any (env or [`WalSink::arm_fault`]).
    fault: Option<IoFaultInjector>,
}

#[derive(Debug)]
struct WalInner {
    dir: PathBuf,
    state: Mutex<WalState>,
    /// Lock-free mirror of `poisoned.is_some()`, so every mutating
    /// operation can check writability up front without taking the
    /// append mutex.
    degraded: std::sync::atomic::AtomicBool,
}

/// Handle to the live log segment. Cloning shares the underlying file
/// (the handle is attached to an `OrpheusDB` and travels with its
/// shards), and a mutex serializes appends, so records land in apply
/// order for any one shard or the catalog.
#[derive(Debug, Clone)]
pub struct WalSink {
    inner: Arc<WalInner>,
}

impl WalSink {
    /// Attach to generation `gen`'s segment for appending, truncating a
    /// torn tail down to `valid_len` first. `next_seq` numbers the next
    /// record.
    pub(crate) fn attach(dir: &Path, gen: u64, valid_len: u64, next_seq: u64) -> Result<WalSink> {
        let path = segment_path(dir, gen);
        let io = |what: &str, e: std::io::Error| {
            CoreError::Storage(format!("cannot {what} {}: {e}", path.display()))
        };
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io("open", e))?;
        let on_disk = file.metadata().map_err(|e| io("stat", e))?.len();
        if on_disk > valid_len {
            file.set_len(valid_len).map_err(|e| io("truncate", e))?;
            file.sync_all().map_err(|e| io("fsync", e))?;
        }
        Ok(WalSink {
            inner: Arc::new(WalInner {
                dir: dir.to_path_buf(),
                state: Mutex::new(WalState {
                    file,
                    gen,
                    next_seq,
                    bytes: valid_len,
                    poisoned: None,
                    fault: IoFaultInjector::from_env(),
                }),
                degraded: std::sync::atomic::AtomicBool::new(false),
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalState> {
        // A panic mid-append leaves `poisoned` set in WalState itself;
        // the mutex's own poison flag adds nothing.
        self.inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The WAL directory this sink appends under.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The live generation.
    pub fn generation(&self) -> u64 {
        self.lock().gen
    }

    /// Sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// Bytes in the live segment (header included).
    pub fn log_bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Whether the live segment has outgrown the checkpoint threshold
    /// (`ORPHEUS_CHECKPOINT_BYTES`, default 4 MiB).
    pub fn should_checkpoint(&self) -> bool {
        let threshold = std::env::var(CHECKPOINT_BYTES_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_CHECKPOINT_BYTES);
        self.lock().bytes >= threshold
    }

    /// Arm an I/O fault on this sink programmatically (the in-process
    /// counterpart of `ORPHEUS_WAL_FAULT`). Points: `append` (the write
    /// fails before any byte lands), `fsync` (the write lands in the page
    /// cache but the sync fails), `rotate` (the next checkpoint's segment
    /// rotation fails).
    pub fn arm_fault(&self, point: &str, n: u64) {
        self.lock().fault = Some(IoFaultInjector::new(point, n));
    }

    /// The recorded I/O failure, when the sink is degraded.
    pub fn degraded(&self) -> Option<String> {
        if !self.is_degraded() {
            return None;
        }
        self.lock().poisoned.clone()
    }

    /// Whether the sink refuses appends after an I/O failure. Lock-free;
    /// checked by every mutating operation before it touches memory.
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::SeqCst)
    }

    /// Whether the armed fault (if any) fires at this crossing of
    /// `point`. Consumes one crossing.
    pub(crate) fn fault_fires(&self, point: &str) -> bool {
        match &self.lock().fault {
            Some(fault) => fault.fires(point),
            None => false,
        }
    }

    /// Record an I/O failure and flip the sink into degraded mode.
    fn degrade(st: &mut WalState, inner: &WalInner, why: String) -> CoreError {
        st.poisoned = Some(why.clone());
        inner.degraded.store(true, Ordering::SeqCst);
        CoreError::Degraded(why)
    }

    /// Append one record and fsync it. The caller has already applied
    /// the op in memory and must propagate an error from here to the
    /// client instead of acknowledging. On an I/O failure — injected or
    /// real — the sink degrades: this call returns
    /// [`CoreError::Degraded`] (the op's outcome is indeterminate — its
    /// in-memory effect stays visible and would become durable at the
    /// recovery checkpoint, but it was never acked), and every later
    /// mutation is refused up front until a checkpoint rotates the log.
    pub(crate) fn append(&self, user: &str, clock_before: u64, op: &WalOp) -> Result<()> {
        let mut st = self.lock();
        if let Some(why) = st.poisoned.clone() {
            return Err(CoreError::Degraded(why));
        }
        let record = WalRecord {
            seq: st.next_seq,
            clock_before,
            user: user.to_string(),
            op: op.clone(),
        };
        let buf = frame(&record.encode());
        kill_here("pre-append");
        if kill_armed("torn-append") {
            // Simulate a torn write: half the frame reaches disk, then
            // the process dies.
            let _ = st.file.write_all(&buf[..buf.len() / 2 + 1]);
            let _ = st.file.sync_data();
            std::process::abort();
        }
        let path = segment_path(&self.inner.dir, st.gen);
        if st.fault.as_ref().is_some_and(|f| f.fires("append")) {
            let why = format!(
                "append to {} failed: injected I/O fault (append)",
                path.display()
            );
            return Err(WalSink::degrade(&mut st, &self.inner, why));
        }
        if let Err(e) = st.file.write_all(&buf) {
            let why = format!("append to {} failed: {e}", path.display());
            return Err(WalSink::degrade(&mut st, &self.inner, why));
        }
        let synced = if st.fault.as_ref().is_some_and(|f| f.fires("fsync")) {
            Err(std::io::Error::other("injected I/O fault (fsync)"))
        } else {
            st.file.sync_data()
        };
        if let Err(e) = synced {
            let why = format!("fsync of {} failed: {e}", path.display());
            return Err(WalSink::degrade(&mut st, &self.inner, why));
        }
        kill_here("post-append");
        st.next_seq += 1;
        st.bytes += buf.len() as u64;
        Ok(())
    }

    /// Swap this sink onto generation `new_gen`'s (already created and
    /// fsync'd) segment after a checkpoint. Sequence numbers continue;
    /// the old segment is left for the caller to delete. Only called
    /// with the instance quiesced, so no append can interleave.
    pub(crate) fn switch_to(&self, new_gen: u64) -> Result<()> {
        let path = segment_path(&self.inner.dir, new_gen);
        let io = |what: &str, e: std::io::Error| {
            CoreError::Storage(format!("cannot {what} {}: {e}", path.display()))
        };
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io("open", e))?;
        let bytes = file.metadata().map_err(|e| io("stat", e))?.len();
        let mut st = self.lock();
        st.file = file;
        st.gen = new_gen;
        st.bytes = bytes;
        // Rotating onto a fresh, fully-synced generation is the explicit
        // recovery path out of degraded mode: the snapshot that preceded
        // this switch captured the whole in-memory state, so the suspect
        // tail of the old segment no longer matters.
        st.poisoned = None;
        self.inner.degraded.store(false, Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Init;
    use orpheus_engine::schema::Column;
    use orpheus_engine::types::DataType;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("orpheus-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
    }

    fn request_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            clock_before: seq * 7,
            user: "alice".into(),
            op: WalOp::Request(Request::Init(Init {
                cvd: "wines".into(),
                schema: sample_schema(),
                rows: vec![vec![Value::Int(1), Value::Text("red".into())]],
                model: None,
            })),
        }
    }

    fn commit_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            clock_before: 42,
            user: "bob".into(),
            op: WalOp::Commit(CommitRecord {
                cvd: "wines".into(),
                staged_name: "wines_work".into(),
                kind: StagedKind::Table,
                parents: vec![Vid(1), Vid(3)],
                owner: "bob".into(),
                created_at: 9,
                schema: sample_schema(),
                rows: vec![
                    vec![Value::Int(1), Value::Text("red".into())],
                    vec![Value::Int(2), Value::Null],
                ],
                message: "tweak".into(),
                vid: Vid(4),
            }),
        }
    }

    #[test]
    fn record_roundtrip() {
        for rec in [request_record(1), commit_record(2)] {
            let decoded = WalRecord::decode(&rec.encode()).unwrap();
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut payload = request_record(1).encode();
        payload.push(0xAB);
        assert!(matches!(
            WalRecord::decode(&payload),
            Err(CoreError::Protocol(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_op_tag() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u64(&mut payload, 0);
        put_str(&mut payload, "alice");
        payload.push(99);
        assert!(matches!(
            WalRecord::decode(&payload),
            Err(CoreError::Protocol(_))
        ));
    }

    fn write_segment(dir: &Path, gen: u64, records: &[WalRecord]) -> PathBuf {
        create_segment(dir, gen, records.first().map_or(0, |r| r.seq - 1)).unwrap();
        let path = segment_path(dir, gen);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        for rec in records {
            file.write_all(&frame(&rec.encode())).unwrap();
        }
        file.sync_all().unwrap();
        path
    }

    #[test]
    fn segment_roundtrip_and_scan() {
        let dir = temp_dir("scan");
        let records = vec![request_record(1), commit_record(2), request_record(3)];
        let path = write_segment(&dir, 1, &records);
        let scan = read_segment(&path, 1).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.base_seq, 0);
        assert!(!scan.truncated_tail);
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let records = vec![request_record(1), request_record(2)];
        let path = write_segment(&dir, 1, &records);
        let full = std::fs::metadata(&path).unwrap().len();
        // End of the first frame = where a clean one-record segment ends.
        let one = HEADER_LEN + 8 + records[0].encode().len() as u64;
        // Chop bytes off the final frame one at a time: every cut must
        // scan to exactly the first record and report a torn tail.
        for cut in (one + 1)..full {
            let bytes = std::fs::read(&path).unwrap();
            let clipped = &bytes[..cut as usize];
            let clipped_path = dir.join("clipped.log");
            std::fs::write(&clipped_path, clipped).unwrap();
            let scan = read_segment(&clipped_path, 1).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut} of {full}");
            assert!(scan.truncated_tail);
            assert_eq!(scan.valid_len, one);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_mid_file_is_a_typed_error() {
        let dir = temp_dir("flip");
        let records = vec![request_record(1), request_record(2)];
        let path = write_segment(&dir, 1, &records);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *first* frame's payload: a checksum
        // mismatch that is not the final frame must be a hard error.
        let idx = HEADER_LEN as usize + 12;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&path, 1),
            Err(CoreError::Protocol(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_length_is_a_typed_error() {
        let dir = temp_dir("hostile");
        let path = write_segment(&dir, 1, &[request_record(1)]);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        let mut bogus = Vec::new();
        put_u32(&mut bogus, MAX_RECORD + 1);
        put_u32(&mut bogus, 0);
        bogus.extend_from_slice(&[0u8; 16]);
        file.write_all(&bogus).unwrap();
        drop(file);
        assert!(matches!(
            read_segment(&path, 1),
            Err(CoreError::Protocol(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_corruption_is_a_typed_error() {
        let dir = temp_dir("header");
        let path = write_segment(&dir, 1, &[request_record(1)]);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[13] ^= 0x01; // inside the generation field
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&path, 1),
            Err(CoreError::Protocol(_))
        ));
        // Wrong expected generation is also typed.
        let path2 = write_segment(&dir, 2, &[]);
        assert!(matches!(
            read_segment(&path2, 7),
            Err(CoreError::Protocol(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_gap_is_a_typed_error() {
        let dir = temp_dir("seqgap");
        let path = write_segment(&dir, 1, &[request_record(1), request_record(5)]);
        assert!(matches!(
            read_segment(&path, 1),
            Err(CoreError::Protocol(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_appends_scan_back() {
        let dir = temp_dir("sink");
        create_segment(&dir, 1, 0).unwrap();
        let sink = WalSink::attach(&dir, 1, HEADER_LEN, 1).unwrap();
        let rec = request_record(1);
        sink.append(&rec.user, rec.clock_before, &rec.op).unwrap();
        let rec2 = commit_record(2);
        sink.append(&rec2.user, rec2.clock_before, &rec2.op)
            .unwrap();
        assert_eq!(sink.next_seq(), 3);
        let scan = read_segment(&segment_path(&dir, 1), 1).unwrap();
        assert_eq!(scan.records, vec![rec, rec2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_fault_degrades_the_sink() {
        let dir = temp_dir("fault-append");
        create_segment(&dir, 1, 0).unwrap();
        let sink = WalSink::attach(&dir, 1, HEADER_LEN, 1).unwrap();
        sink.arm_fault("append", 2);
        let rec = request_record(1);
        // First append crosses the point without firing.
        sink.append(&rec.user, rec.clock_before, &rec.op).unwrap();
        assert!(!sink.is_degraded());
        let rec2 = commit_record(2);
        let err = sink
            .append(&rec2.user, rec2.clock_before, &rec2.op)
            .unwrap_err();
        assert!(matches!(err, CoreError::Degraded(_)), "{err}");
        assert!(sink.is_degraded());
        assert!(sink.degraded().unwrap().contains("injected"));
        // Later appends are refused with the recorded cause; nothing hit
        // the file (the first record is still the only one).
        let err = sink
            .append(&rec2.user, rec2.clock_before, &rec2.op)
            .unwrap_err();
        assert!(matches!(err, CoreError::Degraded(_)));
        let scan = read_segment(&segment_path(&dir, 1), 1).unwrap();
        assert_eq!(scan.records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_fsync_fault_degrades_and_rotation_recovers() {
        let dir = temp_dir("fault-fsync");
        create_segment(&dir, 1, 0).unwrap();
        let sink = WalSink::attach(&dir, 1, HEADER_LEN, 1).unwrap();
        sink.arm_fault("fsync", 1);
        let rec = request_record(1);
        let err = sink
            .append(&rec.user, rec.clock_before, &rec.op)
            .unwrap_err();
        assert!(matches!(err, CoreError::Degraded(_)), "{err}");
        assert!(sink.is_degraded());
        // The sequence number did not advance past the failed record.
        assert_eq!(sink.next_seq(), 1);
        // Rotating onto a fresh generation clears degraded mode.
        create_segment(&dir, 2, 0).unwrap();
        sink.switch_to(2).unwrap();
        assert!(!sink.is_degraded());
        sink.append(&rec.user, rec.clock_before, &rec.op).unwrap();
        assert_eq!(sink.next_seq(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_env_parses_like_kill_spec() {
        let f = IoFaultInjector::new("rotate", 3);
        assert!(!f.fires("append"));
        assert!(!f.fires("rotate"));
        assert!(!f.fires("rotate"));
        assert!(f.fires("rotate"));
        assert!(!f.fires("rotate"));
    }

    #[test]
    fn current_pointer_roundtrip() {
        let dir = temp_dir("current");
        assert_eq!(read_current(&dir).unwrap(), None);
        write_current(&dir, 3).unwrap();
        assert_eq!(read_current(&dir).unwrap(), Some(3));
        std::fs::write(current_path(&dir), "not-a-gen").unwrap();
        assert!(matches!(read_current(&dir), Err(CoreError::Protocol(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
