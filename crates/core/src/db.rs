//! The OrpheusDB instance: CVD catalog, checkout/commit/diff, versioned
//! queries, and the partition optimizer hook (Figure 2's middleware,
//! end to end).

use std::collections::HashMap;

use orpheus_engine::{Database, QueryResult, Schema, Value};

use crate::access::AccessController;
use crate::batch::{BatchPlan, BatchRouter, ShardKey};
use crate::csv;
use crate::cvd::{Cvd, VersionMeta};
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::{self, CommitData, ModelKind};
use crate::partition_store::{self, CommitPlacement, OptimizeReport};
use crate::query;
use crate::request::{CommandKind, Executor, Request};
use crate::response::{LogEntry, Response};
use crate::staging::{StagedEntry, StagedKind, StagingArea};
use crate::wal::{CommitRecord, WalOp, WalSink};

/// Instance-wide configuration.
#[derive(Debug, Clone)]
pub struct OrpheusConfig {
    /// Data model for newly created CVDs.
    pub default_model: ModelKind,
    /// Storage threshold γ as a multiple of |R| for `optimize`.
    pub gamma_factor: f64,
    /// Migration tolerance factor µ.
    pub mu: f64,
}

impl Default for OrpheusConfig {
    fn default() -> OrpheusConfig {
        OrpheusConfig {
            default_model: ModelKind::SplitByRlist,
            gamma_factor: 2.0,
            mu: 1.5,
        }
    }
}

/// Result of a `diff` between two versions.
#[derive(Debug, Clone)]
pub struct VersionDiff {
    /// Records (attribute values) present in the first version only.
    pub only_in_first: Vec<Vec<Value>>,
    /// Records present in the second version only.
    pub only_in_second: Vec<Vec<Value>>,
}

/// A dataset version control system bolted onto a relational engine.
#[derive(Debug, Clone, Default)]
pub struct OrpheusDB {
    /// The backing relational database. Public: users are free to run
    /// arbitrary SQL against staged tables, exactly as the paper intends.
    pub engine: Database,
    pub(crate) cvds: HashMap<String, Cvd>,
    pub(crate) staging: StagingArea,
    pub access: AccessController,
    pub config: OrpheusConfig,
    pub(crate) clock: u64,
    /// Write-ahead log sink, when the instance was opened through
    /// [`crate::recovery::open`]. Every successful mutating operation
    /// appends (and fsyncs) a record here before returning; `None` means
    /// durability is snapshot-only, exactly as before the WAL existed.
    pub(crate) wal: Option<WalSink>,
}

impl OrpheusDB {
    pub fn new() -> OrpheusDB {
        OrpheusDB::default()
    }

    pub fn with_config(config: OrpheusConfig) -> OrpheusDB {
        OrpheusDB {
            config,
            ..OrpheusDB::default()
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Append one record to the write-ahead log (no-op without one).
    /// Called *after* the in-memory apply succeeded and *before* the
    /// operation returns: the fsync inside [`WalSink::append`] is what
    /// makes the acknowledgement durable. `clock_before` is the logical
    /// clock captured before the op's first tick, so replay can pin it.
    fn wal_append(&self, clock_before: u64, op: &WalOp) -> Result<()> {
        match &self.wal {
            Some(sink) => sink.append(self.access.whoami(), clock_before, op),
            None => Ok(()),
        }
    }

    /// Whether mutations are being logged (used to skip capturing
    /// record material on the hot path when they are not).
    fn wal_armed(&self) -> bool {
        self.wal.is_some()
    }

    /// Refuse a mutation up front while the WAL sink is degraded (an
    /// earlier append or fsync failed). Checking *before* the in-memory
    /// apply is what keeps degraded mode torn-state-free: memory never
    /// advances past the durable log by more than the single operation
    /// whose append failure triggered degradation. Reads and checkouts
    /// skip this check and keep serving.
    fn ensure_writable(&self) -> Result<()> {
        match &self.wal {
            Some(sink) => match sink.degraded() {
                Some(why) => Err(CoreError::Degraded(why)),
                None => Ok(()),
            },
            None => Ok(()),
        }
    }

    /// The recorded I/O failure when the instance is in read-only
    /// degraded mode, `None` while healthy (or without a WAL).
    pub fn degraded(&self) -> Option<String> {
        self.wal.as_ref().and_then(|sink| sink.degraded())
    }

    // -- catalog --------------------------------------------------------------

    pub fn cvd(&self, name: &str) -> Result<&Cvd> {
        lookup(&self.cvds, name)
    }

    /// Register a fully-built CVD whose backing tables already exist in the
    /// engine. This is the bulk-import path used by the benchmark harness
    /// and workload loaders; normal ingestion goes through
    /// [`OrpheusDB::init_cvd`] + [`OrpheusDB::commit`].
    pub fn import_cvd(&mut self, cvd: Cvd) -> Result<()> {
        let key = cvd.name.clone();
        if self.cvds.contains_key(&key) {
            return Err(CoreError::CvdExists(key));
        }
        for t in model::backing_tables(&cvd) {
            if !self.engine.has_table(&t) {
                return Err(CoreError::Invalid(format!(
                    "cannot import {key}: backing table {t} is missing"
                )));
            }
        }
        self.clock = self
            .clock
            .max(cvd.versions.iter().map(|m| m.commit_t).max().unwrap_or(0));
        self.cvds.insert(key, cvd);
        Ok(())
    }

    /// Detach one CVD — its catalog entry, backing tables, and staged
    /// artifacts — into a standalone single-CVD instance. The inverse of
    /// [`OrpheusDB::absorb`]; together they are the shard construction
    /// primitives behind [`crate::SharedOrpheusDB`]'s per-CVD locking.
    ///
    /// Tables are *moved*, not copied: row data changes owner without
    /// being cloned. Staged tables registered for other CVDs are never
    /// claimed, even when their names happen to share this CVD's
    /// `<cvd>__` prefix.
    pub fn detach_cvd(&mut self, name: &str) -> Result<OrpheusDB> {
        let key = name.to_ascii_lowercase();
        let cvd = self
            .cvds
            .remove(&key)
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))?;
        let mut shard = OrpheusDB {
            access: self.access.clone(),
            config: self.config.clone(),
            clock: self.clock,
            // Shards share the sink: shard-level mutations append inside
            // the shard lock.
            wal: self.wal.clone(),
            ..OrpheusDB::default()
        };
        // Staged artifacts first, so the prefix claim below can skip
        // staged tables that belong to other CVDs.
        for entry in self.staging.remove_for_cvd(&key) {
            if entry.kind == StagedKind::Table {
                if let Ok(table) = self.engine.take_table(&entry.name) {
                    shard.engine.add_table(table)?;
                }
            }
            shard.staging.register(entry)?;
        }
        // Claim backing tables by the `<cvd>__` naming convention, with a
        // longest-prefix rule so a CVD whose name extends this one (e.g.
        // `a` vs `a__b`) keeps its own tables.
        let prefix = format!("{key}__");
        for t in self.engine.table_names() {
            if !t.starts_with(&prefix) {
                continue;
            }
            let better_claim = self
                .cvds
                .keys()
                .any(|other| other.len() > key.len() && t.starts_with(&format!("{other}__")));
            if better_claim || self.staging.get(&t, StagedKind::Table).is_ok() {
                continue;
            }
            shard.engine.add_table(self.engine.take_table(&t)?)?;
        }
        shard.cvds.insert(key, cvd);
        Ok(shard)
    }

    /// Merge another instance's CVDs, staged artifacts, tables, and user
    /// registry into this one (the inverse of [`OrpheusDB::detach_cvd`]).
    /// Fails on CVD or table name collisions rather than overwriting.
    pub fn absorb(&mut self, mut other: OrpheusDB) -> Result<()> {
        for t in other.engine.table_names() {
            self.engine.add_table(other.engine.take_table(&t)?)?;
        }
        for (key, cvd) in other.cvds.drain() {
            if self.cvds.contains_key(&key) {
                return Err(CoreError::CvdExists(key));
            }
            self.cvds.insert(key, cvd);
        }
        for entry in other.staging.drain() {
            self.staging.register(entry)?;
        }
        for user in other.access.users() {
            self.access.ensure_user(&user)?;
        }
        self.clock = self.clock.max(other.clock);
        Ok(())
    }

    /// `ls`: names of all CVDs.
    pub fn ls(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cvds.keys().cloned().collect();
        names.sort();
        names
    }

    /// `drop`: remove a CVD and all of its backing tables.
    pub fn drop_cvd(&mut self, name: &str) -> Result<()> {
        self.ensure_writable()?;
        let cvd = self
            .cvds
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))?;
        model::drop_storage(&mut self.engine, &cvd);
        let _ = self.engine.drop_table(&cvd.meta_table());
        let _ = self.engine.drop_table(&cvd.attr_table());
        if let Some(state) = &cvd.partition {
            for k in 0..state.num_partitions {
                let _ = self
                    .engine
                    .drop_table(&format!("{}__g{}p{}_data", cvd.name, state.generation, k));
                let _ = self
                    .engine
                    .drop_table(&format!("{}__g{}p{}_rlist", cvd.name, state.generation, k));
            }
        }
        self.wal_append(
            self.clock,
            &WalOp::Request(Request::Drop(crate::request::DropCvd {
                cvd: name.to_string(),
            })),
        )?;
        Ok(())
    }

    // -- init -----------------------------------------------------------------

    /// Create a CVD from initial rows (version 1). `rows` contain data
    /// attribute values only (no rid).
    pub fn init_cvd(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Vec<Value>>,
        model: Option<ModelKind>,
    ) -> Result<Vid> {
        self.ensure_writable()?;
        let key = name.to_ascii_lowercase();
        if self.cvds.contains_key(&key) {
            return Err(CoreError::CvdExists(name.to_string()));
        }
        let model = model.unwrap_or(self.config.default_model);
        let clock_before = self.clock;
        // The rows are consumed below; capture the replayable request up
        // front (only when a WAL is attached — the clone is the price of
        // durability, not of the default path).
        let wal_op = self.wal_armed().then(|| {
            WalOp::Request(Request::Init(crate::request::Init {
                cvd: name.to_string(),
                schema: schema.clone(),
                rows: rows.clone(),
                model: Some(model),
            }))
        });
        let mut cvd = Cvd::new(name, schema, model);
        model::init_storage(&mut self.engine, &cvd)?;
        cvd.create_meta_tables(&mut self.engine)?;

        check_pk_duplicates(&cvd.schema, rows.iter().map(|r| r.as_slice()))?;
        let rids = cvd.alloc_rids(rows.len());
        let all_records: Vec<(i64, Vec<Value>)> = rids.iter().copied().zip(rows).collect();
        let data = CommitData {
            vid: Vid(1),
            rlist: rids.clone(),
            kept: Vec::new(),
            new_records: all_records.clone(),
            all_records,
            base: None,
            deleted_from_base: Vec::new(),
        };
        model::persist_commit(&mut self.engine, &cvd, &data, true)?;
        let commit_t = self.tick();
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid: Vid(1),
            parents: Vec::new(),
            parent_weights: Vec::new(),
            checkout_t: None,
            commit_t,
            message: "init".to_string(),
            attributes,
            num_records: rids.len() as u64,
            base: None,
        });
        cvd.version_rids.push(std::sync::Arc::new(rids));
        cvd.sync_meta_row(&mut self.engine, Vid(1))?;
        self.cvds.insert(key, cvd);
        if let Some(op) = wal_op {
            self.wal_append(clock_before, &op)?;
        }
        Ok(Vid(1))
    }

    /// `init -f`: create a CVD from CSV text plus a schema description.
    pub fn init_cvd_from_csv(
        &mut self,
        name: &str,
        csv_text: &str,
        schema: Schema,
        model: Option<ModelKind>,
    ) -> Result<Vid> {
        let (header, raw) = csv::parse_csv(csv_text)?;
        let rows = csv::typed_rows(&schema, &header, &raw)?;
        self.init_cvd(name, schema, rows, model)
    }

    // -- checkout ---------------------------------------------------------------

    /// `checkout [cvd] -v vids -t table`: materialize one or more versions
    /// into a fresh table. Multiple versions merge with precedence-based
    /// primary-key conflict resolution (Section 2.2).
    ///
    /// The CVD is borrowed in place — only its name is copied for the
    /// staging entry; `version_rids` is never cloned on this path.
    pub fn checkout(&mut self, cvd_name: &str, vids: &[Vid], table: &str) -> Result<()> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        if self.engine.has_table(table) {
            return Err(CoreError::Invalid(format!("table {table} already exists")));
        }
        let cvd = lookup(&self.cvds, cvd_name)?;
        for v in vids {
            cvd.check_version(*v)?;
        }
        if vids.len() == 1 {
            if cvd.partition.is_some() {
                partition_store::checkout_partitioned(&mut self.engine, cvd, vids[0], table)?;
            } else {
                model::checkout_into(&mut self.engine, cvd, vids[0], table)?;
            }
        } else {
            let rows = merged_rows(&mut self.engine, cvd, vids)?;
            let schema = cvd.staged_schema();
            self.engine.create_table(table, schema)?;
            model::insert_rows_bulk(&mut self.engine, table, rows)?;
        }
        let cvd_key = cvd.name.clone();
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: table.to_string(),
            cvd: cvd_key,
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Table,
        })?;
        Ok(())
    }

    /// `checkout -f`: export version(s) as CSV text (the caller writes the
    /// file; keeping I/O outside makes the API testable).
    pub fn checkout_csv(&mut self, cvd_name: &str, vids: &[Vid], path: &str) -> Result<String> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        let cvd = lookup(&self.cvds, cvd_name)?;
        for v in vids {
            cvd.check_version(*v)?;
        }
        let rows = merged_rows(&mut self.engine, cvd, vids)?;
        let text = csv::to_csv(&cvd.staged_schema(), &rows);
        let cvd_key = cvd.name.clone();
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: path.to_string(),
            cvd: cvd_key,
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Csv,
        })?;
        Ok(text)
    }

    // -- commit -----------------------------------------------------------------

    /// `commit -t table -m msg`: add the staged table back to its CVD as a
    /// new version.
    pub fn commit(&mut self, table: &str, message: &str) -> Result<Vid> {
        self.ensure_writable()?;
        let entry = self.staging.get(table, StagedKind::Table)?.clone();
        self.access.check_owner(&entry.owner, table)?;
        // Test/bench hook: hold this commit open mid-flight (under the
        // shard write lock when called through the concurrent layer) so
        // MVCC snapshot reads can be demonstrated deterministically.
        crate::concurrent::hold_commit_if_gated(table);
        let staged_schema = self.engine.table(table)?.schema.clone();
        let rows = self.engine.table(table)?.rows().to_vec();
        let clock_before = self.clock;
        // Staged edits happen through raw SQL the log never sees, so the
        // record materializes the final rows (captured only when logging).
        let wal_rows = self.wal_armed().then(|| rows.clone());
        let vid = self.commit_rows(&entry, &staged_schema, rows, message)?;
        self.engine.drop_table(table)?;
        self.staging.remove(table, StagedKind::Table)?;
        if let Some(rows) = wal_rows {
            self.wal_append(
                clock_before,
                &WalOp::Commit(CommitRecord {
                    cvd: entry.cvd,
                    staged_name: entry.name,
                    kind: entry.kind,
                    parents: entry.parents,
                    owner: entry.owner,
                    created_at: entry.created_at,
                    schema: staged_schema,
                    rows,
                    message: message.to_string(),
                    vid,
                }),
            )?;
        }
        Ok(vid)
    }

    /// Abandon a staged table without committing: drops the table and its
    /// provenance entry (the inverse of checkout).
    pub fn discard(&mut self, table: &str) -> Result<()> {
        self.ensure_writable()?;
        let entry = self.staging.get(table, StagedKind::Table)?.clone();
        self.access.check_owner(&entry.owner, table)?;
        self.engine.drop_table(table)?;
        self.staging.remove(table, StagedKind::Table)?;
        self.wal_append(
            self.clock,
            &WalOp::Request(Request::Discard(crate::request::Discard {
                table: table.to_string(),
            })),
        )?;
        Ok(())
    }

    /// `commit -f csv -m msg [-s schema]`: commit CSV text previously
    /// exported with [`OrpheusDB::checkout_csv`].
    pub fn commit_csv(
        &mut self,
        path: &str,
        csv_text: &str,
        message: &str,
        schema_text: Option<&str>,
    ) -> Result<Vid> {
        self.ensure_writable()?;
        let entry = self.staging.get(path, StagedKind::Csv)?.clone();
        self.access.check_owner(&entry.owner, path)?;
        let cvd = self.cvd(&entry.cvd)?;
        // The staged schema is rid + data attributes; an explicit schema
        // file (the -s flag) overrides the attribute part.
        let staged_schema = match schema_text {
            Some(text) => {
                let user_schema = csv::parse_schema_file(text)?;
                let mut cols = vec![orpheus_engine::Column::new(
                    "rid",
                    orpheus_engine::DataType::Int,
                )];
                cols.extend(user_schema.columns);
                Schema::new(cols)
            }
            None => cvd.staged_schema(),
        };
        let (header, raw) = csv::parse_csv(csv_text)?;
        let rows = csv::typed_rows(&staged_schema, &header, &raw)?;
        let clock_before = self.clock;
        let wal_rows = self.wal_armed().then(|| rows.clone());
        let vid = self.commit_rows(&entry, &staged_schema, rows, message)?;
        self.staging.remove(path, StagedKind::Csv)?;
        if let Some(rows) = wal_rows {
            self.wal_append(
                clock_before,
                &WalOp::Commit(CommitRecord {
                    cvd: entry.cvd,
                    staged_name: entry.name,
                    kind: entry.kind,
                    parents: entry.parents,
                    owner: entry.owner,
                    created_at: entry.created_at,
                    schema: staged_schema,
                    rows,
                    message: message.to_string(),
                    vid,
                }),
            )?;
        }
        Ok(vid)
    }

    /// Shared commit core: diff staged rows against the parent versions and
    /// persist a new version (the no-cross-version-diff rule of §2.2).
    ///
    /// The CVD is never cloned: the diff phase borrows it (and, on the
    /// fast path, the parent rows straight out of the engine's tables via
    /// the rid index), and only then is the catalog entry mutated in
    /// place. Parent overlaps are computed once per parent by sorted-merge
    /// and reused for both base selection and the stored weights.
    fn commit_rows(
        &mut self,
        entry: &StagedEntry,
        staged_schema: &Schema,
        rows: Vec<Vec<Value>>,
        message: &str,
    ) -> Result<Vid> {
        let cvd_key = entry.cvd.to_ascii_lowercase();
        // Apply any schema evolution first (Section 3.3).
        self.apply_schema_changes(&entry.cvd, staged_schema)?;
        let cvd = lookup(&self.cvds, &cvd_key)?;
        let vid = Vid(cvd.num_versions() as u64 + 1);

        // Staged rows → (Option<rid>, values in cvd-schema order).
        let width = cvd.schema.arity();
        let mut staged: Vec<(Option<i64>, Vec<Value>)> = Vec::with_capacity(rows.len());
        let col_map: Vec<Option<usize>> = cvd
            .schema
            .columns
            .iter()
            .map(|c| {
                staged_schema
                    .columns
                    .iter()
                    .position(|sc| sc.name.eq_ignore_ascii_case(&c.name))
            })
            .collect();
        for row in rows {
            let rid = match row.first() {
                Some(Value::Int(r)) => Some(*r),
                Some(Value::Null) | None => None,
                Some(other) => {
                    return Err(CoreError::Invalid(format!(
                        "rid column must be INT or NULL, found {other}"
                    )))
                }
            };
            let mut values = Vec::with_capacity(width);
            for m in &col_map {
                values.push(match m {
                    Some(i) => row.get(*i).cloned().unwrap_or(Value::Null),
                    None => Value::Null,
                });
            }
            staged.push((rid, values));
        }

        check_pk_duplicates(&cvd.schema, staged.iter().map(|(_, v)| v.as_slice()))?;

        // Classify: unchanged rows keep their rid, everything else is new.
        // Parent records are looked up by borrowing rows in place through
        // each model's rid-index fast path; only when a parent cannot be
        // fast-read are its rows materialized via the SQL formulation.
        // First parent takes precedence (immutable records make ties
        // value-identical anyway).
        let keep = {
            let mut fast: Option<Vec<Option<i64>>> = None;
            {
                let engine = &self.engine;
                let mut map: HashMap<i64, &[Value]> = HashMap::new();
                let mut ready = true;
                for p in &entry.parents {
                    match model::version_row_refs(engine, cvd, *p)? {
                        Some(list) => {
                            map.reserve(list.len());
                            for (rid, values) in list {
                                map.entry(rid).or_insert(values);
                            }
                        }
                        None => {
                            ready = false;
                            break;
                        }
                    }
                }
                if ready {
                    fast = Some(classify_staged(&staged, |r| map.get(&r).copied()));
                }
            }
            match fast {
                Some(keep) => keep,
                None => {
                    let mut map: HashMap<i64, Vec<Value>> = HashMap::new();
                    for p in &entry.parents {
                        for (rid, values) in model::version_rows(&mut self.engine, cvd, *p)? {
                            map.entry(rid).or_insert(values);
                        }
                    }
                    classify_staged(&staged, |r| map.get(&r).map(|v| v.as_slice()))
                }
            }
        };

        let new_count = keep.iter().filter(|k| k.is_none()).count();
        // Allocate fresh rids on the catalog entry itself (an error later
        // leaves a harmless gap — rids are never reused anyway).
        let fresh = self
            .cvds
            .get_mut(&cvd_key)
            .expect("checked above")
            .alloc_rids(new_count);

        let mut kept = Vec::with_capacity(staged.len() - new_count);
        let mut new_rows: Vec<Vec<Value>> = Vec::with_capacity(new_count);
        let mut all_records: Vec<(i64, Vec<Value>)> = Vec::with_capacity(staged.len());
        for (keep_rid, (_, values)) in keep.into_iter().zip(staged) {
            match keep_rid {
                Some(r) => {
                    kept.push(r);
                    all_records.push((r, values));
                }
                None => new_rows.push(values),
            }
        }
        let new_records: Vec<(i64, Vec<Value>)> = fresh.into_iter().zip(new_rows).collect();
        all_records.extend(new_records.iter().cloned());

        let mut rlist: Vec<i64> = all_records.iter().map(|(r, _)| *r).collect();
        rlist.sort_unstable();

        let cvd = self.cvds.get(&cvd_key).expect("checked above");
        // One sorted-merge per parent; base selection and parent_weights
        // both come from this single pass.
        let parent_weights = cvd.parent_overlaps(&rlist, &entry.parents);
        let base = base_parent(&entry.parents, &parent_weights);
        let deleted_from_base = match base {
            Some(b) => crate::cvd::sorted_difference(cvd.rids_of(b)?, &rlist),
            None => Vec::new(),
        };

        let data = CommitData {
            vid,
            rlist: rlist.clone(),
            kept,
            new_records,
            all_records,
            base,
            deleted_from_base,
        };
        if let Err(e) = model::persist_commit(&mut self.engine, cvd, &data, false) {
            // Undo any partial backing-storage writes so the vid can be
            // reused by a retried commit.
            model::rollback_commit(&mut self.engine, cvd, &data);
            return Err(e);
        }

        let commit_t = self.tick();
        let cvd = self.cvds.get_mut(&cvd_key).expect("checked above");
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid,
            parents: entry.parents.clone(),
            parent_weights,
            checkout_t: Some(entry.created_at),
            commit_t,
            message: message.to_string(),
            attributes,
            num_records: rlist.len() as u64,
            base,
        });
        cvd.version_rids.push(std::sync::Arc::new(rlist));

        // Finalize: metadata row + online partition maintenance
        // (Section 4.3). The version was just published into the live
        // catalog entry (the clone-free path has no scratch copy to throw
        // away), so a failure here must unpublish it everywhere —
        // catalog *and* backing storage — or a half-committed version
        // would answer checkouts and its vid could never be reused.
        let finalize = {
            let cvd = self.cvds.get(&cvd_key).expect("checked above");
            cvd.sync_meta_row(&mut self.engine, vid)
        }
        .and_then(|()| {
            let cvd = self.cvds.get_mut(&cvd_key).expect("checked above");
            if cvd.partition.is_some() {
                let _: CommitPlacement = partition_store::on_commit(&mut self.engine, cvd, vid)?;
            }
            Ok(())
        });
        if let Err(e) = finalize {
            let cvd = self.cvds.get_mut(&cvd_key).expect("checked above");
            cvd.versions.pop();
            cvd.version_rids.pop();
            let cvd = self.cvds.get(&cvd_key).expect("checked above");
            model::rollback_commit(&mut self.engine, cvd, &data);
            partition_store::rollback_placement(&mut self.engine, cvd, vid);
            let _ = self.engine.execute(&format!(
                "DELETE FROM {} WHERE vid = {}",
                cvd.meta_table(),
                vid.0
            ));
            return Err(e);
        }
        Ok(vid)
    }

    /// Re-run a logged commit during WAL replay: the staged rows come
    /// from the record (not from a staged table, which may not exist in
    /// the snapshot), and the resulting version id is asserted against
    /// the one the live commit produced. If the snapshot happened to
    /// capture the staged artifact, it is retired exactly as the live
    /// commit retired it.
    pub(crate) fn replay_commit(&mut self, rec: CommitRecord) -> Result<Vid> {
        let entry = StagedEntry {
            name: rec.staged_name,
            cvd: rec.cvd,
            parents: rec.parents,
            owner: rec.owner,
            created_at: rec.created_at,
            kind: rec.kind,
        };
        let vid = self.commit_rows(&entry, &rec.schema, rec.rows, &rec.message)?;
        if vid != rec.vid {
            return Err(CoreError::Storage(format!(
                "WAL replay diverged: commit of {} produced {vid}, the log recorded {}",
                entry.cvd, rec.vid
            )));
        }
        if self.staging.get(&entry.name, entry.kind).is_ok() {
            if entry.kind == StagedKind::Table {
                let _ = self.engine.drop_table(&entry.name);
            }
            let _ = self.staging.remove(&entry.name, entry.kind);
        }
        Ok(vid)
    }

    /// Evolve the CVD schema to accommodate a staged table (single-pool
    /// scheme of Section 3.3): new attributes are added with NULLs, type
    /// conflicts widen to the more general type. Planned against a borrow
    /// of the CVD (only the schema — never `version_rids` — is copied),
    /// then applied to the engine and the catalog entry.
    fn apply_schema_changes(&mut self, cvd_name: &str, staged_schema: &Schema) -> Result<()> {
        let key = cvd_name.to_ascii_lowercase();
        let cvd = lookup(&self.cvds, &key)?;
        let mut new_schema = cvd.schema.clone();
        let mut changed = false;
        for col in &staged_schema.columns {
            if col.name.eq_ignore_ascii_case("rid") {
                continue;
            }
            match new_schema.column_index(&col.name) {
                Ok(i) => {
                    let old = new_schema.columns[i].dtype;
                    if old != col.dtype {
                        let general = old.generalize(col.dtype).ok_or_else(|| {
                            CoreError::SchemaMismatch(format!(
                                "column {} cannot change from {} to {}",
                                col.name, old, col.dtype
                            ))
                        })?;
                        if general != old {
                            new_schema.columns[i].dtype = general;
                            changed = true;
                            alter_model_column_type(&mut self.engine, cvd, &col.name, general)?;
                        }
                    }
                }
                Err(_) => {
                    // New attribute: extend storage with NULLs.
                    new_schema
                        .columns
                        .push(orpheus_engine::Column::new(col.name.clone(), col.dtype));
                    changed = true;
                    add_model_column(&mut self.engine, cvd, &col.name, col.dtype)?;
                }
            }
        }
        if changed {
            let cvd = self.cvds.get_mut(&key).expect("checked above");
            cvd.schema = new_schema.clone();
            cvd.attrs.intern_schema(&new_schema);
        }
        Ok(())
    }

    // -- diff, queries, optimizer ------------------------------------------------

    /// `diff`: records in one version but not the other (by record id).
    /// Membership resolves against the sorted rlists — no hash sets, no
    /// CVD clone.
    pub fn diff(&mut self, cvd_name: &str, a: Vid, b: Vid) -> Result<VersionDiff> {
        let cvd = lookup(&self.cvds, cvd_name)?;
        cvd.check_version(a)?;
        cvd.check_version(b)?;
        let rows_a = model::version_rows(&mut self.engine, cvd, a)?;
        let rows_b = model::version_rows(&mut self.engine, cvd, b)?;
        let rids_a = cvd.rids_of(a)?;
        let rids_b = cvd.rids_of(b)?;
        Ok(VersionDiff {
            only_in_first: rows_a
                .into_iter()
                .filter(|(r, _)| rids_b.binary_search(r).is_err())
                .map(|(_, v)| v)
                .collect(),
            only_in_second: rows_b
                .into_iter()
                .filter(|(r, _)| rids_a.binary_search(r).is_err())
                .map(|(_, v)| v)
                .collect(),
        })
    }

    /// `run`: execute SQL with the versioned extensions (`VERSION n OF CVD
    /// x`, `CVD x`) translated to plain SQL (Section 2.2).
    pub fn run(&mut self, sql: &str) -> Result<QueryResult> {
        let translated = query::translate(self, sql)?;
        Ok(self.engine.execute(&translated)?)
    }

    /// `optimize`: run the partition optimizer on a CVD.
    pub fn optimize(&mut self, cvd_name: &str) -> Result<OptimizeReport> {
        let (gamma, mu) = (self.config.gamma_factor, self.config.mu);
        self.optimize_with(cvd_name, gamma, mu)
    }

    /// `optimize` with explicit parameters (storage threshold γ factor and
    /// tolerance µ).
    pub fn optimize_with(
        &mut self,
        cvd_name: &str,
        gamma_factor: f64,
        mu: f64,
    ) -> Result<OptimizeReport> {
        self.ensure_writable()?;
        let clock_before = self.clock;
        let cvd = lookup_mut(&mut self.cvds, cvd_name)?;
        let report = partition_store::optimize(&mut self.engine, cvd, gamma_factor, mu)?;
        self.wal_append(
            clock_before,
            &WalOp::Request(Request::Optimize(crate::request::Optimize {
                cvd: cvd_name.to_string(),
                gamma: Some(gamma_factor),
                mu: Some(mu),
                weights: Vec::new(),
            })),
        )?;
        Ok(report)
    }

    /// `optimize` for a skewed workload (Appendix C.2): `freqs` maps
    /// versions to checkout frequencies; versions not listed default to 1.
    /// The returned report's `cavg` is the *weighted* checkout cost.
    pub fn optimize_weighted(
        &mut self,
        cvd_name: &str,
        freqs: &[(Vid, u64)],
    ) -> Result<OptimizeReport> {
        let (gamma, mu) = (self.config.gamma_factor, self.config.mu);
        self.optimize_weighted_with(cvd_name, freqs, gamma, mu)
    }

    /// [`OrpheusDB::optimize_weighted`] with explicit γ factor and µ.
    pub fn optimize_weighted_with(
        &mut self,
        cvd_name: &str,
        freqs: &[(Vid, u64)],
        gamma_factor: f64,
        mu: f64,
    ) -> Result<OptimizeReport> {
        self.ensure_writable()?;
        let clock_before = self.clock;
        let cvd = lookup_mut(&mut self.cvds, cvd_name)?;
        let mut full = vec![1u64; cvd.num_versions()];
        for &(vid, f) in freqs {
            cvd.check_version(vid)?;
            full[vid.index()] = f;
        }
        let report =
            partition_store::optimize_weighted(&mut self.engine, cvd, &full, gamma_factor, mu)?;
        self.wal_append(
            clock_before,
            &WalOp::Request(Request::Optimize(crate::request::Optimize {
                cvd: cvd_name.to_string(),
                gamma: Some(gamma_factor),
                mu: Some(mu),
                weights: freqs.to_vec(),
            })),
        )?;
        Ok(report)
    }

    /// Records of one version (rid + attribute values), for tooling.
    pub fn version_rows(&mut self, cvd_name: &str, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
        let cvd = lookup(&self.cvds, cvd_name)?;
        model::version_rows(&mut self.engine, cvd, vid)
    }

    /// Total model storage for a CVD in bytes (Figure 3a's metric).
    pub fn storage_bytes(&self, cvd_name: &str) -> Result<u64> {
        let cvd = self.cvd(cvd_name)?;
        Ok(model::storage_bytes(&self.engine, cvd))
    }

    /// Storage of the partitioned layout, when present (Figures 12b/13b).
    pub fn partitioned_storage_bytes(&self, cvd_name: &str) -> Result<u64> {
        let cvd = self.cvd(cvd_name)?;
        Ok(partition_store::partition_storage_bytes(&self.engine, cvd))
    }

    /// Staged artifacts (for `ls`-style tooling and tests).
    pub fn staged(&self) -> Vec<&StagedEntry> {
        self.staging.list()
    }

    /// `log`: the version history of a CVD as typed entries.
    pub fn log_entries(&self, cvd_name: &str) -> Result<Vec<LogEntry>> {
        let cvd = self.cvd(cvd_name)?;
        Ok(cvd
            .versions
            .iter()
            .map(|m| LogEntry {
                vid: m.vid,
                parents: m.parents.clone(),
                commit_t: m.commit_t,
                num_records: m.num_records,
                message: m.message.clone(),
            })
            .collect())
    }

    // -- batching ---------------------------------------------------------------

    /// Execute one request of a batch against this instance: the
    /// shared-scan checkout fast path when `plan` says the scan is reused
    /// ([`BatchPlan::shared_scans`]), the ordinary [`Executor::execute`]
    /// otherwise — with `cache` invalidated first whenever the request
    /// could change version contents ([`invalidates_shared_scans`]). Both
    /// the [`OrpheusDB`] batch override and the concurrent executor's
    /// per-shard sub-batches run through this, so a batch coalesces
    /// version-row scans whichever executor drives it.
    ///
    /// Sharing is only engaged where the scan is the dominant cost:
    /// multi-version table checkouts (the version merge happens exactly
    /// once per batch) and CSV exports (no table materialization to pay
    /// for). A *single-version table* checkout goes through the plain
    /// rid→slot fast path even inside a batch: measured on the storm
    /// workloads, caching its rows costs more (row-set clones) than the
    /// already-index-backed scan a cache hit would save — see
    /// [`ScanCache`].
    pub(crate) fn execute_batch_step(
        &mut self,
        plan: &BatchPlan,
        cache: &mut ScanCache,
        request: Request,
    ) -> Result<Response> {
        match request {
            Request::Checkout(c)
                if c.versions.len() > 1 && plan.shared_scans(&c.cvd, &c.versions) > 1 =>
            {
                self.checkout_shared_scan(cache, &c.cvd, &c.versions, &c.table)
                    .map(|()| Response::CheckedOut {
                        cvd: c.cvd,
                        versions: c.versions,
                        table: c.table,
                    })
            }
            Request::CheckoutCsv(c) if plan.shared_scans(&c.cvd, &c.versions) > 1 => self
                .checkout_csv_shared_scan(cache, &c.cvd, &c.versions, &c.path)
                .map(|csv| Response::CheckedOutCsv {
                    cvd: c.cvd,
                    versions: c.versions,
                    path: c.path,
                    csv,
                }),
            other => {
                if invalidates_shared_scans(&other) {
                    cache.clear();
                }
                self.execute(other)
            }
        }
    }

    /// Checkout that reuses an already-materialized version-row scan from
    /// `cache` (seeding it on first use — its callers only route
    /// multi-version checkouts here, whose merged rows must be
    /// materialized anyway) instead of re-running the version merge.
    /// Validation (name availability, CVD and version existence, staging
    /// registration) is identical to [`OrpheusDB::checkout`]; only the row
    /// source differs, and the rows themselves are identical whichever
    /// path produced them.
    fn checkout_shared_scan(
        &mut self,
        cache: &mut ScanCache,
        cvd_name: &str,
        vids: &[Vid],
        table: &str,
    ) -> Result<()> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        if self.engine.has_table(table) {
            return Err(CoreError::Invalid(format!("table {table} already exists")));
        }
        let cvd = lookup(&self.cvds, cvd_name)?;
        for v in vids {
            cvd.check_version(*v)?;
        }
        let rows = scan_cached(&mut self.engine, cache, cvd, vids)?;
        let schema = cvd.staged_schema();
        self.engine.create_table(table, schema)?;
        model::insert_rows_bulk(&mut self.engine, table, rows)?;
        let cvd_key = cvd.name.clone();
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: table.to_string(),
            cvd: cvd_key,
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Table,
        })?;
        Ok(())
    }

    /// CSV-export variant of [`OrpheusDB::checkout_shared_scan`].
    fn checkout_csv_shared_scan(
        &mut self,
        cache: &mut ScanCache,
        cvd_name: &str,
        vids: &[Vid],
        path: &str,
    ) -> Result<String> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        let cvd = lookup(&self.cvds, cvd_name)?;
        for v in vids {
            cvd.check_version(*v)?;
        }
        let rows = scan_cached(&mut self.engine, cache, cvd, vids)?;
        let text = csv::to_csv(&cvd.staged_schema(), &rows);
        let cvd_key = cvd.name.clone();
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: path.to_string(),
            cvd: cvd_key,
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Csv,
        })?;
        Ok(text)
    }

    /// Persist the whole instance (engine data + middleware state) to a
    /// checksummed snapshot file. See [`crate::persist`].
    pub fn save_to(&self, path: &std::path::Path) -> Result<()> {
        crate::persist::save(self, path)
    }

    /// Restore an instance previously saved with [`OrpheusDB::save_to`].
    pub fn load_from(path: &std::path::Path) -> Result<OrpheusDB> {
        crate::persist::load(path)
    }
}

/// The single-threaded executor: every typed command maps onto the
/// corresponding `OrpheusDB` method. [`crate::Session`] implements the
/// same trait over a shared instance, so CLI, REPL, examples, benches, and
/// tests all drive one bus.
impl Executor for OrpheusDB {
    fn execute(&mut self, request: Request) -> Result<Response> {
        match request {
            Request::Init(r) => {
                let version = self.init_cvd(&r.cvd, r.schema, r.rows, r.model)?;
                Ok(Response::Initialized {
                    cvd: r.cvd,
                    version,
                })
            }
            Request::InitFromCsv(r) => {
                let schema = crate::csv::parse_schema_file(&r.schema_text)?;
                let version = self.init_cvd_from_csv(&r.cvd, &r.csv, schema, r.model)?;
                Ok(Response::Initialized {
                    cvd: r.cvd,
                    version,
                })
            }
            Request::Checkout(r) => {
                self.checkout(&r.cvd, &r.versions, &r.table)?;
                Ok(Response::CheckedOut {
                    cvd: r.cvd,
                    versions: r.versions,
                    table: r.table,
                })
            }
            Request::CheckoutCsv(r) => {
                let csv = self.checkout_csv(&r.cvd, &r.versions, &r.path)?;
                Ok(Response::CheckedOutCsv {
                    cvd: r.cvd,
                    versions: r.versions,
                    path: r.path,
                    csv,
                })
            }
            Request::Commit(r) => {
                let version = self.commit(&r.table, &r.message)?;
                Ok(Response::Committed {
                    target: r.table,
                    version,
                })
            }
            Request::CommitCsv(r) => {
                let version =
                    self.commit_csv(&r.path, &r.csv, &r.message, r.schema_text.as_deref())?;
                Ok(Response::Committed {
                    target: r.path,
                    version,
                })
            }
            Request::Diff(r) => {
                let diff = self.diff(&r.cvd, r.from, r.to)?;
                Ok(Response::Diffed {
                    cvd: r.cvd,
                    from: r.from,
                    to: r.to,
                    diff,
                })
            }
            Request::Run(r) => Ok(Response::Rows(self.run(&r.sql)?)),
            Request::Ls => Ok(Response::CvdList(self.ls())),
            Request::Log(r) => {
                let entries = self.log_entries(&r.cvd)?;
                Ok(Response::Log {
                    cvd: r.cvd,
                    entries,
                })
            }
            Request::Drop(r) => {
                self.drop_cvd(&r.cvd)?;
                Ok(Response::Dropped { cvd: r.cvd })
            }
            Request::Optimize(r) => {
                let gamma = r.gamma.unwrap_or(self.config.gamma_factor);
                let mu = r.mu.unwrap_or(self.config.mu);
                let report = if r.weights.is_empty() {
                    self.optimize_with(&r.cvd, gamma, mu)?
                } else {
                    self.optimize_weighted_with(&r.cvd, &r.weights, gamma, mu)?
                };
                Ok(Response::Optimized { cvd: r.cvd, report })
            }
            Request::CreateUser(r) => {
                self.ensure_writable()?;
                self.access.create_user(&r.user)?;
                self.wal_append(self.clock, &WalOp::Request(Request::CreateUser(r.clone())))?;
                Ok(Response::UserCreated { user: r.user })
            }
            Request::Login(r) => {
                self.ensure_writable()?;
                self.access.login(&r.user)?;
                self.wal_append(self.clock, &WalOp::Request(Request::Login(r.clone())))?;
                Ok(Response::LoggedIn { user: r.user })
            }
            Request::Whoami => Ok(Response::CurrentUser {
                user: self.access.whoami().to_string(),
            }),
            Request::Discard(r) => {
                self.discard(&r.table)?;
                Ok(Response::Discarded { table: r.table })
            }
        }
    }

    /// Batched execution with shared version-row scans: when the batch
    /// checks out the same version set of a CVD more than once
    /// ([`BatchPlan::shared_scans`]), the rows are scanned once and every
    /// later checkout materializes from the cached scan, skipping the
    /// model read path entirely. Requests still execute in submission
    /// order — single-threaded, there is nothing to win by reordering — so
    /// the results equal the sequential [`Executor::execute`] loop
    /// result-for-result. The cache is dropped whenever a request could
    /// change what a version's rows look like (commits and their schema
    /// evolution, CVD create/drop, optimize, non-`SELECT` SQL).
    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        let requests: Vec<Request> = requests.into_iter().collect();
        let plan = BatchPlan::build(&requests, self);
        let mut cache = ScanCache::new();
        requests
            .into_iter()
            .map(|request| self.execute_batch_step(&plan, &mut cache, request))
            .collect()
    }
}

/// Key of one shared scan: (lower-cased CVD, version list).
pub(crate) type ScanKey = (String, Vec<Vid>);

/// The shared version-row scans of one batch: [`ScanKey`] → merged rows,
/// rid first. Dropped when the batch ends or a request invalidates it.
///
/// The cache is only fed where materializing an entry is (close to) free
/// because the merged rows exist anyway — multi-version table checkouts
/// and CSV exports — and only consulted on those same paths. Rows of
/// *single-version table* checkouts are deliberately never cached: the
/// rid→slot fast path ([`model::checkout_into`]) copies records straight
/// into the staged table, and measurements on the storm workloads show a
/// cache round-trip (materialize, clone, bulk-insert) costs more than
/// that path ever saves.
#[derive(Debug, Default)]
pub(crate) struct ScanCache {
    rows: HashMap<ScanKey, Vec<Vec<Value>>>,
}

impl ScanCache {
    pub(crate) fn new() -> ScanCache {
        ScanCache::default()
    }

    /// Drop every cached scan (a request changed what versions contain).
    pub(crate) fn clear(&mut self) {
        self.rows.clear();
    }

    fn get(&self, key: &ScanKey) -> Option<&Vec<Vec<Value>>> {
        self.rows.get(key)
    }

    fn insert(&mut self, key: ScanKey, rows: Vec<Vec<Value>>) {
        self.rows.insert(key, rows);
    }
}

/// Routing for [`BatchPlan::build`] on a single-threaded instance. There
/// are no locks to coalesce, so [`OrpheusDB::batch`] consults its plan
/// only for the shared-scan hints — but the routing is still honest
/// (commit/discard resolve through the staging area), so one plan shape
/// serves both executors.
impl BatchRouter for OrpheusDB {
    fn has_cvd(&self, name: &str) -> bool {
        self.cvds.contains_key(&name.to_ascii_lowercase())
    }

    fn staged_shard(&self, name: &str, kind: StagedKind) -> Option<ShardKey> {
        self.staging
            .cvd_of(name, kind)
            .map(|cvd| ShardKey::Cvd(cvd.to_ascii_lowercase()))
    }

    fn sql_shard(&self, _sql: &str) -> Option<ShardKey> {
        // A single-threaded instance runs all SQL in place; grouping it
        // under the auxiliary key keeps plans barrier-free.
        Some(ShardKey::Aux)
    }
}

/// Requests that can change what a version's rows look like, or whether a
/// cached scan's CVD still is the CVD it was scanned from: commits (schema
/// evolution widens or extends every version's staged shape), CVD
/// create/drop (a name can be reused), optimize (repartitions storage),
/// and any SQL that is not a plain `SELECT` (raw SQL can write into a
/// model's backing tables).
fn invalidates_shared_scans(request: &Request) -> bool {
    match request {
        Request::Commit(_)
        | Request::CommitCsv(_)
        | Request::Init(_)
        | Request::InitFromCsv(_)
        | Request::Drop(_)
        | Request::Optimize(_) => true,
        Request::Run(r) => !query::is_select(&r.sql),
        _ => false,
    }
}

fn alter_model_column_type(
    db: &mut Database,
    cvd: &Cvd,
    column: &str,
    new_type: orpheus_engine::DataType,
) -> Result<()> {
    for t in model::backing_tables(cvd) {
        if let Ok(table) = db.table(&t) {
            if table.schema.has_column(column) {
                db.table_mut(&t)?.alter_column_type(column, new_type)?;
            }
        }
    }
    Ok(())
}

fn add_model_column(
    db: &mut Database,
    cvd: &Cvd,
    column: &str,
    dtype: orpheus_engine::DataType,
) -> Result<()> {
    // Only tables that carry data attributes get the new column; version
    // lists (rlist/vlist tables) are unaffected.
    let targets: Vec<String> = match cvd.model {
        ModelKind::CombinedTable => vec![cvd.combined_table()],
        ModelKind::SplitByVlist | ModelKind::SplitByRlist => vec![cvd.data_table()],
        // Per-version tables (TPV, delta) incorporate the new column only in
        // future versions' tables; existing tables stay as-is and reads
        // null-extend.
        ModelKind::TablePerVersion | ModelKind::DeltaBased => vec![],
    };
    for t in targets {
        db.table_mut(&t)?
            .add_column(orpheus_engine::Column::new(column.to_string(), dtype))?;
    }
    Ok(())
}

/// Borrow a CVD from the catalog map by (case-insensitive) name. Free
/// functions over the field — not `&self` methods — so callers can keep
/// `self.engine` mutably borrowed while the CVD is borrowed (disjoint
/// field borrows don't cross method boundaries).
fn lookup<'a>(cvds: &'a HashMap<String, Cvd>, name: &str) -> Result<&'a Cvd> {
    cvds.get(&name.to_ascii_lowercase())
        .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))
}

/// Mutable variant of [`lookup`].
fn lookup_mut<'a>(cvds: &'a mut HashMap<String, Cvd>, name: &str) -> Result<&'a mut Cvd> {
    cvds.get_mut(&name.to_ascii_lowercase())
        .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))
}

/// Merge multiple versions' records with PK precedence (first listed
/// version wins). Dedup is borrow-keyed: the hash is computed over the
/// candidate's PK value slice (rid when there is no PK) and collisions
/// compare element-wise against the rows already merged — no per-row PK
/// tuple allocation.
fn merged_rows(engine: &mut Database, cvd: &Cvd, vids: &[Vid]) -> Result<Vec<Vec<Value>>> {
    let mut out: Vec<Vec<Value>> = Vec::new();
    let has_pk = !cvd.schema.primary_key.is_empty();
    // Versions frozen before a schema evolution read back narrower than
    // the current schema (table-per-version and delta); the merged staged
    // table is always current-width, so NULL-extend on the way in.
    let width = 1 + cvd.schema.columns.len();
    // hash → indices into `out` (rows stored rid-first, so data column `c`
    // of a merged row lives at `c + 1`).
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for &vid in vids {
        for (rid, values) in model::version_rows(engine, cvd, vid)? {
            let hash = if has_pk {
                hash_values(cvd.schema.primary_key.iter().map(|&c| &values[c]))
            } else {
                hash_values(std::iter::once(&Value::Int(rid)))
            };
            let bucket = buckets.entry(hash).or_default();
            let duplicate = bucket.iter().any(|&i| {
                let prev = &out[i];
                if has_pk {
                    cvd.schema
                        .primary_key
                        .iter()
                        .all(|&c| prev[c + 1] == values[c])
                } else {
                    prev[0] == Value::Int(rid)
                }
            });
            if duplicate {
                continue;
            }
            bucket.push(out.len());
            let mut row = Vec::with_capacity(width);
            row.push(Value::Int(rid));
            row.extend(values);
            row.resize(width, Value::Null);
            out.push(row);
        }
    }
    Ok(out)
}

/// The merged rows of `vids`, from `cache` when an earlier checkout of
/// the same version set in this batch already scanned them.
fn scan_cached(
    engine: &mut Database,
    cache: &mut ScanCache,
    cvd: &Cvd,
    vids: &[Vid],
) -> Result<Vec<Vec<Value>>> {
    let key = (cvd.name.to_ascii_lowercase(), vids.to_vec());
    if let Some(rows) = cache.get(&key) {
        return Ok(rows.clone());
    }
    let rows = merged_rows(engine, cvd, vids)?;
    cache.insert(key, rows.clone());
    Ok(rows)
}

/// Hash a sequence of values with the engine's `Value` hashing rules
/// (numerically equal ints and doubles hash identically).
fn hash_values<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// Per staged row: `Some(rid)` when the row carries a rid whose parent
/// record matches it value-for-value (the row is inherited unchanged),
/// `None` when it needs a fresh rid. `lookup` resolves a rid to the parent
/// record's values (possibly narrower than the current schema — older
/// frozen tables — in which case missing trailing attributes match NULL).
fn classify_staged<'a>(
    staged: &[(Option<i64>, Vec<Value>)],
    lookup: impl Fn(i64) -> Option<&'a [Value]>,
) -> Vec<Option<i64>> {
    staged
        .iter()
        .map(|(rid, values)| rid.filter(|r| lookup(*r).is_some_and(|pv| values_match(pv, values))))
        .collect()
}

/// Whether a (possibly narrower) parent record equals a staged row
/// null-extended to the staged width — the comparison the commit core's
/// no-cross-version-diff rule is built on.
fn values_match(parent: &[Value], staged: &[Value]) -> bool {
    if parent.len() > staged.len() {
        return false;
    }
    staged.iter().enumerate().all(|(i, v)| match parent.get(i) {
        Some(p) => p == v,
        None => v.is_null(),
    })
}

/// The base parent for the delta model: the parent sharing the most
/// records with the child, ties broken to the *last* listed — the
/// behavior of the `Iterator::max_by_key` scan it replaces, now fed by
/// one precomputed weight per parent.
pub(crate) fn base_parent(parents: &[Vid], weights: &[u64]) -> Option<Vid> {
    debug_assert_eq!(parents.len(), weights.len());
    let mut best: Option<(usize, u64)> = None;
    for (i, &w) in weights.iter().enumerate() {
        match best {
            Some((_, bw)) if w < bw => {}
            _ => best = Some((i, w)),
        }
    }
    best.map(|(i, _)| parents[i])
}

/// Reject duplicate primary keys among staged rows. Borrow-keyed like
/// [`merged_rows`]: rows are hashed over their PK value slices and
/// compared in place — callers pass borrowed row slices, no copies.
fn check_pk_duplicates<'a>(
    schema: &Schema,
    rows: impl IntoIterator<Item = &'a [Value]>,
) -> Result<()> {
    if schema.primary_key.is_empty() {
        return Ok(());
    }
    let mut buckets: HashMap<u64, Vec<&'a [Value]>> = HashMap::new();
    for row in rows {
        let hash = hash_values(schema.primary_key.iter().map(|&c| &row[c]));
        let bucket = buckets.entry(hash).or_default();
        if bucket
            .iter()
            .any(|prev| schema.primary_key.iter().all(|&c| prev[c] == row[c]))
        {
            let pk: Vec<&Value> = schema.primary_key.iter().map(|&c| &row[c]).collect();
            return Err(CoreError::PrimaryKeyViolation(format!(
                "duplicate key {pk:?}"
            )));
        }
        bucket.push(row);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::{Column, DataType};

    fn protein_schema() -> Schema {
        Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("cooccurrence", DataType::Int),
        ])
        .with_primary_key(&["protein1", "protein2"])
        .unwrap()
    }

    fn protein_rows() -> Vec<Vec<Value>> {
        vec![
            vec!["p1".into(), "p2".into(), Value::Int(53)],
            vec!["p1".into(), "p3".into(), Value::Int(87)],
            vec!["p4".into(), "p5".into(), Value::Int(0)],
        ]
    }

    fn setup() -> OrpheusDB {
        let mut odb = OrpheusDB::new();
        odb.init_cvd("protein", protein_schema(), protein_rows(), None)
            .unwrap();
        odb
    }

    #[test]
    fn init_creates_version_one() {
        let odb = setup();
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.num_versions(), 1);
        assert_eq!(cvd.rids_of(Vid(1)).unwrap().len(), 3);
        assert_eq!(odb.ls(), vec!["protein"]);
    }

    #[test]
    fn checkout_edit_commit_cycle() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "work").unwrap();
        // Modify one record and insert a new one through plain SQL.
        odb.engine
            .execute("UPDATE work SET cooccurrence = 99 WHERE protein2 = 'p2'")
            .unwrap();
        odb.engine
            .execute("INSERT INTO work VALUES (NULL, 'p6', 'p7', 12)")
            .unwrap();
        let v2 = odb.commit("work", "tweak scores").unwrap();
        assert_eq!(v2, Vid(2));
        // The staged table is gone after commit.
        assert!(!odb.engine.has_table("work"));

        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.rids_of(Vid(2)).unwrap().len(), 4);
        // Two records kept, two new (modified + inserted).
        let meta = cvd.meta(Vid(2)).unwrap();
        assert_eq!(meta.parents, vec![Vid(1)]);
        assert_eq!(meta.parent_weights, vec![2]);
        assert_eq!(meta.message, "tweak scores");
    }

    #[test]
    fn immutability_assigns_fresh_rids() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("UPDATE w SET cooccurrence = 1 WHERE protein2 = 'p2'")
            .unwrap();
        odb.commit("w", "m").unwrap();
        let mut seen = std::collections::HashSet::new();
        let cvd = odb.cvd("protein").unwrap();
        for v in [Vid(1), Vid(2)] {
            for r in cvd.rids_of(v).unwrap() {
                seen.insert(*r);
            }
        }
        // 3 original + 1 replacement.
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn commit_rejects_pk_duplicates() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("INSERT INTO w VALUES (NULL, 'p1', 'p2', 1)")
            .unwrap();
        let err = odb.commit("w", "dup").unwrap_err();
        assert!(matches!(err, CoreError::PrimaryKeyViolation(_)));
    }

    #[test]
    fn multi_version_checkout_resolves_pk_conflicts_by_precedence() {
        let mut odb = setup();
        // v2: changes p1-p2's score.
        odb.checkout("protein", &[Vid(1)], "a").unwrap();
        odb.engine
            .execute("UPDATE a SET cooccurrence = 100 WHERE protein2 = 'p2'")
            .unwrap();
        odb.commit("a", "v2").unwrap();
        // Merge checkout listing v2 first: its p1-p2 wins.
        odb.checkout("protein", &[Vid(2), Vid(1)], "merged")
            .unwrap();
        let r = odb
            .engine
            .query("SELECT cooccurrence FROM merged WHERE protein2 = 'p2'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(100));
        // Committing the merge records both parents.
        let v3 = odb.commit("merged", "merge").unwrap();
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.meta(v3).unwrap().parents, vec![Vid(2), Vid(1)]);
    }

    #[test]
    fn merge_checkout_dedups_by_rid_without_primary_key() {
        // No-PK CVDs dedup merged checkouts by rid; shared records appear
        // once, and the first listed version's rows come first.
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut odb = OrpheusDB::new();
        odb.init_cvd(
            "nopk",
            schema,
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            None,
        )
        .unwrap();
        odb.checkout("nopk", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("INSERT INTO w VALUES (NULL, 3)")
            .unwrap();
        odb.commit("w", "v2").unwrap();
        odb.checkout("nopk", &[Vid(2), Vid(1)], "merged").unwrap();
        let r = odb.engine.query("SELECT count(*) FROM merged").unwrap();
        // v2 = {1, 2, 3}, v1 = {1, 2} — union by rid has 3 records.
        assert_eq!(r.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn pk_merge_precedence_with_double_keys() {
        // Doubles hash by numeric value (1 == 1.0 under the engine's
        // rules); the borrow-keyed dedup must land both spellings in one
        // bucket and keep the first listed version's record.
        let schema = Schema::new(vec![
            Column::new("k", DataType::Double),
            Column::new("v", DataType::Int),
        ])
        .with_primary_key(&["k"])
        .unwrap();
        let mut odb = OrpheusDB::new();
        odb.init_cvd(
            "nums",
            schema,
            vec![vec![Value::Double(1.0), Value::Int(10)]],
            None,
        )
        .unwrap();
        odb.checkout("nums", &[Vid(1)], "w").unwrap();
        odb.engine.execute("UPDATE w SET v = 20").unwrap();
        odb.commit("w", "v2").unwrap();
        odb.checkout("nums", &[Vid(2), Vid(1)], "m").unwrap();
        let r = odb.engine.query("SELECT v FROM m").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(20)]]);
    }

    #[test]
    fn diff_reports_both_sides() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("DELETE FROM w WHERE protein1 = 'p4'")
            .unwrap();
        odb.engine
            .execute("INSERT INTO w VALUES (NULL, 'n1', 'n2', 5)")
            .unwrap();
        odb.commit("w", "v2").unwrap();
        let d = odb.diff("protein", Vid(1), Vid(2)).unwrap();
        assert_eq!(d.only_in_first.len(), 1);
        assert_eq!(d.only_in_second.len(), 1);
        assert_eq!(d.only_in_first[0][0], Value::Text("p4".into()));
        assert_eq!(d.only_in_second[0][0], Value::Text("n1".into()));
    }

    #[test]
    fn csv_checkout_commit_roundtrip() {
        let mut odb = setup();
        let text = odb
            .checkout_csv("protein", &[Vid(1)], "/tmp/protein.csv")
            .unwrap();
        assert!(text.starts_with("rid,protein1,protein2,cooccurrence"));
        // Simulate an external edit: add a row without a rid.
        let edited = format!("{text},n8,n9,42\n");
        let v2 = odb
            .commit_csv("/tmp/protein.csv", &edited, "from csv", None)
            .unwrap();
        assert_eq!(v2, Vid(2));
        assert_eq!(odb.cvd("protein").unwrap().rids_of(v2).unwrap().len(), 4);
    }

    #[test]
    fn schema_evolution_adds_and_widens() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        // Add a coexpression column and widen cooccurrence to DOUBLE.
        odb.engine
            .execute("ALTER TABLE w ADD COLUMN coexpression INT")
            .unwrap();
        odb.engine
            .execute("ALTER TABLE w ALTER COLUMN cooccurrence TYPE DOUBLE")
            .unwrap();
        odb.engine
            .execute("UPDATE w SET coexpression = 7 WHERE protein2 = 'p2'")
            .unwrap();
        odb.commit("w", "evolve").unwrap();
        let cvd = odb.cvd("protein").unwrap();
        assert!(cvd.schema.has_column("coexpression"));
        let ci = cvd.schema.column_index("cooccurrence").unwrap();
        assert_eq!(cvd.schema.columns[ci].dtype, DataType::Double);
        // The attribute registry versioned the type change (Figure 5).
        assert!(cvd.attrs.entries().len() >= 5);
        // Old version still reads, with NULL for the new attribute.
        let rows = odb.version_rows("protein", Vid(1)).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn permissions_guard_commits() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "mine").unwrap();
        odb.access.create_user("eve").unwrap();
        odb.access.login("eve").unwrap();
        let err = odb.commit("mine", "steal").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)));
    }

    #[test]
    fn failed_commit_finalize_unpublishes_the_version() {
        // The clone-free commit mutates the live catalog entry; a failure
        // in the finalize phase (metadata row / partition maintenance)
        // must roll the version back out, exactly like the discarded
        // scratch clone used to.
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine.drop_table("protein__meta").unwrap();
        assert!(odb.commit("w", "doomed").is_err());
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.num_versions(), 1);
        assert_eq!(cvd.version_rids.len(), 1);
        assert!(odb.version_rows("protein", Vid(2)).is_err());
        // The staged table survives the failed commit.
        assert!(odb.engine.has_table("w"));
        // Backing storage was rolled back too: once the cause is repaired,
        // the retried commit reuses the vid without colliding with
        // leftovers from the aborted attempt.
        odb.engine
            .execute(
                "CREATE TABLE protein__meta (vid INT PRIMARY KEY, parents INT[], \
                 checkout_t INT, commit_t INT, msg TEXT, attributes INT[], num_records INT)",
            )
            .unwrap();
        let v2 = odb.commit("w", "retry").unwrap();
        assert_eq!(v2, Vid(2));
        assert_eq!(odb.version_rows("protein", Vid(2)).unwrap().len(), 3);
    }

    #[test]
    fn failed_partition_maintenance_keeps_state_and_version_count() {
        let mut odb = setup();
        for i in 0..3 {
            let t = format!("w{i}");
            odb.checkout("protein", &[Vid(i + 1)], &t).unwrap();
            odb.engine
                .execute(&format!(
                    "INSERT INTO {t} VALUES (NULL, 'x{i}', 'y{i}', {i})"
                ))
                .unwrap();
            odb.commit(&t, "grow").unwrap();
        }
        odb.optimize("protein").unwrap();
        odb.checkout("protein", &[Vid(4)], "doomed").unwrap();
        let before = odb.cvd("protein").unwrap().partition.clone().unwrap();
        // Sabotage the partitioned layout so on_commit cannot place the
        // next version whichever branch it takes: joining an existing
        // partition hits a dropped rlist table, opening a new one
        // collides with the pre-created blocker.
        for k in 0..before.num_partitions {
            odb.engine
                .drop_table(&format!("protein__g{}p{}_rlist", before.generation, k))
                .unwrap();
        }
        odb.engine
            .execute(&format!(
                "CREATE TABLE protein__g{}p{}_data (x INT)",
                before.generation, before.num_partitions
            ))
            .unwrap();
        assert!(odb.commit("doomed", "x").is_err());
        let cvd = odb.cvd("protein").unwrap();
        // Version rolled back, partition state restored (not wiped).
        assert_eq!(cvd.num_versions(), 4);
        let after = cvd.partition.as_ref().unwrap();
        assert_eq!(after.assignment, before.assignment);
        assert_eq!(after.generation, before.generation);
        assert_eq!(after.num_partitions, before.num_partitions);
        // Repair the layout and retry: the vid is reusable, nothing left
        // over from the aborted placement collides (the blocker table
        // was cleaned up by the rollback itself).
        for k in 0..before.num_partitions {
            odb.engine
                .execute(&format!(
                    "CREATE TABLE IF NOT EXISTS protein__g{}p{}_rlist \
                     (vid INT PRIMARY KEY, rlist INT[])",
                    before.generation, k
                ))
                .unwrap();
        }
        let v5 = odb.commit("doomed", "retry").unwrap();
        assert_eq!(v5, Vid(5));
        assert_eq!(odb.cvd("protein").unwrap().num_versions(), 5);
    }

    #[test]
    fn drop_cvd_removes_everything() {
        let mut odb = setup();
        odb.drop_cvd("protein").unwrap();
        assert!(odb.ls().is_empty());
        assert!(!odb.engine.has_table("protein__data"));
        assert!(!odb.engine.has_table("protein__meta"));
        assert!(odb.drop_cvd("protein").is_err());
    }

    #[test]
    fn optimize_then_checkout_roundtrip() {
        let mut odb = setup();
        // Build a few versions first.
        for i in 0..4 {
            let t = format!("w{i}");
            odb.checkout("protein", &[Vid(i + 1)], &t).unwrap();
            odb.engine
                .execute(&format!(
                    "INSERT INTO {t} VALUES (NULL, 'x{i}', 'y{i}', {i})"
                ))
                .unwrap();
            odb.commit(&t, "grow").unwrap();
        }
        let report = odb.optimize("protein").unwrap();
        assert!(report.num_partitions >= 1);
        odb.checkout("protein", &[Vid(5)], "post").unwrap();
        let r = odb.engine.query("SELECT count(*) FROM post").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
    }

    #[test]
    fn works_across_all_models() {
        for model in ModelKind::ALL {
            let mut odb = OrpheusDB::new();
            odb.init_cvd("d", protein_schema(), protein_rows(), Some(model))
                .unwrap();
            odb.checkout("d", &[Vid(1)], "w").unwrap();
            odb.engine
                .execute("INSERT INTO w VALUES (NULL, 'z1', 'z2', 9)")
                .unwrap();
            odb.engine
                .execute("DELETE FROM w WHERE protein1 = 'p4'")
                .unwrap();
            let v2 = odb.commit("w", "edit").unwrap();
            let rows = odb.version_rows("d", v2).unwrap();
            assert_eq!(rows.len(), 3, "model {}", model.name());
            let d = odb.diff("d", Vid(1), Vid(2)).unwrap();
            assert_eq!(d.only_in_first.len(), 1, "model {}", model.name());
            assert_eq!(d.only_in_second.len(), 1, "model {}", model.name());
        }
    }
}
