//! The OrpheusDB instance: CVD catalog, checkout/commit/diff, versioned
//! queries, and the partition optimizer hook (Figure 2's middleware,
//! end to end).

use std::collections::{HashMap, HashSet};

use orpheus_engine::{Database, QueryResult, Schema, Value};

use crate::access::AccessController;
use crate::batch::{BatchPlan, BatchRouter, ShardKey};
use crate::csv;
use crate::cvd::{Cvd, VersionMeta};
use crate::error::{CoreError, Result};
use crate::ids::Vid;
use crate::model::{self, CommitData, ModelKind};
use crate::partition_store::{self, CommitPlacement, OptimizeReport};
use crate::query;
use crate::request::{CommandKind, Executor, Request};
use crate::response::{LogEntry, Response};
use crate::staging::{StagedEntry, StagedKind, StagingArea};

/// Instance-wide configuration.
#[derive(Debug, Clone)]
pub struct OrpheusConfig {
    /// Data model for newly created CVDs.
    pub default_model: ModelKind,
    /// Storage threshold γ as a multiple of |R| for `optimize`.
    pub gamma_factor: f64,
    /// Migration tolerance factor µ.
    pub mu: f64,
}

impl Default for OrpheusConfig {
    fn default() -> OrpheusConfig {
        OrpheusConfig {
            default_model: ModelKind::SplitByRlist,
            gamma_factor: 2.0,
            mu: 1.5,
        }
    }
}

/// Result of a `diff` between two versions.
#[derive(Debug, Clone)]
pub struct VersionDiff {
    /// Records (attribute values) present in the first version only.
    pub only_in_first: Vec<Vec<Value>>,
    /// Records present in the second version only.
    pub only_in_second: Vec<Vec<Value>>,
}

/// A dataset version control system bolted onto a relational engine.
#[derive(Debug, Clone, Default)]
pub struct OrpheusDB {
    /// The backing relational database. Public: users are free to run
    /// arbitrary SQL against staged tables, exactly as the paper intends.
    pub engine: Database,
    pub(crate) cvds: HashMap<String, Cvd>,
    pub(crate) staging: StagingArea,
    pub access: AccessController,
    pub config: OrpheusConfig,
    pub(crate) clock: u64,
}

impl OrpheusDB {
    pub fn new() -> OrpheusDB {
        OrpheusDB::default()
    }

    pub fn with_config(config: OrpheusConfig) -> OrpheusDB {
        OrpheusDB {
            config,
            ..OrpheusDB::default()
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    // -- catalog --------------------------------------------------------------

    pub fn cvd(&self, name: &str) -> Result<&Cvd> {
        self.cvds
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))
    }

    fn cvd_mut(&mut self, name: &str) -> Result<&mut Cvd> {
        self.cvds
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))
    }

    /// Register a fully-built CVD whose backing tables already exist in the
    /// engine. This is the bulk-import path used by the benchmark harness
    /// and workload loaders; normal ingestion goes through
    /// [`OrpheusDB::init_cvd`] + [`OrpheusDB::commit`].
    pub fn import_cvd(&mut self, cvd: Cvd) -> Result<()> {
        let key = cvd.name.clone();
        if self.cvds.contains_key(&key) {
            return Err(CoreError::CvdExists(key));
        }
        for t in model::backing_tables(&cvd) {
            if !self.engine.has_table(&t) {
                return Err(CoreError::Invalid(format!(
                    "cannot import {key}: backing table {t} is missing"
                )));
            }
        }
        self.clock = self
            .clock
            .max(cvd.versions.iter().map(|m| m.commit_t).max().unwrap_or(0));
        self.cvds.insert(key, cvd);
        Ok(())
    }

    /// Detach one CVD — its catalog entry, backing tables, and staged
    /// artifacts — into a standalone single-CVD instance. The inverse of
    /// [`OrpheusDB::absorb`]; together they are the shard construction
    /// primitives behind [`crate::SharedOrpheusDB`]'s per-CVD locking.
    ///
    /// Tables are *moved*, not copied: row data changes owner without
    /// being cloned. Staged tables registered for other CVDs are never
    /// claimed, even when their names happen to share this CVD's
    /// `<cvd>__` prefix.
    pub fn detach_cvd(&mut self, name: &str) -> Result<OrpheusDB> {
        let key = name.to_ascii_lowercase();
        let cvd = self
            .cvds
            .remove(&key)
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))?;
        let mut shard = OrpheusDB {
            access: self.access.clone(),
            config: self.config.clone(),
            clock: self.clock,
            ..OrpheusDB::default()
        };
        // Staged artifacts first, so the prefix claim below can skip
        // staged tables that belong to other CVDs.
        for entry in self.staging.remove_for_cvd(&key) {
            if entry.kind == StagedKind::Table {
                if let Ok(table) = self.engine.take_table(&entry.name) {
                    shard.engine.add_table(table)?;
                }
            }
            shard.staging.register(entry)?;
        }
        // Claim backing tables by the `<cvd>__` naming convention, with a
        // longest-prefix rule so a CVD whose name extends this one (e.g.
        // `a` vs `a__b`) keeps its own tables.
        let prefix = format!("{key}__");
        for t in self.engine.table_names() {
            if !t.starts_with(&prefix) {
                continue;
            }
            let better_claim = self
                .cvds
                .keys()
                .any(|other| other.len() > key.len() && t.starts_with(&format!("{other}__")));
            if better_claim || self.staging.get(&t, StagedKind::Table).is_ok() {
                continue;
            }
            shard.engine.add_table(self.engine.take_table(&t)?)?;
        }
        shard.cvds.insert(key, cvd);
        Ok(shard)
    }

    /// Merge another instance's CVDs, staged artifacts, tables, and user
    /// registry into this one (the inverse of [`OrpheusDB::detach_cvd`]).
    /// Fails on CVD or table name collisions rather than overwriting.
    pub fn absorb(&mut self, mut other: OrpheusDB) -> Result<()> {
        for t in other.engine.table_names() {
            self.engine.add_table(other.engine.take_table(&t)?)?;
        }
        for (key, cvd) in other.cvds.drain() {
            if self.cvds.contains_key(&key) {
                return Err(CoreError::CvdExists(key));
            }
            self.cvds.insert(key, cvd);
        }
        for entry in other.staging.drain() {
            self.staging.register(entry)?;
        }
        for user in other.access.users() {
            self.access.ensure_user(&user)?;
        }
        self.clock = self.clock.max(other.clock);
        Ok(())
    }

    /// `ls`: names of all CVDs.
    pub fn ls(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cvds.keys().cloned().collect();
        names.sort();
        names
    }

    /// `drop`: remove a CVD and all of its backing tables.
    pub fn drop_cvd(&mut self, name: &str) -> Result<()> {
        let cvd = self
            .cvds
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| CoreError::CvdNotFound(name.to_string()))?;
        model::drop_storage(&mut self.engine, &cvd);
        let _ = self.engine.drop_table(&cvd.meta_table());
        let _ = self.engine.drop_table(&cvd.attr_table());
        if let Some(state) = &cvd.partition {
            for k in 0..state.num_partitions {
                let _ = self
                    .engine
                    .drop_table(&format!("{}__g{}p{}_data", cvd.name, state.generation, k));
                let _ = self
                    .engine
                    .drop_table(&format!("{}__g{}p{}_rlist", cvd.name, state.generation, k));
            }
        }
        Ok(())
    }

    // -- init -----------------------------------------------------------------

    /// Create a CVD from initial rows (version 1). `rows` contain data
    /// attribute values only (no rid).
    pub fn init_cvd(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Vec<Value>>,
        model: Option<ModelKind>,
    ) -> Result<Vid> {
        let key = name.to_ascii_lowercase();
        if self.cvds.contains_key(&key) {
            return Err(CoreError::CvdExists(name.to_string()));
        }
        let model = model.unwrap_or(self.config.default_model);
        let mut cvd = Cvd::new(name, schema, model);
        model::init_storage(&mut self.engine, &cvd)?;
        cvd.create_meta_tables(&mut self.engine)?;

        check_pk_duplicates(&cvd.schema, &rows)?;
        let rids = cvd.alloc_rids(rows.len());
        let all_records: Vec<(i64, Vec<Value>)> = rids.iter().copied().zip(rows).collect();
        let data = CommitData {
            vid: Vid(1),
            rlist: rids.clone(),
            kept: Vec::new(),
            new_records: all_records.clone(),
            all_records,
            base: None,
            deleted_from_base: Vec::new(),
        };
        model::persist_commit(&mut self.engine, &cvd, &data, true)?;
        let commit_t = self.tick();
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid: Vid(1),
            parents: Vec::new(),
            parent_weights: Vec::new(),
            checkout_t: None,
            commit_t,
            message: "init".to_string(),
            attributes,
            num_records: rids.len() as u64,
            base: None,
        });
        cvd.version_rids.push(rids);
        cvd.sync_meta_row(&mut self.engine, Vid(1))?;
        self.cvds.insert(key, cvd);
        Ok(Vid(1))
    }

    /// `init -f`: create a CVD from CSV text plus a schema description.
    pub fn init_cvd_from_csv(
        &mut self,
        name: &str,
        csv_text: &str,
        schema: Schema,
        model: Option<ModelKind>,
    ) -> Result<Vid> {
        let (header, raw) = csv::parse_csv(csv_text)?;
        let rows = csv::typed_rows(&schema, &header, &raw)?;
        self.init_cvd(name, schema, rows, model)
    }

    // -- checkout ---------------------------------------------------------------

    /// `checkout [cvd] -v vids -t table`: materialize one or more versions
    /// into a fresh table. Multiple versions merge with precedence-based
    /// primary-key conflict resolution (Section 2.2).
    pub fn checkout(&mut self, cvd_name: &str, vids: &[Vid], table: &str) -> Result<()> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        if self.engine.has_table(table) {
            return Err(CoreError::Invalid(format!("table {table} already exists")));
        }
        let cvd = self.cvd(cvd_name)?.clone();
        for v in vids {
            cvd.check_version(*v)?;
        }
        if vids.len() == 1 {
            if cvd.partition.is_some() {
                partition_store::checkout_partitioned(&mut self.engine, &cvd, vids[0], table)?;
            } else {
                model::checkout_into(&mut self.engine, &cvd, vids[0], table)?;
            }
        } else {
            let rows = self.merged_rows(&cvd, vids)?;
            self.engine.create_table(table, cvd.staged_schema())?;
            model::insert_rows_bulk(&mut self.engine, table, rows)?;
        }
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: table.to_string(),
            cvd: cvd.name.clone(),
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Table,
        })?;
        Ok(())
    }

    /// Merge multiple versions' records with PK precedence (first listed
    /// version wins).
    fn merged_rows(&mut self, cvd: &Cvd, vids: &[Vid]) -> Result<Vec<Vec<Value>>> {
        let mut out: Vec<Vec<Value>> = Vec::new();
        let mut seen_pk: HashSet<Vec<Value>> = HashSet::new();
        let mut seen_rid: HashSet<i64> = HashSet::new();
        let has_pk = !cvd.schema.primary_key.is_empty();
        for &vid in vids {
            for (rid, values) in model::version_rows(&mut self.engine, cvd, vid)? {
                if has_pk {
                    let pk: Vec<Value> = cvd
                        .schema
                        .primary_key
                        .iter()
                        .map(|&i| values[i].clone())
                        .collect();
                    if !seen_pk.insert(pk) {
                        continue;
                    }
                } else if !seen_rid.insert(rid) {
                    continue;
                }
                let mut row = Vec::with_capacity(values.len() + 1);
                row.push(Value::Int(rid));
                row.extend(values);
                out.push(row);
            }
        }
        Ok(out)
    }

    /// `checkout -f`: export version(s) as CSV text (the caller writes the
    /// file; keeping I/O outside makes the API testable).
    pub fn checkout_csv(&mut self, cvd_name: &str, vids: &[Vid], path: &str) -> Result<String> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        let cvd = self.cvd(cvd_name)?.clone();
        for v in vids {
            cvd.check_version(*v)?;
        }
        let rows = self.merged_rows(&cvd, vids)?;
        let text = csv::to_csv(&cvd.staged_schema(), &rows);
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: path.to_string(),
            cvd: cvd.name.clone(),
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Csv,
        })?;
        Ok(text)
    }

    // -- commit -----------------------------------------------------------------

    /// `commit -t table -m msg`: add the staged table back to its CVD as a
    /// new version.
    pub fn commit(&mut self, table: &str, message: &str) -> Result<Vid> {
        let entry = self.staging.get(table, StagedKind::Table)?.clone();
        self.access.check_owner(&entry.owner, table)?;
        let staged_schema = self.engine.table(table)?.schema.clone();
        let rows = self.engine.table(table)?.rows().to_vec();
        let vid = self.commit_rows(&entry, &staged_schema, rows, message)?;
        self.engine.drop_table(table)?;
        self.staging.remove(table, StagedKind::Table)?;
        Ok(vid)
    }

    /// Abandon a staged table without committing: drops the table and its
    /// provenance entry (the inverse of checkout).
    pub fn discard(&mut self, table: &str) -> Result<()> {
        let entry = self.staging.get(table, StagedKind::Table)?.clone();
        self.access.check_owner(&entry.owner, table)?;
        self.engine.drop_table(table)?;
        self.staging.remove(table, StagedKind::Table)?;
        Ok(())
    }

    /// `commit -f csv -m msg [-s schema]`: commit CSV text previously
    /// exported with [`OrpheusDB::checkout_csv`].
    pub fn commit_csv(
        &mut self,
        path: &str,
        csv_text: &str,
        message: &str,
        schema_text: Option<&str>,
    ) -> Result<Vid> {
        let entry = self.staging.get(path, StagedKind::Csv)?.clone();
        self.access.check_owner(&entry.owner, path)?;
        let cvd = self.cvd(&entry.cvd)?;
        // The staged schema is rid + data attributes; an explicit schema
        // file (the -s flag) overrides the attribute part.
        let staged_schema = match schema_text {
            Some(text) => {
                let user_schema = csv::parse_schema_file(text)?;
                let mut cols = vec![orpheus_engine::Column::new(
                    "rid",
                    orpheus_engine::DataType::Int,
                )];
                cols.extend(user_schema.columns);
                Schema::new(cols)
            }
            None => cvd.staged_schema(),
        };
        let (header, raw) = csv::parse_csv(csv_text)?;
        let rows = csv::typed_rows(&staged_schema, &header, &raw)?;
        let vid = self.commit_rows(&entry, &staged_schema, rows, message)?;
        self.staging.remove(path, StagedKind::Csv)?;
        Ok(vid)
    }

    /// Shared commit core: diff staged rows against the parent versions and
    /// persist a new version (the no-cross-version-diff rule of §2.2).
    fn commit_rows(
        &mut self,
        entry: &StagedEntry,
        staged_schema: &Schema,
        rows: Vec<Vec<Value>>,
        message: &str,
    ) -> Result<Vid> {
        let cvd_name = entry.cvd.clone();
        // Apply any schema evolution first (Section 3.3).
        self.apply_schema_changes(&cvd_name, staged_schema)?;
        let mut cvd = self.cvd(&cvd_name)?.clone();
        let vid = Vid(cvd.num_versions() as u64 + 1);

        // Staged rows → (Option<rid>, values in cvd-schema order).
        let width = cvd.schema.arity();
        let mut staged: Vec<(Option<i64>, Vec<Value>)> = Vec::with_capacity(rows.len());
        let col_map: Vec<Option<usize>> = cvd
            .schema
            .columns
            .iter()
            .map(|c| {
                staged_schema
                    .columns
                    .iter()
                    .position(|sc| sc.name.eq_ignore_ascii_case(&c.name))
            })
            .collect();
        for row in rows {
            let rid = match row.first() {
                Some(Value::Int(r)) => Some(*r),
                Some(Value::Null) | None => None,
                Some(other) => {
                    return Err(CoreError::Invalid(format!(
                        "rid column must be INT or NULL, found {other}"
                    )))
                }
            };
            let mut values = Vec::with_capacity(width);
            for m in &col_map {
                values.push(match m {
                    Some(i) => row.get(*i).cloned().unwrap_or(Value::Null),
                    None => Value::Null,
                });
            }
            staged.push((rid, values));
        }

        check_pk_duplicates(
            &cvd.schema,
            &staged.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>(),
        )?;

        // Parent record maps (rid → values), first parent takes precedence.
        let mut parent_map: HashMap<i64, Vec<Value>> = HashMap::new();
        for p in &entry.parents {
            for (rid, mut values) in model::version_rows(&mut self.engine, &cvd, *p)? {
                // Null-extend older records to the current schema width.
                values.resize(width, Value::Null);
                parent_map.entry(rid).or_insert(values);
            }
        }

        // Classify: unchanged rows keep their rid, everything else is new.
        let mut kept = Vec::new();
        let mut new_values: Vec<Vec<Value>> = Vec::new();
        let mut all_records: Vec<(i64, Vec<Value>)> = Vec::new();
        for (rid, values) in staged {
            match rid.and_then(|r| parent_map.get(&r).map(|pv| (r, pv))) {
                Some((r, pv)) if *pv == values => {
                    kept.push(r);
                    all_records.push((r, values));
                }
                _ => new_values.push(values),
            }
        }
        let fresh = cvd.alloc_rids(new_values.len());
        let new_records: Vec<(i64, Vec<Value>)> = fresh.into_iter().zip(new_values).collect();
        all_records.extend(new_records.iter().cloned());

        let mut rlist: Vec<i64> = all_records.iter().map(|(r, _)| *r).collect();
        rlist.sort_unstable();

        // Base parent: the one sharing the most records (delta model).
        let base = entry
            .parents
            .iter()
            .copied()
            .max_by_key(|p| cvd.shared_with(&rlist, *p));
        let deleted_from_base = match base {
            Some(b) => {
                let have: HashSet<i64> = rlist.iter().copied().collect();
                cvd.rids_of(b)?
                    .iter()
                    .copied()
                    .filter(|r| !have.contains(r))
                    .collect()
            }
            None => Vec::new(),
        };

        let data = CommitData {
            vid,
            rlist: rlist.clone(),
            kept,
            new_records,
            all_records,
            base,
            deleted_from_base,
        };
        model::persist_commit(&mut self.engine, &cvd, &data, false)?;

        let parent_weights: Vec<u64> = entry
            .parents
            .iter()
            .map(|p| cvd.shared_with(&rlist, *p))
            .collect();
        let commit_t = self.tick();
        let attributes = {
            let schema = cvd.schema.clone();
            cvd.attrs.intern_schema(&schema)
        };
        cvd.versions.push(VersionMeta {
            vid,
            parents: entry.parents.clone(),
            parent_weights,
            checkout_t: Some(entry.created_at),
            commit_t,
            message: message.to_string(),
            attributes,
            num_records: rlist.len() as u64,
            base,
        });
        cvd.version_rids.push(rlist);
        cvd.sync_meta_row(&mut self.engine, vid)?;

        // Online partition maintenance (Section 4.3).
        let placement = if cvd.partition.is_some() {
            Some(partition_store::on_commit(&mut self.engine, &mut cvd, vid)?)
        } else {
            None
        };
        let _: Option<CommitPlacement> = placement;

        self.cvds.insert(cvd_name, cvd);
        Ok(vid)
    }

    /// Evolve the CVD schema to accommodate a staged table (single-pool
    /// scheme of Section 3.3): new attributes are added with NULLs, type
    /// conflicts widen to the more general type.
    fn apply_schema_changes(&mut self, cvd_name: &str, staged_schema: &Schema) -> Result<()> {
        let cvd = self.cvd(cvd_name)?.clone();
        let mut new_schema = cvd.schema.clone();
        let mut changed = false;
        for col in &staged_schema.columns {
            if col.name.eq_ignore_ascii_case("rid") {
                continue;
            }
            match new_schema.column_index(&col.name) {
                Ok(i) => {
                    let old = new_schema.columns[i].dtype;
                    if old != col.dtype {
                        let general = old.generalize(col.dtype).ok_or_else(|| {
                            CoreError::SchemaMismatch(format!(
                                "column {} cannot change from {} to {}",
                                col.name, old, col.dtype
                            ))
                        })?;
                        if general != old {
                            new_schema.columns[i].dtype = general;
                            changed = true;
                            alter_model_column_type(&mut self.engine, &cvd, &col.name, general)?;
                        }
                    }
                }
                Err(_) => {
                    // New attribute: extend storage with NULLs.
                    new_schema
                        .columns
                        .push(orpheus_engine::Column::new(col.name.clone(), col.dtype));
                    changed = true;
                    add_model_column(&mut self.engine, &cvd, &col.name, col.dtype)?;
                }
            }
        }
        if changed {
            let cvd = self.cvd_mut(cvd_name)?;
            cvd.schema = new_schema.clone();
            cvd.attrs.intern_schema(&new_schema);
        }
        Ok(())
    }

    // -- diff, queries, optimizer ------------------------------------------------

    /// `diff`: records in one version but not the other (by record id).
    pub fn diff(&mut self, cvd_name: &str, a: Vid, b: Vid) -> Result<VersionDiff> {
        let cvd = self.cvd(cvd_name)?.clone();
        cvd.check_version(a)?;
        cvd.check_version(b)?;
        let rows_a = model::version_rows(&mut self.engine, &cvd, a)?;
        let rows_b = model::version_rows(&mut self.engine, &cvd, b)?;
        let rids_a: HashSet<i64> = rows_a.iter().map(|(r, _)| *r).collect();
        let rids_b: HashSet<i64> = rows_b.iter().map(|(r, _)| *r).collect();
        Ok(VersionDiff {
            only_in_first: rows_a
                .into_iter()
                .filter(|(r, _)| !rids_b.contains(r))
                .map(|(_, v)| v)
                .collect(),
            only_in_second: rows_b
                .into_iter()
                .filter(|(r, _)| !rids_a.contains(r))
                .map(|(_, v)| v)
                .collect(),
        })
    }

    /// `run`: execute SQL with the versioned extensions (`VERSION n OF CVD
    /// x`, `CVD x`) translated to plain SQL (Section 2.2).
    pub fn run(&mut self, sql: &str) -> Result<QueryResult> {
        let translated = query::translate(self, sql)?;
        Ok(self.engine.execute(&translated)?)
    }

    /// `optimize`: run the partition optimizer on a CVD.
    pub fn optimize(&mut self, cvd_name: &str) -> Result<OptimizeReport> {
        let (gamma, mu) = (self.config.gamma_factor, self.config.mu);
        self.optimize_with(cvd_name, gamma, mu)
    }

    /// `optimize` with explicit parameters (storage threshold γ factor and
    /// tolerance µ).
    pub fn optimize_with(
        &mut self,
        cvd_name: &str,
        gamma_factor: f64,
        mu: f64,
    ) -> Result<OptimizeReport> {
        let mut cvd = self.cvd(cvd_name)?.clone();
        let report = partition_store::optimize(&mut self.engine, &mut cvd, gamma_factor, mu)?;
        self.cvds.insert(cvd.name.clone(), cvd);
        Ok(report)
    }

    /// `optimize` for a skewed workload (Appendix C.2): `freqs` maps
    /// versions to checkout frequencies; versions not listed default to 1.
    /// The returned report's `cavg` is the *weighted* checkout cost.
    pub fn optimize_weighted(
        &mut self,
        cvd_name: &str,
        freqs: &[(Vid, u64)],
    ) -> Result<OptimizeReport> {
        let (gamma, mu) = (self.config.gamma_factor, self.config.mu);
        self.optimize_weighted_with(cvd_name, freqs, gamma, mu)
    }

    /// [`OrpheusDB::optimize_weighted`] with explicit γ factor and µ.
    pub fn optimize_weighted_with(
        &mut self,
        cvd_name: &str,
        freqs: &[(Vid, u64)],
        gamma_factor: f64,
        mu: f64,
    ) -> Result<OptimizeReport> {
        let mut cvd = self.cvd(cvd_name)?.clone();
        let mut full = vec![1u64; cvd.num_versions()];
        for &(vid, f) in freqs {
            cvd.check_version(vid)?;
            full[vid.index()] = f;
        }
        let report = partition_store::optimize_weighted(
            &mut self.engine,
            &mut cvd,
            &full,
            gamma_factor,
            mu,
        )?;
        self.cvds.insert(cvd.name.clone(), cvd);
        Ok(report)
    }

    /// Records of one version (rid + attribute values), for tooling.
    pub fn version_rows(&mut self, cvd_name: &str, vid: Vid) -> Result<Vec<(i64, Vec<Value>)>> {
        let cvd = self.cvd(cvd_name)?.clone();
        model::version_rows(&mut self.engine, &cvd, vid)
    }

    /// Total model storage for a CVD in bytes (Figure 3a's metric).
    pub fn storage_bytes(&self, cvd_name: &str) -> Result<u64> {
        let cvd = self.cvd(cvd_name)?;
        Ok(model::storage_bytes(&self.engine, cvd))
    }

    /// Storage of the partitioned layout, when present (Figures 12b/13b).
    pub fn partitioned_storage_bytes(&self, cvd_name: &str) -> Result<u64> {
        let cvd = self.cvd(cvd_name)?;
        Ok(partition_store::partition_storage_bytes(&self.engine, cvd))
    }

    /// Staged artifacts (for `ls`-style tooling and tests).
    pub fn staged(&self) -> Vec<&StagedEntry> {
        self.staging.list()
    }

    /// `log`: the version history of a CVD as typed entries.
    pub fn log_entries(&self, cvd_name: &str) -> Result<Vec<LogEntry>> {
        let cvd = self.cvd(cvd_name)?;
        Ok(cvd
            .versions
            .iter()
            .map(|m| LogEntry {
                vid: m.vid,
                parents: m.parents.clone(),
                commit_t: m.commit_t,
                num_records: m.num_records,
                message: m.message.clone(),
            })
            .collect())
    }

    // -- batching ---------------------------------------------------------------

    /// Execute one request of a batch against this instance: the
    /// shared-scan checkout fast path when `plan` says the scan is reused
    /// ([`BatchPlan::shared_scans`]), the ordinary [`Executor::execute`]
    /// otherwise — with `cache` invalidated first whenever the request
    /// could change version contents ([`invalidates_shared_scans`]). Both
    /// the [`OrpheusDB`] batch override and the concurrent executor's
    /// per-shard sub-batches run through this, so a batch coalesces
    /// version-row scans whichever executor drives it.
    pub(crate) fn execute_batch_step(
        &mut self,
        plan: &BatchPlan,
        cache: &mut ScanCache,
        request: Request,
    ) -> Result<Response> {
        match request {
            Request::Checkout(c) if plan.shared_scans(&c.cvd, &c.versions) > 1 => self
                .checkout_shared_scan(cache, &c.cvd, &c.versions, &c.table)
                .map(|()| Response::CheckedOut {
                    cvd: c.cvd,
                    versions: c.versions,
                    table: c.table,
                }),
            Request::CheckoutCsv(c) if plan.shared_scans(&c.cvd, &c.versions) > 1 => self
                .checkout_csv_shared_scan(cache, &c.cvd, &c.versions, &c.path)
                .map(|csv| Response::CheckedOutCsv {
                    cvd: c.cvd,
                    versions: c.versions,
                    path: c.path,
                    csv,
                }),
            other => {
                if invalidates_shared_scans(&other) {
                    cache.clear();
                }
                self.execute(other)
            }
        }
    }

    /// Checkout that reuses an already-materialized version-row scan from
    /// `cache` (populating it on first use) instead of re-reading the
    /// model's backing tables — the shared-scan fast path behind the
    /// [`Executor::batch`] override. Validation (name availability, CVD
    /// and version existence, staging registration) is identical to
    /// [`OrpheusDB::checkout`]; only the row scan is skipped.
    fn checkout_shared_scan(
        &mut self,
        cache: &mut ScanCache,
        cvd_name: &str,
        vids: &[Vid],
        table: &str,
    ) -> Result<()> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        if self.engine.has_table(table) {
            return Err(CoreError::Invalid(format!("table {table} already exists")));
        }
        let cvd = self.cvd(cvd_name)?.clone();
        for v in vids {
            cvd.check_version(*v)?;
        }
        let rows = self.scan_cached(cache, &cvd, vids)?;
        self.engine.create_table(table, cvd.staged_schema())?;
        model::insert_rows_bulk(&mut self.engine, table, rows)?;
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: table.to_string(),
            cvd: cvd.name.clone(),
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Table,
        })?;
        Ok(())
    }

    /// CSV-export variant of [`OrpheusDB::checkout_shared_scan`].
    fn checkout_csv_shared_scan(
        &mut self,
        cache: &mut ScanCache,
        cvd_name: &str,
        vids: &[Vid],
        path: &str,
    ) -> Result<String> {
        if vids.is_empty() {
            return Err(CoreError::bad_request(
                CommandKind::Checkout,
                "checkout requires at least one version",
            ));
        }
        let cvd = self.cvd(cvd_name)?.clone();
        for v in vids {
            cvd.check_version(*v)?;
        }
        let rows = self.scan_cached(cache, &cvd, vids)?;
        let text = csv::to_csv(&cvd.staged_schema(), &rows);
        let created_at = self.tick();
        self.staging.register(StagedEntry {
            name: path.to_string(),
            cvd: cvd.name.clone(),
            parents: vids.to_vec(),
            owner: self.access.whoami().to_string(),
            created_at,
            kind: StagedKind::Csv,
        })?;
        Ok(text)
    }

    /// The merged rows of `vids`, from `cache` when an earlier checkout of
    /// the same version set in this batch already scanned them.
    fn scan_cached(
        &mut self,
        cache: &mut ScanCache,
        cvd: &Cvd,
        vids: &[Vid],
    ) -> Result<Vec<Vec<Value>>> {
        let key = (cvd.name.to_ascii_lowercase(), vids.to_vec());
        if let Some(rows) = cache.get(&key) {
            return Ok(rows.clone());
        }
        let rows = self.merged_rows(cvd, vids)?;
        cache.insert(key, rows.clone());
        Ok(rows)
    }

    /// Persist the whole instance (engine data + middleware state) to a
    /// checksummed snapshot file. See [`crate::persist`].
    pub fn save_to(&self, path: &std::path::Path) -> Result<()> {
        crate::persist::save(self, path)
    }

    /// Restore an instance previously saved with [`OrpheusDB::save_to`].
    pub fn load_from(path: &std::path::Path) -> Result<OrpheusDB> {
        crate::persist::load(path)
    }
}

/// The single-threaded executor: every typed command maps onto the
/// corresponding `OrpheusDB` method. [`crate::Session`] implements the
/// same trait over a shared instance, so CLI, REPL, examples, benches, and
/// tests all drive one bus.
impl Executor for OrpheusDB {
    fn execute(&mut self, request: Request) -> Result<Response> {
        match request {
            Request::Init(r) => {
                let version = self.init_cvd(&r.cvd, r.schema, r.rows, r.model)?;
                Ok(Response::Initialized {
                    cvd: r.cvd,
                    version,
                })
            }
            Request::InitFromCsv(r) => {
                let schema = crate::csv::parse_schema_file(&r.schema_text)?;
                let version = self.init_cvd_from_csv(&r.cvd, &r.csv, schema, r.model)?;
                Ok(Response::Initialized {
                    cvd: r.cvd,
                    version,
                })
            }
            Request::Checkout(r) => {
                self.checkout(&r.cvd, &r.versions, &r.table)?;
                Ok(Response::CheckedOut {
                    cvd: r.cvd,
                    versions: r.versions,
                    table: r.table,
                })
            }
            Request::CheckoutCsv(r) => {
                let csv = self.checkout_csv(&r.cvd, &r.versions, &r.path)?;
                Ok(Response::CheckedOutCsv {
                    cvd: r.cvd,
                    versions: r.versions,
                    path: r.path,
                    csv,
                })
            }
            Request::Commit(r) => {
                let version = self.commit(&r.table, &r.message)?;
                Ok(Response::Committed {
                    target: r.table,
                    version,
                })
            }
            Request::CommitCsv(r) => {
                let version =
                    self.commit_csv(&r.path, &r.csv, &r.message, r.schema_text.as_deref())?;
                Ok(Response::Committed {
                    target: r.path,
                    version,
                })
            }
            Request::Diff(r) => {
                let diff = self.diff(&r.cvd, r.from, r.to)?;
                Ok(Response::Diffed {
                    cvd: r.cvd,
                    from: r.from,
                    to: r.to,
                    diff,
                })
            }
            Request::Run(r) => Ok(Response::Rows(self.run(&r.sql)?)),
            Request::Ls => Ok(Response::CvdList(self.ls())),
            Request::Log(r) => {
                let entries = self.log_entries(&r.cvd)?;
                Ok(Response::Log {
                    cvd: r.cvd,
                    entries,
                })
            }
            Request::Drop(r) => {
                self.drop_cvd(&r.cvd)?;
                Ok(Response::Dropped { cvd: r.cvd })
            }
            Request::Optimize(r) => {
                let gamma = r.gamma.unwrap_or(self.config.gamma_factor);
                let mu = r.mu.unwrap_or(self.config.mu);
                let report = if r.weights.is_empty() {
                    self.optimize_with(&r.cvd, gamma, mu)?
                } else {
                    self.optimize_weighted_with(&r.cvd, &r.weights, gamma, mu)?
                };
                Ok(Response::Optimized { cvd: r.cvd, report })
            }
            Request::CreateUser(r) => {
                self.access.create_user(&r.user)?;
                Ok(Response::UserCreated { user: r.user })
            }
            Request::Login(r) => {
                self.access.login(&r.user)?;
                Ok(Response::LoggedIn { user: r.user })
            }
            Request::Whoami => Ok(Response::CurrentUser {
                user: self.access.whoami().to_string(),
            }),
            Request::Discard(r) => {
                self.discard(&r.table)?;
                Ok(Response::Discarded { table: r.table })
            }
        }
    }

    /// Batched execution with shared version-row scans: when the batch
    /// checks out the same version set of a CVD more than once
    /// ([`BatchPlan::shared_scans`]), the rows are scanned once and every
    /// later checkout materializes from the cached scan, skipping the
    /// model read path entirely. Requests still execute in submission
    /// order — single-threaded, there is nothing to win by reordering — so
    /// the results equal the sequential [`Executor::execute`] loop
    /// result-for-result. The cache is dropped whenever a request could
    /// change what a version's rows look like (commits and their schema
    /// evolution, CVD create/drop, optimize, non-`SELECT` SQL).
    fn batch<I: IntoIterator<Item = Request>>(&mut self, requests: I) -> Vec<Result<Response>>
    where
        Self: Sized,
    {
        let requests: Vec<Request> = requests.into_iter().collect();
        let plan = BatchPlan::build(&requests, self);
        let mut cache = ScanCache::new();
        requests
            .into_iter()
            .map(|request| self.execute_batch_step(&plan, &mut cache, request))
            .collect()
    }
}

/// The shared version-row scans of one batch: (lower-cased CVD, version
/// list) → merged rows, rid first. Dropped when the batch ends or a
/// request invalidates it.
pub(crate) type ScanCache = HashMap<(String, Vec<Vid>), Vec<Vec<Value>>>;

/// Routing for [`BatchPlan::build`] on a single-threaded instance. There
/// are no locks to coalesce, so [`OrpheusDB::batch`] consults its plan
/// only for the shared-scan hints — but the routing is still honest
/// (commit/discard resolve through the staging area), so one plan shape
/// serves both executors.
impl BatchRouter for OrpheusDB {
    fn has_cvd(&self, name: &str) -> bool {
        self.cvds.contains_key(&name.to_ascii_lowercase())
    }

    fn staged_shard(&self, name: &str, kind: StagedKind) -> Option<ShardKey> {
        self.staging
            .cvd_of(name, kind)
            .map(|cvd| ShardKey::Cvd(cvd.to_ascii_lowercase()))
    }

    fn sql_shard(&self, _sql: &str) -> Option<ShardKey> {
        // A single-threaded instance runs all SQL in place; grouping it
        // under the auxiliary key keeps plans barrier-free.
        Some(ShardKey::Aux)
    }
}

/// Requests that can change what a version's rows look like, or whether a
/// cached scan's CVD still is the CVD it was scanned from: commits (schema
/// evolution widens or extends every version's staged shape), CVD
/// create/drop (a name can be reused), optimize (repartitions storage),
/// and any SQL that is not a plain `SELECT` (raw SQL can write into a
/// model's backing tables).
fn invalidates_shared_scans(request: &Request) -> bool {
    match request {
        Request::Commit(_)
        | Request::CommitCsv(_)
        | Request::Init(_)
        | Request::InitFromCsv(_)
        | Request::Drop(_)
        | Request::Optimize(_) => true,
        Request::Run(r) => !query::is_select(&r.sql),
        _ => false,
    }
}

fn alter_model_column_type(
    db: &mut Database,
    cvd: &Cvd,
    column: &str,
    new_type: orpheus_engine::DataType,
) -> Result<()> {
    for t in model::backing_tables(cvd) {
        if let Ok(table) = db.table(&t) {
            if table.schema.has_column(column) {
                db.table_mut(&t)?.alter_column_type(column, new_type)?;
            }
        }
    }
    Ok(())
}

fn add_model_column(
    db: &mut Database,
    cvd: &Cvd,
    column: &str,
    dtype: orpheus_engine::DataType,
) -> Result<()> {
    // Only tables that carry data attributes get the new column; version
    // lists (rlist/vlist tables) are unaffected.
    let targets: Vec<String> = match cvd.model {
        ModelKind::CombinedTable => vec![cvd.combined_table()],
        ModelKind::SplitByVlist | ModelKind::SplitByRlist => vec![cvd.data_table()],
        // Per-version tables (TPV, delta) incorporate the new column only in
        // future versions' tables; existing tables stay as-is and reads
        // null-extend.
        ModelKind::TablePerVersion | ModelKind::DeltaBased => vec![],
    };
    for t in targets {
        db.table_mut(&t)?
            .add_column(orpheus_engine::Column::new(column.to_string(), dtype))?;
    }
    Ok(())
}

fn check_pk_duplicates(schema: &Schema, rows: &[Vec<Value>]) -> Result<()> {
    if schema.primary_key.is_empty() {
        return Ok(());
    }
    let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(rows.len());
    for row in rows {
        let pk: Vec<Value> = schema.primary_key.iter().map(|&i| row[i].clone()).collect();
        if !seen.insert(pk.clone()) {
            return Err(CoreError::PrimaryKeyViolation(format!(
                "duplicate key {pk:?}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orpheus_engine::{Column, DataType};

    fn protein_schema() -> Schema {
        Schema::new(vec![
            Column::new("protein1", DataType::Text),
            Column::new("protein2", DataType::Text),
            Column::new("cooccurrence", DataType::Int),
        ])
        .with_primary_key(&["protein1", "protein2"])
        .unwrap()
    }

    fn protein_rows() -> Vec<Vec<Value>> {
        vec![
            vec!["p1".into(), "p2".into(), Value::Int(53)],
            vec!["p1".into(), "p3".into(), Value::Int(87)],
            vec!["p4".into(), "p5".into(), Value::Int(0)],
        ]
    }

    fn setup() -> OrpheusDB {
        let mut odb = OrpheusDB::new();
        odb.init_cvd("protein", protein_schema(), protein_rows(), None)
            .unwrap();
        odb
    }

    #[test]
    fn init_creates_version_one() {
        let odb = setup();
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.num_versions(), 1);
        assert_eq!(cvd.rids_of(Vid(1)).unwrap().len(), 3);
        assert_eq!(odb.ls(), vec!["protein"]);
    }

    #[test]
    fn checkout_edit_commit_cycle() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "work").unwrap();
        // Modify one record and insert a new one through plain SQL.
        odb.engine
            .execute("UPDATE work SET cooccurrence = 99 WHERE protein2 = 'p2'")
            .unwrap();
        odb.engine
            .execute("INSERT INTO work VALUES (NULL, 'p6', 'p7', 12)")
            .unwrap();
        let v2 = odb.commit("work", "tweak scores").unwrap();
        assert_eq!(v2, Vid(2));
        // The staged table is gone after commit.
        assert!(!odb.engine.has_table("work"));

        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.rids_of(Vid(2)).unwrap().len(), 4);
        // Two records kept, two new (modified + inserted).
        let meta = cvd.meta(Vid(2)).unwrap();
        assert_eq!(meta.parents, vec![Vid(1)]);
        assert_eq!(meta.parent_weights, vec![2]);
        assert_eq!(meta.message, "tweak scores");
    }

    #[test]
    fn immutability_assigns_fresh_rids() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("UPDATE w SET cooccurrence = 1 WHERE protein2 = 'p2'")
            .unwrap();
        odb.commit("w", "m").unwrap();
        let mut seen = std::collections::HashSet::new();
        let cvd = odb.cvd("protein").unwrap();
        for v in [Vid(1), Vid(2)] {
            for r in cvd.rids_of(v).unwrap() {
                seen.insert(*r);
            }
        }
        // 3 original + 1 replacement.
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn commit_rejects_pk_duplicates() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("INSERT INTO w VALUES (NULL, 'p1', 'p2', 1)")
            .unwrap();
        let err = odb.commit("w", "dup").unwrap_err();
        assert!(matches!(err, CoreError::PrimaryKeyViolation(_)));
    }

    #[test]
    fn multi_version_checkout_resolves_pk_conflicts_by_precedence() {
        let mut odb = setup();
        // v2: changes p1-p2's score.
        odb.checkout("protein", &[Vid(1)], "a").unwrap();
        odb.engine
            .execute("UPDATE a SET cooccurrence = 100 WHERE protein2 = 'p2'")
            .unwrap();
        odb.commit("a", "v2").unwrap();
        // Merge checkout listing v2 first: its p1-p2 wins.
        odb.checkout("protein", &[Vid(2), Vid(1)], "merged")
            .unwrap();
        let r = odb
            .engine
            .query("SELECT cooccurrence FROM merged WHERE protein2 = 'p2'")
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(100));
        // Committing the merge records both parents.
        let v3 = odb.commit("merged", "merge").unwrap();
        let cvd = odb.cvd("protein").unwrap();
        assert_eq!(cvd.meta(v3).unwrap().parents, vec![Vid(2), Vid(1)]);
    }

    #[test]
    fn diff_reports_both_sides() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        odb.engine
            .execute("DELETE FROM w WHERE protein1 = 'p4'")
            .unwrap();
        odb.engine
            .execute("INSERT INTO w VALUES (NULL, 'n1', 'n2', 5)")
            .unwrap();
        odb.commit("w", "v2").unwrap();
        let d = odb.diff("protein", Vid(1), Vid(2)).unwrap();
        assert_eq!(d.only_in_first.len(), 1);
        assert_eq!(d.only_in_second.len(), 1);
        assert_eq!(d.only_in_first[0][0], Value::Text("p4".into()));
        assert_eq!(d.only_in_second[0][0], Value::Text("n1".into()));
    }

    #[test]
    fn csv_checkout_commit_roundtrip() {
        let mut odb = setup();
        let text = odb
            .checkout_csv("protein", &[Vid(1)], "/tmp/protein.csv")
            .unwrap();
        assert!(text.starts_with("rid,protein1,protein2,cooccurrence"));
        // Simulate an external edit: add a row without a rid.
        let edited = format!("{text},n8,n9,42\n");
        let v2 = odb
            .commit_csv("/tmp/protein.csv", &edited, "from csv", None)
            .unwrap();
        assert_eq!(v2, Vid(2));
        assert_eq!(odb.cvd("protein").unwrap().rids_of(v2).unwrap().len(), 4);
    }

    #[test]
    fn schema_evolution_adds_and_widens() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "w").unwrap();
        // Add a coexpression column and widen cooccurrence to DOUBLE.
        odb.engine
            .execute("ALTER TABLE w ADD COLUMN coexpression INT")
            .unwrap();
        odb.engine
            .execute("ALTER TABLE w ALTER COLUMN cooccurrence TYPE DOUBLE")
            .unwrap();
        odb.engine
            .execute("UPDATE w SET coexpression = 7 WHERE protein2 = 'p2'")
            .unwrap();
        odb.commit("w", "evolve").unwrap();
        let cvd = odb.cvd("protein").unwrap();
        assert!(cvd.schema.has_column("coexpression"));
        let ci = cvd.schema.column_index("cooccurrence").unwrap();
        assert_eq!(cvd.schema.columns[ci].dtype, DataType::Double);
        // The attribute registry versioned the type change (Figure 5).
        assert!(cvd.attrs.entries().len() >= 5);
        // Old version still reads, with NULL for the new attribute.
        let rows = odb.version_rows("protein", Vid(1)).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn permissions_guard_commits() {
        let mut odb = setup();
        odb.checkout("protein", &[Vid(1)], "mine").unwrap();
        odb.access.create_user("eve").unwrap();
        odb.access.login("eve").unwrap();
        let err = odb.commit("mine", "steal").unwrap_err();
        assert!(matches!(err, CoreError::PermissionDenied(_)));
    }

    #[test]
    fn drop_cvd_removes_everything() {
        let mut odb = setup();
        odb.drop_cvd("protein").unwrap();
        assert!(odb.ls().is_empty());
        assert!(!odb.engine.has_table("protein__data"));
        assert!(!odb.engine.has_table("protein__meta"));
        assert!(odb.drop_cvd("protein").is_err());
    }

    #[test]
    fn optimize_then_checkout_roundtrip() {
        let mut odb = setup();
        // Build a few versions first.
        for i in 0..4 {
            let t = format!("w{i}");
            odb.checkout("protein", &[Vid(i + 1)], &t).unwrap();
            odb.engine
                .execute(&format!(
                    "INSERT INTO {t} VALUES (NULL, 'x{i}', 'y{i}', {i})"
                ))
                .unwrap();
            odb.commit(&t, "grow").unwrap();
        }
        let report = odb.optimize("protein").unwrap();
        assert!(report.num_partitions >= 1);
        odb.checkout("protein", &[Vid(5)], "post").unwrap();
        let r = odb.engine.query("SELECT count(*) FROM post").unwrap();
        assert_eq!(r.scalar(), Some(&Value::Int(7)));
    }

    #[test]
    fn works_across_all_models() {
        for model in ModelKind::ALL {
            let mut odb = OrpheusDB::new();
            odb.init_cvd("d", protein_schema(), protein_rows(), Some(model))
                .unwrap();
            odb.checkout("d", &[Vid(1)], "w").unwrap();
            odb.engine
                .execute("INSERT INTO w VALUES (NULL, 'z1', 'z2', 9)")
                .unwrap();
            odb.engine
                .execute("DELETE FROM w WHERE protein1 = 'p4'")
                .unwrap();
            let v2 = odb.commit("w", "edit").unwrap();
            let rows = odb.version_rows("d", v2).unwrap();
            assert_eq!(rows.len(), 3, "model {}", model.name());
            let d = odb.diff("d", Vid(1), Vid(2)).unwrap();
            assert_eq!(d.only_in_first.len(), 1, "model {}", model.name());
            assert_eq!(d.only_in_second.len(), 1, "model {}", model.name());
        }
    }
}
