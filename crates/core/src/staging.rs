//! The provenance manager (Section 2.3): tracks materialized checkout
//! tables and exported CSV files — their source CVD, parent versions,
//! owner, and creation time — so that `commit` knows where a table came
//! from without the user restating it.

use std::collections::HashMap;

use crate::error::{CoreError, Result};
use crate::ids::Vid;

/// What kind of artifact a checkout produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagedKind {
    /// A materialized table inside the engine.
    Table,
    /// An exported CSV file on disk.
    Csv,
}

/// Provenance of one staged artifact.
#[derive(Debug, Clone)]
pub struct StagedEntry {
    /// Table name or CSV path (the registry key, case-normalized for
    /// tables).
    pub name: String,
    pub cvd: String,
    /// The versions this artifact was derived from, in precedence order.
    pub parents: Vec<Vid>,
    pub owner: String,
    /// Logical creation timestamp.
    pub created_at: u64,
    pub kind: StagedKind,
}

/// Registry of staged artifacts.
#[derive(Debug, Clone, Default)]
pub struct StagingArea {
    entries: HashMap<String, StagedEntry>,
}

impl StagingArea {
    fn key(name: &str, kind: StagedKind) -> String {
        match kind {
            StagedKind::Table => name.to_ascii_lowercase(),
            StagedKind::Csv => name.to_string(),
        }
    }

    pub fn register(&mut self, entry: StagedEntry) -> Result<()> {
        let key = Self::key(&entry.name, entry.kind);
        if self.entries.contains_key(&key) {
            return Err(CoreError::Invalid(format!(
                "{} is already staged",
                entry.name
            )));
        }
        self.entries.insert(key, entry);
        Ok(())
    }

    pub fn get(&self, name: &str, kind: StagedKind) -> Result<&StagedEntry> {
        self.entries
            .get(&Self::key(name, kind))
            .ok_or_else(|| CoreError::NotStaged(name.to_string()))
    }

    pub fn remove(&mut self, name: &str, kind: StagedKind) -> Result<StagedEntry> {
        self.entries
            .remove(&Self::key(name, kind))
            .ok_or_else(|| CoreError::NotStaged(name.to_string()))
    }

    /// The CVD a staged artifact came from, if it is staged — the
    /// non-failing lookup batch planners use to route `commit`/`discard`
    /// without consuming a `Result`.
    pub fn cvd_of(&self, name: &str, kind: StagedKind) -> Option<&str> {
        self.entries
            .get(&Self::key(name, kind))
            .map(|e| e.cvd.as_str())
    }

    /// Take every entry out of the registry (used when merging instances).
    pub fn drain(&mut self) -> Vec<StagedEntry> {
        let mut out: Vec<StagedEntry> = self.entries.drain().map(|(_, e)| e).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Detach all staged artifacts of one CVD (used when splitting an
    /// instance into per-CVD shards).
    pub fn remove_for_cvd(&mut self, cvd: &str) -> Vec<StagedEntry> {
        let cvd = cvd.to_ascii_lowercase();
        let keys: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.cvd == cvd)
            .map(|(k, _)| k.clone())
            .collect();
        let mut out: Vec<StagedEntry> = keys
            .into_iter()
            .map(|k| self.entries.remove(&k).expect("key collected above"))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// All staged artifacts for a CVD (used when dropping it).
    pub fn for_cvd(&self, cvd: &str) -> Vec<&StagedEntry> {
        let cvd = cvd.to_ascii_lowercase();
        let mut v: Vec<&StagedEntry> = self.entries.values().filter(|e| e.cvd == cvd).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    pub fn list(&self) -> Vec<&StagedEntry> {
        let mut v: Vec<&StagedEntry> = self.entries.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, cvd: &str, owner: &str) -> StagedEntry {
        StagedEntry {
            name: name.to_string(),
            cvd: cvd.to_string(),
            parents: vec![Vid(1)],
            owner: owner.to_string(),
            created_at: 1,
            kind: StagedKind::Table,
        }
    }

    #[test]
    fn register_lookup_remove() {
        let mut s = StagingArea::default();
        s.register(entry("T1", "protein", "alice")).unwrap();
        // Table lookups are case-insensitive.
        let e = s.get("t1", StagedKind::Table).unwrap();
        assert_eq!(e.parents, vec![Vid(1)]);
        assert!(s.register(entry("t1", "protein", "bob")).is_err());
        s.remove("T1", StagedKind::Table).unwrap();
        assert!(matches!(
            s.get("t1", StagedKind::Table),
            Err(CoreError::NotStaged(_))
        ));
    }

    #[test]
    fn csv_keys_are_case_sensitive_paths() {
        let mut s = StagingArea::default();
        let mut e = entry("/tmp/Data.csv", "protein", "alice");
        e.kind = StagedKind::Csv;
        s.register(e).unwrap();
        assert!(s.get("/tmp/Data.csv", StagedKind::Csv).is_ok());
        assert!(s.get("/tmp/data.csv", StagedKind::Csv).is_err());
    }

    #[test]
    fn for_cvd_filters() {
        let mut s = StagingArea::default();
        s.register(entry("a", "x", "u")).unwrap();
        s.register(entry("b", "y", "u")).unwrap();
        s.register(entry("c", "x", "u")).unwrap();
        let xs = s.for_cvd("X");
        assert_eq!(xs.len(), 2);
        assert_eq!(s.list().len(), 3);
    }
}
